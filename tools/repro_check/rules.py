"""The RPR rule implementations (stdlib ``ast`` only).

Each rule encodes one domain invariant of the repro codebase; the
catalog with rationale and examples lives in docs/STATIC_ANALYSIS.md.
Scoping is by repo-relative POSIX path so the same rule objects serve
both the CLI walk and the fixture tests (which pass virtual paths).
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass

from .core import Violation

_KINDS = ("SPARSE", "DENSE")

#: Methods that mutate the receiver in place (RPR003's mutation set,
#: beyond plain attribute rebinding).
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "move_to_end", "sort",
        "reverse", "appendleft", "extendleft",
    }
)

#: The deprecated multiply keywords (mirrors
#: ``repro.engine.options.LEGACY_OPTION_KEYWORDS`` plus ``return_report``).
_LEGACY_KEYWORDS = frozenset(
    {
        "memory_limit_bytes", "dynamic_conversion", "use_estimation",
        "resilience", "observer", "workers", "return_report",
    }
)

#: Entry points whose legacy keywords are deprecated (RPR004 callees).
_LEGACY_ENTRY_POINTS = frozenset(
    {"atmult", "parallel_atmult", "multiply", "multiply_chain", "evaluate"}
)


def _in_src(path: str) -> bool:
    return path.startswith("src/repro/") or "/src/repro/" in path


def _name_chain(node: ast.AST) -> str:
    """Dotted name of a Name/Attribute chain, or '' when not one."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _violation(code: str, message: str, path: str, node: ast.AST) -> Violation:
    return Violation(
        code,
        message,
        path,
        getattr(node, "lineno", 0),
        getattr(node, "col_offset", 0),
    )


# ---------------------------------------------------------------------------
# RPR001: kernel-registry completeness
# ---------------------------------------------------------------------------


@dataclass
class KernelRegistryRule:
    """Every (A, B, C) storage-kind combination has a registered kernel.

    Applies to files that *define* the registry (a ``register_kernel``
    function or a ``*KERNELS`` dict) — callers that merely re-register a
    subset (e.g. the reference-kernel context manager) are out of scope.
    A ``register_kernel`` call whose kind argument is the loop variable
    of an enclosing ``for var in StorageKind:`` counts for both kinds.
    """

    code: str = "RPR001"
    summary: str = "kernel registry covers all (sparse|dense)^3 combinations"

    def applies(self, path: str) -> bool:
        return path.endswith(".py")

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        anchor = self._registry_anchor(tree)
        if anchor is None:
            return []
        covered: set[tuple[str, str, str]] = set()
        for call, loop_vars in _walk_with_kind_loops(tree):
            if not (
                isinstance(call.func, ast.Name)
                and call.func.id == "register_kernel"
            ) or len(call.args) < 4:
                continue
            kind_sets = [
                _kind_candidates(arg, loop_vars) for arg in call.args[:3]
            ]
            if any(not kinds for kinds in kind_sets):
                continue  # unresolvable argument: cannot prove anything
            covered.update(itertools.product(*kind_sets))
        missing = [
            combo
            for combo in itertools.product(_KINDS, _KINDS, _KINDS)
            if combo not in covered
        ]
        if not missing:
            return []
        names = ", ".join("x".join(combo).lower() for combo in missing)
        return [
            _violation(
                self.code,
                f"kernel registry is missing {len(missing)} of 8 "
                f"(A, B, C) combinations: {names}",
                path,
                anchor,
            )
        ]

    @staticmethod
    def _registry_anchor(tree: ast.Module) -> ast.AST | None:
        """The node that marks this file as the canonical registry."""
        for node in tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "register_kernel"
            ):
                return node
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id.endswith(
                        "KERNELS"
                    ):
                        return node
        return None


def _walk_with_kind_loops(
    tree: ast.AST,
) -> list[tuple[ast.Call, dict[str, tuple[str, ...]]]]:
    """All Call nodes, each with the StorageKind loop vars in scope."""
    found: list[tuple[ast.Call, dict[str, tuple[str, ...]]]] = []

    def visit(node: ast.AST, loops: dict[str, tuple[str, ...]]) -> None:
        if isinstance(node, ast.For):
            inner = dict(loops)
            if (
                isinstance(node.target, ast.Name)
                and _name_chain(node.iter).split(".")[-1] == "StorageKind"
            ):
                inner[node.target.id] = _KINDS
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        if isinstance(node, ast.Call):
            found.append((node, loops))
        for child in ast.iter_child_nodes(node):
            visit(child, loops)

    visit(tree, {})
    return found


def _kind_candidates(
    node: ast.AST, loop_vars: dict[str, tuple[str, ...]]
) -> tuple[str, ...]:
    """Storage kinds a registration argument can denote ('' = unknown)."""
    chain = _name_chain(node)
    if chain.split(".")[-1] in _KINDS and "StorageKind" in chain:
        return (chain.split(".")[-1],)
    if isinstance(node, ast.Name) and node.id in loop_vars:
        return loop_vars[node.id]
    return ()


# ---------------------------------------------------------------------------
# RPR002: plan determinism
# ---------------------------------------------------------------------------

_RPR002_SCOPE = (
    "engine/plan.py",
    "engine/fingerprint.py",
    "engine/cache.py",
    "density/",
)


@dataclass
class DeterminismRule:
    """No nondeterministic value may leak into plan/fingerprint content.

    Plans are cached under structure+setup keys; anything the planning
    modules compute must be a pure function of that key.  Wall-clock
    reads, ambient RNG state, ``id()``-keyed lookups and set-iteration
    order all violate that.
    """

    code: str = "RPR002"
    summary: str = "plan/fingerprint/density modules stay deterministic"

    def applies(self, path: str) -> bool:
        return any(part in path for part in _RPR002_SCOPE)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        random_names = _ambient_random_imports(tree)
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                violations.extend(
                    self._check_call(node, random_names, path)
                )
            elif isinstance(node, (ast.Dict, ast.DictComp)):
                violations.extend(self._check_dict_keys(node, path))
            elif isinstance(node, ast.Subscript):
                if _is_id_call(node.slice):
                    violations.append(
                        _violation(
                            self.code,
                            "id()-keyed subscript: object identity is not "
                            "stable across processes; key on structural "
                            "coordinates instead",
                            path,
                            node,
                        )
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _is_bare_set_expr(iterable):
                    violations.append(
                        _violation(
                            self.code,
                            "iteration over a set has no deterministic "
                            "order; wrap in sorted(...)",
                            path,
                            iterable,
                        )
                    )
        return violations

    def _check_call(
        self, node: ast.Call, random_names: set[str], path: str
    ) -> list[Violation]:
        chain = _name_chain(node.func)
        out: list[Violation] = []
        if chain in {"time.time", "time.time_ns"}:
            out.append(
                _violation(
                    self.code,
                    f"{chain}() reads the wall clock; plan content must be "
                    "a pure function of the plan key",
                    path,
                    node,
                )
            )
        head = chain.split(".")[0]
        if head == "random" or chain in random_names:
            out.append(
                _violation(
                    self.code,
                    f"{chain}() draws from ambient RNG state; pass an "
                    "explicitly seeded generator instead",
                    path,
                    node,
                )
            )
        parts = chain.split(".")
        if (
            len(parts) >= 3
            and parts[0] in {"np", "numpy"}
            and parts[1] == "random"
            and parts[2] != "default_rng"
        ):
            out.append(
                _violation(
                    self.code,
                    f"{chain}() uses numpy's global RNG; use "
                    "np.random.default_rng(seed) instead",
                    path,
                    node,
                )
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"get", "setdefault", "pop"}
            and node.args
            and _is_id_call(node.args[0])
        ):
            out.append(
                _violation(
                    self.code,
                    "id()-keyed lookup: object identity is not stable "
                    "across processes; key on structural coordinates "
                    "instead",
                    path,
                    node,
                )
            )
        if _is_bare_set_expr_consumer(node):
            out.append(
                _violation(
                    self.code,
                    "materializing a set in arbitrary order; wrap in "
                    "sorted(...)",
                    path,
                    node,
                )
            )
        return out

    def _check_dict_keys(
        self, node: ast.Dict | ast.DictComp, path: str
    ) -> list[Violation]:
        keys = node.keys if isinstance(node, ast.Dict) else [node.key]
        return [
            _violation(
                self.code,
                "id()-keyed dict: object identity is not stable across "
                "processes; key on structural coordinates instead",
                path,
                key,
            )
            for key in keys
            if key is not None and _is_id_call(key)
        ]


def _ambient_random_imports(tree: ast.Module) -> set[str]:
    """Names bound by ``from random import ...`` (ambient RNG draws)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            names.update(alias.asname or alias.name for alias in node.names)
    return names


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _is_bare_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _is_bare_set_expr_consumer(node: ast.Call) -> bool:
    """``list(set(..))`` / ``tuple(set(..))`` / ``enumerate(set(..))``."""
    return (
        isinstance(node.func, ast.Name)
        and node.func.id in {"list", "tuple", "enumerate", "iter"}
        and len(node.args) >= 1
        and _is_bare_set_expr(node.args[0])
    )


# ---------------------------------------------------------------------------
# RPR003: locking discipline
# ---------------------------------------------------------------------------


@dataclass
class LockDisciplineRule:
    """Lock-owning classes mutate their shared state only under the lock.

    A class "owns a lock" when ``__init__`` assigns ``self.<name>`` from
    an expression containing ``threading.Lock()`` / ``threading.RLock()``.
    Every other method that rebinds, subscript-assigns or calls a
    mutating method on an ``__init__``-assigned attribute must do so
    inside ``with self.<lock>``.  Helper methods whose name ends in
    ``_locked`` are exempt by convention: they document that the caller
    already holds the lock.
    """

    code: str = "RPR003"
    summary: str = "lock-owning classes mutate shared state under the lock"

    def applies(self, path: str) -> bool:
        return path.endswith(".py")

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(node, path))
        return violations

    def _check_class(self, cls: ast.ClassDef, path: str) -> list[Violation]:
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return []
        lock_attrs = _lock_attributes(init)
        if not lock_attrs:
            return []
        state_attrs = _init_assigned_attributes(init) - lock_attrs
        violations: list[Violation] = []
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name.endswith("_locked"):
                continue
            violations.extend(
                _violation(
                    self.code,
                    f"{cls.name}.{item.name} mutates self.{attr} outside "
                    f"'with self.{sorted(lock_attrs)[0]}' although "
                    f"{cls.name} owns a lock (move under the lock, or "
                    "rename the helper *_locked if the caller holds it)",
                    path,
                    mutation,
                )
                for attr, mutation in _unguarded_mutations(
                    item, state_attrs, lock_attrs
                )
            )
        return violations


def _lock_attributes(init: ast.FunctionDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        creates_lock = any(
            isinstance(sub, ast.Call)
            and _name_chain(sub.func).split(".")[-1] in {"Lock", "RLock"}
            for sub in ast.walk(node.value)
        )
        if not creates_lock:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _init_assigned_attributes(init: ast.FunctionDef) -> set[str]:
    attrs: set[str] = set()
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


def _self_attr(node: ast.AST, attrs: set[str]) -> str | None:
    """The attribute name when ``node`` is ``self.<attr in attrs>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in attrs
    ):
        return node.attr
    return None


def _unguarded_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    state_attrs: set[str],
    lock_attrs: set[str],
) -> list[tuple[str, ast.AST]]:
    """(attr, node) pairs mutated outside any ``with self.<lock>``."""
    found: list[tuple[str, ast.AST]] = []

    def guarded_by_lock(with_node: ast.With | ast.AsyncWith) -> bool:
        return any(
            _self_attr(item.context_expr, lock_attrs) is not None
            for item in with_node.items
        )

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or guarded_by_lock(node)
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not func
        ):
            # Nested function: conservatively inherit the current guard.
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)
            return
        if not guarded:
            mutated = _mutated_attr(node, state_attrs)
            if mutated is not None:
                found.append((mutated, node))
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(func, False)
    return found


def _mutated_attr(node: ast.AST, state_attrs: set[str]) -> str | None:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            direct = _self_attr(target, state_attrs)
            if direct is not None:
                return direct
            if isinstance(target, ast.Subscript):
                via_subscript = _self_attr(target.value, state_attrs)
                if via_subscript is not None:
                    return via_subscript
    if isinstance(node, ast.Delete):
        for target in node.targets:
            direct = _self_attr(target, state_attrs)
            if direct is not None:
                return direct
            if isinstance(target, ast.Subscript):
                via_subscript = _self_attr(target.value, state_attrs)
                if via_subscript is not None:
                    return via_subscript
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATOR_METHODS
    ):
        return _self_attr(node.func.value, state_attrs)
    return None


# ---------------------------------------------------------------------------
# RPR004: no internal use of deprecated legacy kwargs
# ---------------------------------------------------------------------------


@dataclass
class LegacyKeywordRule:
    """Inside src/repro, multiply entry points take ``options=`` only.

    The deprecated keyword surface exists for downstream callers during
    migration; internal call sites using it would warn at every call and
    re-entrench the sprawl ``MultiplyOptions`` removed.
    """

    code: str = "RPR004"
    summary: str = "internal multiply calls use MultiplyOptions, not legacy kwargs"

    def applies(self, path: str) -> bool:
        return _in_src(path)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _name_chain(node.func).split(".")[-1]
            if callee not in _LEGACY_ENTRY_POINTS:
                continue
            for keyword in node.keywords:
                if keyword.arg in _LEGACY_KEYWORDS:
                    violations.append(
                        _violation(
                            self.code,
                            f"{callee}({keyword.arg}=...) uses a deprecated "
                            "legacy keyword inside src/repro; pass "
                            f"options=MultiplyOptions({keyword.arg}=...) "
                            "instead",
                            path,
                            keyword.value,
                        )
                    )
        return violations


# ---------------------------------------------------------------------------
# RPR005: observability coverage of tile-pair loops
# ---------------------------------------------------------------------------

_RPR005_SCOPE = ("kernels/", "engine/executor.py")
_LOOP_MARKERS = ("pair", "tile", "product")


@dataclass
class SpanCoverageRule:
    """Public kernel/executor functions looping over tile pairs open spans.

    The observability layer's value depends on the hot loops being
    covered: a public function in the kernel/executor layer that
    iterates pairs, tiles or products without any span leaves a hole in
    every trace.  Detection is name-based: a ``for`` loop whose iterable
    mentions pair/tile/product identifiers requires a ``with`` on a
    ``*span*`` callable somewhere in the function.
    """

    code: str = "RPR005"
    summary: str = "public tile-pair loops are covered by a span"

    def applies(self, path: str) -> bool:
        return any(part in path for part in _RPR005_SCOPE)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        violations: list[Violation] = []
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            loop = _first_tile_loop(node)
            if loop is None:
                continue
            if _opens_span(node):
                continue
            violations.append(
                _violation(
                    self.code,
                    f"public function {node.name} loops over tile "
                    "pairs/products without opening a span; wrap the loop "
                    "in tracer.span(...)/maybe_span(...)",
                    path,
                    loop,
                )
            )
        return violations


def _first_tile_loop(func: ast.AST) -> ast.AST | None:
    for node in ast.walk(func):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        identifiers = {
            part.lower()
            for sub in ast.walk(node.iter)
            for part in _identifier_parts(sub)
        }
        if any(
            marker in identifier
            for identifier in identifiers
            for marker in _LOOP_MARKERS
        ):
            return node
    return None


def _identifier_parts(node: ast.AST) -> list[str]:
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _opens_span(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                callee = _name_chain(expr.func).split(".")[-1]
                if "span" in callee.lower():
                    return True
    return False


# ---------------------------------------------------------------------------
# RPR006: annotation completeness (the mypy --strict AST proxy)
# ---------------------------------------------------------------------------


@dataclass
class AnnotationRule:
    """Every function in src/repro is fully annotated.

    ``mypy --strict`` enforces this and much more, but it cannot run in
    every environment this repo builds in; this rule is the dependency-
    free floor so un-annotated code never lands even where mypy is
    unavailable.  ``self``/``cls`` receivers and ``**kwargs`` under a
    ``# type: ignore``-free decorator chain follow mypy's rules: every
    parameter and the return type must carry an annotation.
    """

    code: str = "RPR006"
    summary: str = "functions in src/repro are fully annotated"
    require_return: bool = True

    def applies(self, path: str) -> bool:
        return _in_src(path)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        violations: list[Violation] = []

        def visit(node: ast.AST, *, in_class: bool) -> None:
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    visit(child, in_class=True)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(
                    self._check_function(node, path, in_class=in_class)
                )
                for child in node.body:
                    visit(child, in_class=False)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, in_class=in_class)

        for node in tree.body:
            visit(node, in_class=False)
        return violations

    def _check_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        path: str,
        *,
        in_class: bool,
    ) -> list[Violation]:
        if _is_overload(func):
            return []
        missing: list[str] = []
        args = func.args
        positional = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if in_class and index == 0 and arg.arg in {"self", "cls"}:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        out: list[Violation] = []
        if missing:
            out.append(
                _violation(
                    self.code,
                    f"{func.name}() is missing parameter annotations: "
                    + ", ".join(missing),
                    path,
                    func,
                )
            )
        if self.require_return and func.returns is None:
            out.append(
                _violation(
                    self.code,
                    f"{func.name}() is missing a return annotation "
                    "(use -> None for procedures)",
                    path,
                    func,
                )
            )
        return out


def _is_overload(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        _name_chain(decorator).split(".")[-1] == "overload"
        for decorator in func.decorator_list
    )


# ---------------------------------------------------------------------------
# RPR007: atomic writes to final paths
# ---------------------------------------------------------------------------

#: Mode characters that make an ``open(...)`` call a write.
_WRITE_MODE_CHARS = frozenset("wax+")


@dataclass
class AtomicWriteRule:
    """File-writing code in src/repro goes through the atomic helper.

    A crash between ``open(path, "w")`` and the final flush leaves a
    truncated file at the *final* path — exactly the failure mode the
    durability layer exists to rule out.  Inside src/repro every write
    to a real path must use :func:`repro.ioutil.atomic_write` (temp
    file + fsync + rename); the helper module itself is the one place
    allowed to open files for writing.  Reads are unrestricted, and a
    call whose mode is not a string literal is skipped (cannot prove a
    write).
    """

    code: str = "RPR007"
    summary: str = "writes under src/repro use ioutil.atomic_write"

    def applies(self, path: str) -> bool:
        return _in_src(path) and not path.endswith("repro/ioutil.py")

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "write_text",
                "write_bytes",
            }:
                violations.append(
                    _violation(
                        self.code,
                        f".{node.func.attr}(...) writes to the final path "
                        f"non-atomically; use repro.ioutil.atomic_"
                        f"{node.func.attr} instead",
                        path,
                        node,
                    )
                )
                continue
            mode = self._open_mode(node)
            if mode is None:
                continue
            if _WRITE_MODE_CHARS.intersection(mode):
                callee = _name_chain(node.func) or "open"
                violations.append(
                    _violation(
                        self.code,
                        f"{callee}(..., {mode!r}) opens the final path for "
                        "writing; a crash mid-write leaves it truncated — "
                        "use repro.ioutil.atomic_write instead",
                        path,
                        node,
                    )
                )
        return violations

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        """The literal mode of an ``open``-like call, or ``None``.

        Covers the builtin ``open(file, mode)`` and ``<expr>.open(mode)``
        (``Path.open``).  Returns ``None`` for non-open calls and for
        calls whose mode is not a string literal.
        """
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode_index = 1
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
            mode_index = 0
        else:
            return None
        mode_node: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
        if mode_node is None and len(node.args) > mode_index:
            mode_node = node.args[mode_index]
        if mode_node is None:
            return "r"  # open() defaults to read mode
        if isinstance(mode_node, ast.Constant) and isinstance(
            mode_node.value, str
        ):
            return mode_node.value
        return None  # dynamic mode: cannot prove a write


# ---------------------------------------------------------------------------
# RPR008: process management stays inside the supervisor
# ---------------------------------------------------------------------------

#: The one module allowed to import ``multiprocessing``.
_RPR008_ALLOWED = "resilience/supervisor.py"


@dataclass
class ProcessBoundaryRule:
    """Only ``resilience/supervisor.py`` may use ``multiprocessing``.

    The supervised shard executor owns every process-lifecycle concern:
    start method selection, queue plumbing, heartbeat liveness, crash
    detection and reassignment.  A second ad-hoc ``multiprocessing``
    call site would fork workers that no supervisor watches — exactly
    the unrecoverable hang class the supervisor exists to rule out.
    Detected: any ``import multiprocessing``/``from multiprocessing
    import ...`` (including submodules) and any use of
    ``ProcessPoolExecutor``, outside the allowed module.
    """

    code: str = "RPR008"
    summary: str = "multiprocessing is used only by resilience/supervisor.py"

    def applies(self, path: str) -> bool:
        return _in_src(path) and not path.endswith(_RPR008_ALLOWED)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        violations.append(self._flag(alias.name, path, node))
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    violations.append(self._flag(module, path, node))
                elif module.startswith("concurrent.futures"):
                    for alias in node.names:
                        if alias.name == "ProcessPoolExecutor":
                            violations.append(
                                self._flag("ProcessPoolExecutor", path, node)
                            )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr == "ProcessPoolExecutor"
                    and _name_chain(node).startswith("concurrent.futures.")
                ):
                    violations.append(
                        self._flag("ProcessPoolExecutor", path, node)
                    )
        return violations

    def _flag(self, what: str, path: str, node: ast.AST) -> Violation:
        return _violation(
            self.code,
            f"{what} used outside resilience/supervisor.py; worker "
            "processes must be spawned through the supervised shard "
            "executor so crashes are detected and pairs reassigned",
            path,
            node,
        )


# ---------------------------------------------------------------------------

ALL_RULES: tuple[object, ...] = (
    KernelRegistryRule(),
    DeterminismRule(),
    LockDisciplineRule(),
    LegacyKeywordRule(),
    SpanCoverageRule(),
    AnnotationRule(),
    AtomicWriteRule(),
    ProcessBoundaryRule(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}
