"""Cross-file rules RPR009-RPR012 over the whole-program index.

Unlike the per-file rules, these implement ``check_project(index)`` and
see every module at once: the lock-order graph (RPR009), blocking work
reachable from the service's async handlers (RPR010), nondeterminism
taint flowing into plan construction (RPR011), and shared mutable state
written from thread entrypoints without a lock (RPR012).

The analyses all run off one set of function summaries per index, cached
on the index itself so the four rules share a single dataflow pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .core import Violation
from .graph import FunctionInfo, ProjectIndex
from .flow import (
    BLOCKING_STORE_CLASSES,
    FunctionSummary,
    blocking_closure,
    find_lock_cycles,
    lock_order_edges,
    reachable_chains,
    self_deadlock_edges,
    summarize_project,
)
from .rules import _RPR002_SCOPE

#: Files whose functions seed the determinism-taint walk (RPR011).
_PLAN_ROOT_FILES = (
    "engine/plan.py",
    "engine/fingerprint.py",
    "engine/cache.py",
)


@dataclass
class _Analysis:
    """The shared dataflow products the project rules consume."""

    summaries: dict[str, FunctionSummary]


def _analysis(index: ProjectIndex) -> _Analysis:
    cached = getattr(index, "_repro_flow_analysis", None)
    if cached is None:
        cached = _Analysis(summarize_project(index))
        index._repro_flow_analysis = cached  # type: ignore[attr-defined]
    return cached


def _violation(
    code: str, message: str, func: FunctionInfo, node: ast.AST
) -> Violation:
    return Violation(
        code,
        message,
        func.path,
        getattr(node, "lineno", func.node.lineno),
        getattr(node, "col_offset", 0),
    )


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(_short(name) for name in chain)


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


# ---------------------------------------------------------------------------
# RPR009: lock-order consistency
# ---------------------------------------------------------------------------


@dataclass
class LockOrderRule:
    """Lock acquisitions must follow one global order, with no cycles.

    Builds the project's lock-order graph — an edge ``A -> B`` whenever
    some execution path acquires ``B`` (directly or through any callee)
    while holding ``A`` — and flags every edge that participates in a
    cycle, plus any non-reentrant lock re-acquired while already held
    (a guaranteed self-deadlock).
    """

    code: str = "RPR009"
    summary: str = (
        "lock-order consistency: no cycles in the project's "
        "lock-acquisition graph, no non-reentrant re-acquisition"
    )

    def applies(self, path: str) -> bool:
        del path
        return False  # project-level only

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Violation]:
        del tree, source, path
        return []

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        summaries = _analysis(index).summaries
        locks = index.all_locks()
        edges = lock_order_edges(summaries, locks)
        violations: list[Violation] = []

        for edge in self_deadlock_edges(edges, locks):
            func = index.functions[edge.func]
            via = f" via {_chain_text(edge.via)}" if edge.via else ""
            violations.append(
                _violation(
                    self.code,
                    f"non-reentrant lock {_lock_short(edge.held)} is "
                    f"acquired while already held in {func.short()}{via}; "
                    "this self-deadlocks",
                    func,
                    edge.node,
                )
            )

        cycles = find_lock_cycles(edges)
        reported: set[tuple[str, str]] = set()
        for cycle in cycles:
            cycle_text = " -> ".join(_lock_short(lock) for lock in cycle)
            cycle_pairs = set(zip(cycle, cycle[1:]))
            for edge in edges:
                pair = (edge.held, edge.acquired)
                if pair not in cycle_pairs or pair in reported:
                    continue
                reported.add(pair)
                func = index.functions[edge.func]
                via = f" via {_chain_text(edge.via)}" if edge.via else ""
                violations.append(
                    _violation(
                        self.code,
                        f"lock-order cycle {cycle_text}: this site "
                        f"acquires {_lock_short(edge.acquired)} while "
                        f"holding {_lock_short(edge.held)}{via}",
                        func,
                        edge.node,
                    )
                )
        return violations


def _lock_short(lock_id: str) -> str:
    parts = lock_id.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else lock_id


# ---------------------------------------------------------------------------
# RPR010: no blocking calls reachable from async service code
# ---------------------------------------------------------------------------


@dataclass
class AsyncBlockingRule:
    """``async def`` in ``service/`` must not reach blocking primitives.

    Sync file I/O, ``time.sleep``, ``subprocess``, and the synchronous
    ``CheckpointStore`` / ``JobStore`` methods stall the event loop for
    every connected tenant; they belong behind ``run_in_executor`` /
    ``asyncio.to_thread`` (handing a function *reference* to an executor
    creates no call edge, so properly deferred work passes).
    """

    code: str = "RPR010"
    summary: str = (
        "async service handlers must not reach blocking calls "
        "(sync I/O, sleep, subprocess, sync store methods)"
    )

    def applies(self, path: str) -> bool:
        del path
        return False

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Violation]:
        del tree, source, path
        return []

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        summaries = _analysis(index).summaries
        closure = blocking_closure(summaries)
        violations: list[Violation] = []
        for name, summary in sorted(summaries.items()):
            func = summary.func
            if not func.is_async or "service/" not in func.path:
                continue
            flagged_nodes: set[int] = set()
            for op in summary.blocking:
                flagged_nodes.add(id(op.node))
                violations.append(
                    _violation(
                        self.code,
                        f"blocking call in async {func.short()}: {op.desc}; "
                        "wrap it in run_in_executor/to_thread",
                        func,
                        op.node,
                    )
                )
            for call in summary.calls:
                if id(call.node) in flagged_nodes:
                    continue
                for callee in call.callees:
                    info = summaries.get(callee)
                    if info is None or info.func.is_async:
                        continue
                    if info.func.class_name in BLOCKING_STORE_CLASSES:
                        flagged_nodes.add(id(call.node))
                        violations.append(
                            _violation(
                                self.code,
                                f"async {func.short()} calls sync store "
                                f"method {info.func.short()}(); wrap it in "
                                "run_in_executor/to_thread",
                                func,
                                call.node,
                            )
                        )
                        break
                    reaches = closure.get(callee, [])
                    if reaches:
                        desc, chain = reaches[0]
                        flagged_nodes.add(id(call.node))
                        violations.append(
                            _violation(
                                self.code,
                                f"async {func.short()} reaches a blocking "
                                f"call: {desc} (via {_chain_text(chain)}); "
                                "wrap it in run_in_executor/to_thread",
                                func,
                                call.node,
                            )
                        )
                        break
        return violations


# ---------------------------------------------------------------------------
# RPR011: determinism taint into plan construction
# ---------------------------------------------------------------------------


@dataclass
class DeterminismTaintRule:
    """Plan construction must not *reach* nondeterminism, even remotely.

    RPR002 checks the plan/fingerprint/cache/density files themselves;
    this rule walks the call graph outward from every function defined
    in those plan-construction files and flags nondeterministic
    primitives (wall clock, ambient RNG, ``id()`` keys, unordered-set
    iteration) in any *other* module they reach — the cached-plan replay
    contract taints everything the planner calls.
    """

    code: str = "RPR011"
    summary: str = (
        "determinism taint: plan/fingerprint construction must not reach "
        "wall-clock, RNG, id() keys or unordered-set iteration"
    )

    def applies(self, path: str) -> bool:
        del path
        return False

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Violation]:
        del tree, source, path
        return []

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        summaries = _analysis(index).summaries
        roots = sorted(
            name
            for name, summary in summaries.items()
            if summary.func.path.endswith(_PLAN_ROOT_FILES)
        )
        chains = reachable_chains(
            summaries, roots, follow=lambda s, call, callee: True
        )
        violations: list[Violation] = []
        seen: set[tuple[str, int]] = set()
        for name in sorted(chains):
            summary = summaries[name]
            if _in_rpr002_scope(summary.func.path):
                continue  # the per-file determinism rule owns these
            for op in summary.nondet:
                key = (name, getattr(op.node, "lineno", 0))
                if key in seen:
                    continue
                seen.add(key)
                violations.append(
                    _violation(
                        self.code,
                        f"nondeterminism reachable from plan construction: "
                        f"{op.desc} (via {_chain_text(chains[name])})",
                        summary.func,
                        op.node,
                    )
                )
        return violations


def _in_rpr002_scope(path: str) -> bool:
    return any(part in path for part in _RPR002_SCOPE)


# ---------------------------------------------------------------------------
# RPR012: shared mutable state written from threads without a lock
# ---------------------------------------------------------------------------


@dataclass
class SharedStateRule:
    """State visible across threads must be written under a lock.

    Roots the walk at every function handed to a worker thread
    (``threading.Thread(target=...)``, ``pool.submit/map``,
    ``run_in_executor``, ``asyncio.to_thread`` — but *not*
    ``Process(target=...)``, which shares no memory), follows only
    call edges made while no lock is held, and flags writes to module
    globals or to instance attributes of lock-less classes.
    ``__init__`` and ``*_locked`` methods are exempt by convention.
    """

    code: str = "RPR012"
    summary: str = (
        "shared mutable state must not be written from thread "
        "entrypoints outside a lock"
    )

    def applies(self, path: str) -> bool:
        del path
        return False

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Violation]:
        del tree, source, path
        return []

    def check_project(self, index: ProjectIndex) -> list[Violation]:
        summaries = _analysis(index).summaries
        roots = sorted(
            {
                target
                for summary in summaries.values()
                for target, _node in summary.thread_targets
            }
        )
        chains = reachable_chains(
            summaries,
            roots,
            follow=lambda s, call, callee: not call.held,
        )
        violations: list[Violation] = []
        seen: set[tuple[str, int, str]] = set()
        for name in sorted(chains):
            summary = summaries[name]
            func = summary.func
            if func.name == "__init__" or func.name.endswith("_locked"):
                continue
            for write in summary.writes:
                if write.guarded:
                    continue
                if write.kind == "attr" and _class_has_lock(
                    index, write.name.rsplit(".", 1)[0]
                ):
                    # RPR003 (per-file) enforces discipline for
                    # lock-owning classes; here we only catch classes
                    # with no lock at all touched from threads.
                    continue
                key = (name, getattr(write.node, "lineno", 0), write.name)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(
                    _violation(
                        self.code,
                        f"shared state {_short(write.name)} written without "
                        f"a lock on a thread path "
                        f"(via {_chain_text(chains[name])})",
                        func,
                        write.node,
                    )
                )
        return violations


def _class_has_lock(index: ProjectIndex, class_qualname: str) -> bool:
    for qualname in index._mro(class_qualname):
        cls_info = index.classes.get(qualname)
        if cls_info is not None and cls_info.locks:
            return True
    return False


PROJECT_RULES: tuple[object, ...] = (
    LockOrderRule(),
    AsyncBlockingRule(),
    DeterminismTaintRule(),
    SharedStateRule(),
)

PROJECT_RULES_BY_CODE = {rule.code: rule for rule in PROJECT_RULES}
