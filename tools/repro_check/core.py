"""Rule-agnostic machinery: violations, suppressions, file walking.

A *rule* is an object with a ``code`` (``RPRxxx``), a one-line
``summary``, an ``applies(path)`` predicate over repo-relative POSIX
paths, and a ``check(tree, source, path)`` method returning violations.
*Project rules* additionally implement ``check_project(index)`` and run
once over a :class:`~tools.repro_check.graph.ProjectIndex` of every
scanned ``src/repro`` file, so they can reason across module
boundaries.

The driver parses each file once and hands the same tree to every rule
whose scope matches, then drops violations suppressed by a
``# repro-lint: disable=RPRxxx`` comment anywhere within the reported
statement, or by a file-level ``# repro-lint: disable-file=RPRxxx``.
A committed findings baseline (``.repro-lint-baseline.json``) lets new
rules land gating-clean while their pre-existing findings are tracked.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping
from typing import Any, Protocol

#: Directories never scanned: deliberate-violation fixtures and caches.
EXCLUDED_PARTS = frozenset(
    {"fixtures", "__pycache__", ".git", "build", "dist", ".egg-info"}
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a concrete source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule(Protocol):
    """Interface every RPR rule implements."""

    code: str
    summary: str

    def applies(self, path: str) -> bool: ...

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Violation]: ...


class ProjectRule(Rule, Protocol):
    """A rule that additionally analyses the whole program at once."""

    def check_project(self, index: Any) -> list[Violation]: ...


def is_project_rule(rule: Rule) -> bool:
    return callable(getattr(rule, "check_project", None))


@dataclass
class CheckResult:
    """Outcome of one run: violations plus scan bookkeeping."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    errors: list[Violation] = field(default_factory=list)

    @property
    def all_violations(self) -> list[Violation]:
        """Violations plus scan errors, in stable (path, line, code) order."""
        return sorted(
            self.violations + self.errors,
            key=lambda v: (v.path, v.line, v.col, v.code),
        )

    @property
    def exit_code(self) -> int:
        return 1 if (self.violations or self.errors) else 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "violations": [v.as_dict() for v in self.all_violations],
        }


def suppressed_codes(
    source: str, tree: ast.Module | None = None
) -> dict[int, set[str]]:
    """Map line number -> rule codes disabled on that line.

    With ``tree``, a disable comment anywhere within a statement also
    suppresses violations reported on the statement's other lines (a
    rule reports a multi-line ``with`` at its first line even when the
    comment sits on a later context-manager line).  For compound
    statements only the header lines — up to the first body statement —
    are joined, so a comment deep inside a function body never
    suppresses the whole function.
    """
    out: dict[int, set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        out[number] = {code for code in codes if code}
    if tree is None or not out:
        return out
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = node.end_lineno or node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = min(end, body[0].lineno - 1)
        if end <= node.lineno:
            continue
        span = range(node.lineno, end + 1)
        joined: set[str] = set()
        for line in span:
            joined |= out.get(line, set())
        if joined:
            for line in span:
                out.setdefault(line, set()).update(joined)
    return out


def file_suppressed_codes(source: str) -> set[str]:
    """Codes disabled for the whole file via ``disable-file=``."""
    codes: set[str] = set()
    for match in _SUPPRESS_FILE_RE.finditer(source):
        codes.update(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
    return codes


def iter_python_files(roots: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under the given roots, excluded parts pruned."""
    files: list[Path] = []
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.append(root)
            continue
        for path in sorted(root.rglob("*.py")):
            if EXCLUDED_PARTS.isdisjoint(path.parts):
                files.append(path)
    return files


def relative_posix(path: Path, base: Path) -> str:
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_source(
    source: str,
    path: str,
    rules: Iterable[Rule],
    *,
    honor_scope: bool = True,
) -> list[Violation]:
    """Run rules over one in-memory source file.

    ``path`` is the repo-relative POSIX path used both for scoping and
    for reporting.  ``honor_scope=False`` forces every rule to run (the
    fixture tests use this to point a rule at an arbitrary snippet).
    """
    tree = ast.parse(source, filename=path)
    suppressions = suppressed_codes(source, tree)
    file_suppressions = file_suppressed_codes(source)
    violations: list[Violation] = []
    for rule in rules:
        if honor_scope and not rule.applies(path):
            continue
        for violation in rule.check(tree, source, path):
            if violation.code in file_suppressions:
                continue
            if violation.code in suppressions.get(violation.line, set()):
                continue
            violations.append(violation)
    return sorted(violations, key=lambda v: (v.line, v.col, v.code))


def in_project_scope(rel: str) -> bool:
    """True for files that feed the whole-program index (src/repro)."""
    return rel.startswith("src/repro/") or "/src/repro/" in rel


def check_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    *,
    base: Path | None = None,
) -> CheckResult:
    """Run rules over files/directories; the CLI entry point's engine.

    Per-file rules run on every scanned file; project rules (those with
    a ``check_project`` method) run once over an index built from the
    scanned ``src/repro`` files, with the same suppression comments
    honored at the reported locations.
    """
    base = base if base is not None else Path.cwd()
    rules = list(rules)
    file_rules = [rule for rule in rules if not is_project_rule(rule)]
    project_rules = [rule for rule in rules if is_project_rule(rule)]
    result = CheckResult()
    project_sources: dict[str, str] = {}
    suppression_maps: dict[str, dict[int, set[str]]] = {}
    file_suppression_sets: dict[str, set[str]] = {}
    for file_path in iter_python_files(Path(p) for p in paths):
        rel = relative_posix(file_path, base)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 0) or 0
            result.errors.append(
                Violation("RPR000", f"file does not parse: {error}", rel, line)
            )
            continue
        result.files_checked += 1
        suppressions = suppressed_codes(source, tree)
        file_suppressions = file_suppressed_codes(source)
        if project_rules and in_project_scope(rel):
            project_sources[rel] = source
            suppression_maps[rel] = suppressions
            file_suppression_sets[rel] = file_suppressions
        for rule in file_rules:
            if not rule.applies(rel):
                continue
            for violation in rule.check(tree, source, rel):
                if violation.code in file_suppressions or (
                    violation.code in suppressions.get(violation.line, set())
                ):
                    result.suppressed += 1
                    continue
                result.violations.append(violation)
    if project_rules and project_sources:
        from .graph import ProjectIndex

        index = ProjectIndex.from_sources(project_sources)
        for rule in project_rules:
            for violation in rule.check_project(index):
                if violation.code in file_suppression_sets.get(
                    violation.path, set()
                ) or violation.code in suppression_maps.get(
                    violation.path, {}
                ).get(violation.line, set()):
                    result.suppressed += 1
                    continue
                result.violations.append(violation)
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return result


# ---------------------------------------------------------------------------
# findings baseline
# ---------------------------------------------------------------------------

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def baseline_key(violation: Violation) -> tuple[str, str, str]:
    """Baselines match on (code, path, message) — robust to line drift."""
    return (violation.code, violation.path, violation.message)


def load_baseline(path: str | Path) -> Counter[tuple[str, str, str]]:
    """The committed findings baseline as a multiset of match keys."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    keys: Counter[tuple[str, str, str]] = Counter()
    for entry in data.get("findings", []):
        keys[(entry["code"], entry["path"], entry["message"])] += 1
    return keys


def write_baseline(result: CheckResult, path: str | Path) -> int:
    """Persist the run's violations as the new baseline; returns count."""
    findings = [
        {
            "code": violation.code,
            "path": violation.path,
            "message": violation.message,
            "line": violation.line,  # informational; matching ignores it
        }
        for violation in result.all_violations
    ]
    payload = {"version": BASELINE_VERSION, "findings": findings}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(findings)


def apply_baseline(
    result: CheckResult, baseline: Mapping[tuple[str, str, str], int]
) -> list[Violation]:
    """Drop baselined findings from ``result`` (mutating it).

    Returns the *stale* baseline entries — expected findings that no
    longer occur — expanded back into placeholder violations so callers
    can report them (a stale entry means the baseline needs refreshing,
    not that the run fails).
    """
    remaining = Counter(baseline)
    kept: list[Violation] = []
    for violation in result.violations:
        key = baseline_key(violation)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            result.baselined += 1
            continue
        kept.append(violation)
    result.violations = kept
    stale: list[Violation] = []
    for (code, path, message), count in sorted(remaining.items()):
        for _ in range(count):
            stale.append(Violation(code, f"[stale baseline] {message}", path, 0))
    return stale
