"""Rule-agnostic machinery: violations, suppressions, file walking.

A *rule* is an object with a ``code`` (``RPRxxx``), a one-line
``summary``, an ``applies(path)`` predicate over repo-relative POSIX
paths, and a ``check(tree, source, path)`` method returning violations.
The driver parses each file once and hands the same tree to every rule
whose scope matches, then drops violations suppressed by a same-line
``# repro-lint: disable=RPRxxx`` comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable
from typing import Any, Protocol

#: Directories never scanned: deliberate-violation fixtures and caches.
EXCLUDED_PARTS = frozenset(
    {"fixtures", "__pycache__", ".git", "build", "dist", ".egg-info"}
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a concrete source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule(Protocol):
    """Interface every RPR rule implements."""

    code: str
    summary: str

    def applies(self, path: str) -> bool: ...

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Violation]: ...


@dataclass
class CheckResult:
    """Outcome of one run: violations plus scan bookkeeping."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    errors: list[Violation] = field(default_factory=list)

    @property
    def all_violations(self) -> list[Violation]:
        """Violations plus scan errors, in stable (path, line, code) order."""
        return sorted(
            self.violations + self.errors,
            key=lambda v: (v.path, v.line, v.col, v.code),
        )

    @property
    def exit_code(self) -> int:
        return 1 if (self.violations or self.errors) else 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "violations": [v.as_dict() for v in self.all_violations],
        }


def suppressed_codes(source: str) -> dict[int, set[str]]:
    """Map line number -> rule codes disabled on that line."""
    out: dict[int, set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        out[number] = {code for code in codes if code}
    return out


def iter_python_files(roots: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under the given roots, excluded parts pruned."""
    files: list[Path] = []
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.append(root)
            continue
        for path in sorted(root.rglob("*.py")):
            if EXCLUDED_PARTS.isdisjoint(path.parts):
                files.append(path)
    return files


def relative_posix(path: Path, base: Path) -> str:
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_source(
    source: str,
    path: str,
    rules: Iterable[Rule],
    *,
    honor_scope: bool = True,
) -> list[Violation]:
    """Run rules over one in-memory source file.

    ``path`` is the repo-relative POSIX path used both for scoping and
    for reporting.  ``honor_scope=False`` forces every rule to run (the
    fixture tests use this to point a rule at an arbitrary snippet).
    """
    tree = ast.parse(source, filename=path)
    suppressions = suppressed_codes(source)
    violations: list[Violation] = []
    for rule in rules:
        if honor_scope and not rule.applies(path):
            continue
        for violation in rule.check(tree, source, path):
            if violation.code in suppressions.get(violation.line, set()):
                continue
            violations.append(violation)
    return sorted(violations, key=lambda v: (v.line, v.col, v.code))


def check_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    *,
    base: Path | None = None,
) -> CheckResult:
    """Run rules over files/directories; the CLI entry point's engine."""
    base = base if base is not None else Path.cwd()
    rules = list(rules)
    result = CheckResult()
    for file_path in iter_python_files(Path(p) for p in paths):
        rel = relative_posix(file_path, base)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 0) or 0
            result.errors.append(
                Violation("RPR000", f"file does not parse: {error}", rel, line)
            )
            continue
        result.files_checked += 1
        suppressions = suppressed_codes(source)
        for rule in rules:
            if not rule.applies(rel):
                continue
            for violation in rule.check(tree, source, rel):
                if violation.code in suppressions.get(violation.line, set()):
                    result.suppressed += 1
                    continue
                result.violations.append(violation)
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return result
