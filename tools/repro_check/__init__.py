"""repro-check: domain-invariant static analysis for the repro codebase.

The generic gates (``mypy --strict``, ruff) check what any Python
project needs checked.  This package checks what only *this* project
needs checked — the structural invariants of the paper's dispatch design
and of the plan-and-execute engine that no general-purpose tool can
know about:

RPR001
    Kernel-registry completeness: every (sparse|dense) x (sparse|dense)
    x output-kind combination has a registered kernel (paper section
    III-A: 2**3 = 8 kernels).
RPR002
    Plan determinism: no wall-clock reads, ambient randomness,
    ``id()``-keyed containers or set-iteration-order dependence in the
    modules whose output is cached under a plan key.
RPR003
    Locking discipline: classes that own a ``threading.Lock`` mutate
    their ``__init__``-assigned state only under ``with self._lock``.
RPR004
    No internal use of the deprecated legacy multiply keywords; options
    flow through ``MultiplyOptions`` inside ``src/repro``.
RPR005
    Observability coverage: public kernel/executor functions that loop
    over tile pairs open a span.
RPR006
    Annotation completeness: every function in ``src/repro`` is fully
    annotated (the AST-level proxy for the ``mypy --strict`` gate,
    runnable without mypy installed).

The whole-program passes see every ``src/repro`` module at once through
a project index (``graph.py``) and an interprocedural dataflow layer
(``flow.py``):

RPR009
    Lock-order consistency: no cycles in the project's lock-acquisition
    graph, no non-reentrant lock re-acquired while already held.
RPR010
    No blocking calls (sync I/O, ``time.sleep``, ``subprocess``, sync
    ``CheckpointStore``/``JobStore`` methods) reachable from ``async
    def`` service handlers without ``run_in_executor``/``to_thread``.
RPR011
    Determinism taint: plan/fingerprint construction must not *reach*
    wall-clock, ambient RNG, ``id()`` keys or unordered-set iteration
    in any module it calls into.
RPR012
    Shared mutable state: module globals and lock-less instance
    attributes must not be written on thread paths outside a lock.

A runtime twin (``sanitize.py``, enabled with ``REPRO_SANITIZE=1``)
records actual lock acquisition orders during the test suite and
cross-checks them against RPR009's static graph.

Run ``python -m tools.repro_check src tests`` from the repository root.
Violations are suppressed per line with ``# repro-lint: disable=RPRxxx``
(anywhere within the statement), per file with ``# repro-lint:
disable-file=RPRxxx``, or tracked in ``.repro-lint-baseline.json``
(``--baseline``).
"""

from .core import (
    CheckResult,
    Violation,
    apply_baseline,
    check_paths,
    check_source,
    load_baseline,
    write_baseline,
)
from .graph import ProjectIndex
from .project_rules import PROJECT_RULES, PROJECT_RULES_BY_CODE
from .rules import ALL_RULES, RULES_BY_CODE

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "PROJECT_RULES_BY_CODE",
    "RULES_BY_CODE",
    "CheckResult",
    "ProjectIndex",
    "Violation",
    "apply_baseline",
    "check_paths",
    "check_source",
    "load_baseline",
    "write_baseline",
]
