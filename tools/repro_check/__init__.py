"""repro-check: domain-invariant static analysis for the repro codebase.

The generic gates (``mypy --strict``, ruff) check what any Python
project needs checked.  This package checks what only *this* project
needs checked — the structural invariants of the paper's dispatch design
and of the plan-and-execute engine that no general-purpose tool can
know about:

RPR001
    Kernel-registry completeness: every (sparse|dense) x (sparse|dense)
    x output-kind combination has a registered kernel (paper section
    III-A: 2**3 = 8 kernels).
RPR002
    Plan determinism: no wall-clock reads, ambient randomness,
    ``id()``-keyed containers or set-iteration-order dependence in the
    modules whose output is cached under a plan key.
RPR003
    Locking discipline: classes that own a ``threading.Lock`` mutate
    their ``__init__``-assigned state only under ``with self._lock``.
RPR004
    No internal use of the deprecated legacy multiply keywords; options
    flow through ``MultiplyOptions`` inside ``src/repro``.
RPR005
    Observability coverage: public kernel/executor functions that loop
    over tile pairs open a span.
RPR006
    Annotation completeness: every function in ``src/repro`` is fully
    annotated (the AST-level proxy for the ``mypy --strict`` gate,
    runnable without mypy installed).

Run ``python -m tools.repro_check src tests`` from the repository root.
Violations are suppressed per line with ``# repro-lint: disable=RPRxxx``.
"""

from .core import CheckResult, Violation, check_paths, check_source
from .rules import ALL_RULES, RULES_BY_CODE

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "CheckResult",
    "Violation",
    "check_paths",
    "check_source",
]
