"""Runtime lock-order sanitizer: dynamic evidence for RPR009's graph.

Enabled with ``REPRO_SANITIZE=1``, :func:`install` monkeypatches the
``threading.Lock`` / ``threading.RLock`` factories so every lock
*created by project code* is wrapped in a recorder.  The wrapper keys
each lock by its creation site (``src/repro/engine/cache.py:116``) —
the same (path, line) identity the static index's
:class:`~tools.repro_check.graph.LockInfo` carries — and records, per
thread, the order in which locks are actually acquired during the test
suite.

After the run, :func:`verify` cross-checks the observed graph:

* an **inversion** — both ``A -> B`` and ``B -> A`` observed — is a
  latent deadlock and fails the run;
* an observed edge the static RPR009 graph does not know about is
  reported as a **staleness warning**: the static model is conservative
  by refusal, so unknown edges are expected where calls do not resolve,
  but the list is printed so drift stays visible.

Locks created outside ``src/repro`` (pytest internals, stdlib pools,
test helpers) pass through unwrapped, so overhead and noise stay
negligible.  The patch must be installed before ``repro`` is imported:
module-level locks (``_deprecations._lock``) are created at import
time.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Path fragment marking frames that belong to project code.
_PROJECT_FRAGMENT = "src/repro/"


@dataclass
class LockOrderRecorder:
    """Observed lock-order edges, collected across all threads."""

    #: (held_key, acquired_key) -> first witness description
    edges: dict[tuple[str, str], str] = field(default_factory=dict)
    #: creation-site keys of every lock the recorder wrapped
    lock_keys: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._guard = _REAL_LOCK()
        self._held = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_create(self, key: str) -> None:
        with self._guard:
            self.lock_keys.add(key)

    def on_acquire(self, key: str) -> None:
        stack = self._stack()
        held = [k for k in stack if k != key]
        if held:
            witness = f"{threading.current_thread().name}: {' -> '.join(stack + [key])}"
            with self._guard:
                for holder in held:
                    self.edges.setdefault((holder, key), witness)
        stack.append(key)

    def on_release(self, key: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == key:
                del stack[index]
                return

    def inversions(self) -> list[tuple[str, str, str, str]]:
        """Edge pairs observed in both directions: (a, b, witness_ab, witness_ba)."""
        found: list[tuple[str, str, str, str]] = []
        with self._guard:
            for (a, b), witness in sorted(self.edges.items()):
                if a < b and (b, a) in self.edges:
                    found.append((a, b, witness, self.edges[(b, a)]))
        return found

    def edge_keys(self) -> set[tuple[str, str]]:
        with self._guard:
            return set(self.edges)


class SanitizedLock:
    """A lock proxy that reports acquire/release to a recorder.

    ``threading.Lock()`` returns an unsubclassable ``_thread.lock``, so
    sanitization wraps instead of inheriting; everything the recorder
    does not need is delegated to the real lock.
    """

    def __init__(
        self, real: Any, key: str, recorder: LockOrderRecorder
    ) -> None:
        self._real = real
        self._key = key
        self._recorder = recorder
        recorder.on_create(key)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._real.acquire(blocking, timeout)
        if acquired:
            self._recorder.on_acquire(self._key)
        return acquired

    def release(self) -> None:
        self._recorder.on_release(self._key)
        self._real.release()

    def locked(self) -> bool:
        return bool(self._real.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)

    def __repr__(self) -> str:
        return f"<SanitizedLock {self._key} wrapping {self._real!r}>"


#: The active global recorder while installed (None otherwise).
_ACTIVE_RECORDER: LockOrderRecorder | None = None


def _creation_site() -> str | None:
    """``path:line`` of the project code creating a lock, if any.

    Only the factory's *direct* caller counts: a lock the stdlib
    creates on a project's behalf (``ThreadPoolExecutor``'s queue
    internals, say) is not a project lock and has no static
    :class:`~tools.repro_check.graph.LockInfo` to match.  The key uses
    the same repo-relative POSIX path the static index uses.
    """
    frame = sys._getframe(2)
    if frame is None:
        return None
    filename = Path(frame.f_code.co_filename).as_posix()
    marker = filename.find(_PROJECT_FRAGMENT)
    if marker == -1:
        return None
    return f"{filename[marker:]}:{frame.f_lineno}"


def _sanitizing_factory(real_factory: Any) -> Any:
    def factory() -> Any:
        real = real_factory()
        recorder = _ACTIVE_RECORDER
        if recorder is None:
            return real
        key = _creation_site()
        if key is None:
            return real
        return SanitizedLock(real, key, recorder)

    return factory


def install(recorder: LockOrderRecorder | None = None) -> LockOrderRecorder:
    """Patch the threading lock factories; returns the active recorder."""
    global _ACTIVE_RECORDER
    if _ACTIVE_RECORDER is not None:
        return _ACTIVE_RECORDER
    _ACTIVE_RECORDER = recorder if recorder is not None else LockOrderRecorder()
    threading.Lock = _sanitizing_factory(_REAL_LOCK)  # type: ignore[misc]
    threading.RLock = _sanitizing_factory(_REAL_RLOCK)  # type: ignore[misc]
    return _ACTIVE_RECORDER


def uninstall() -> None:
    """Restore the real factories (already-wrapped locks keep working)."""
    global _ACTIVE_RECORDER
    _ACTIVE_RECORDER = None
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    threading.RLock = _REAL_RLOCK  # type: ignore[misc]


def active_recorder() -> LockOrderRecorder | None:
    return _ACTIVE_RECORDER


# ---------------------------------------------------------------------------
# cross-check against the static RPR009 graph
# ---------------------------------------------------------------------------


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def static_edge_keys(root: Path | None = None) -> set[tuple[str, str]]:
    """RPR009's lock-order edges as (creation-site, creation-site) keys."""
    from .core import iter_python_files
    from .flow import lock_order_edges, summarize_project
    from .graph import ProjectIndex

    root = root if root is not None else _repo_root()
    files = iter_python_files([root / "src" / "repro"])
    index = ProjectIndex.from_files(files, base=root)
    summaries = summarize_project(index)
    locks = index.all_locks()
    site = {
        lock_id: f"{info.path}:{info.line}" for lock_id, info in locks.items()
    }
    return {
        (site[edge.held], site[edge.acquired])
        for edge in lock_order_edges(summaries, locks)
        if edge.held in site and edge.acquired in site
    }


@dataclass
class SanitizeReport:
    """Outcome of one sanitized run."""

    observed_edges: int
    inversions: list[tuple[str, str, str, str]]
    unknown_edges: list[tuple[str, str]]

    def summary(self) -> str:
        lines = [
            f"repro-sanitize: {self.observed_edges} lock-order edge(s) "
            f"observed, {len(self.inversions)} inversion(s), "
            f"{len(self.unknown_edges)} edge(s) unknown to the static graph"
        ]
        for a, b, witness_ab, witness_ba in self.inversions:
            lines.append(f"  INVERSION {a} <-> {b}")
            lines.append(f"    {witness_ab}")
            lines.append(f"    {witness_ba}")
        for a, b in self.unknown_edges:
            lines.append(f"  stale/unknown edge {a} -> {b}")
        return "\n".join(lines)


def check(
    recorder: LockOrderRecorder | None = None,
    *,
    static_edges: set[tuple[str, str]] | None = None,
) -> SanitizeReport:
    """Compare the observed graph with the static one (no side effects)."""
    recorder = recorder if recorder is not None else _ACTIVE_RECORDER
    if recorder is None:
        return SanitizeReport(0, [], [])
    if static_edges is None:
        static_edges = static_edge_keys()
    observed = recorder.edge_keys()
    unknown = sorted(edge for edge in observed if edge not in static_edges)
    return SanitizeReport(len(observed), recorder.inversions(), unknown)


def verify(recorder: LockOrderRecorder | None = None) -> SanitizeReport:
    """Like :func:`check`, but raises on observed inversions."""
    report = check(recorder)
    if report.inversions:
        raise AssertionError(report.summary())
    return report
