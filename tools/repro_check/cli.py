"""Command-line front end: ``python -m tools.repro_check [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from .core import CheckResult, check_paths
from .rules import ALL_RULES, RULES_BY_CODE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Domain-invariant static analysis for the repro codebase "
            "(RPR001-RPR006); see docs/STATIC_ANALYSIS.md for the catalog."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule violation count (text format)",
    )
    return parser


def _selected_rules(spec: str | None) -> list[object]:
    if spec is None:
        return list(ALL_RULES)
    codes = [code.strip().upper() for code in spec.split(",") if code.strip()]
    unknown = [code for code in codes if code not in RULES_BY_CODE]
    if unknown:
        raise SystemExit(
            f"repro-check: unknown rule code(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES_BY_CODE))}"
        )
    return [RULES_BY_CODE[code] for code in codes]


def _render_text(result: CheckResult, statistics: bool) -> str:
    lines = [violation.render() for violation in result.all_violations]
    total = len(result.all_violations)
    if statistics and total:
        counts: dict[str, int] = {}
        for violation in result.all_violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        lines.append("")
        lines.extend(
            f"{code}: {count}" for code, count in sorted(counts.items())
        )
    summary = (
        f"repro-check: {result.files_checked} files, {total} violation(s)"
        + (f", {result.suppressed} suppressed" if result.suppressed else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    rules = _selected_rules(args.select)
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-check: path(s) not found: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    result = check_paths(args.paths, rules)
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(_render_text(result, args.statistics))
    return result.exit_code
