"""Command-line front end: ``python -m tools.repro_check [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from .core import (
    DEFAULT_BASELINE,
    CheckResult,
    Violation,
    apply_baseline,
    check_paths,
    load_baseline,
    write_baseline,
)
from .project_rules import PROJECT_RULES, PROJECT_RULES_BY_CODE
from .rules import ALL_RULES, RULES_BY_CODE

#: Per-file rules first, then the whole-program passes.
EVERY_RULE: tuple[object, ...] = tuple(ALL_RULES) + tuple(PROJECT_RULES)
EVERY_RULE_BY_CODE = {**RULES_BY_CODE, **PROJECT_RULES_BY_CODE}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Domain-invariant static analysis for the repro codebase "
            "(per-file RPR001-RPR008 and whole-program RPR009-RPR012); "
            "see docs/STATIC_ANALYSIS.md for the catalog."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule violation count (text format)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_BASELINE,
        help=(
            "drop findings recorded in the given baseline file "
            f"(default when given without a value: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_BASELINE,
        help="write the run's findings as the new baseline and exit 0",
    )
    return parser


def _selected_rules(spec: str | None) -> list[object]:
    if spec is None:
        return list(EVERY_RULE)
    codes = [code.strip().upper() for code in spec.split(",") if code.strip()]
    unknown = [code for code in codes if code not in EVERY_RULE_BY_CODE]
    if unknown:
        raise SystemExit(
            f"repro-check: unknown rule code(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(EVERY_RULE_BY_CODE))}"
        )
    return [EVERY_RULE_BY_CODE[code] for code in codes]


def _render_text(result: CheckResult, statistics: bool) -> str:
    lines = [violation.render() for violation in result.all_violations]
    total = len(result.all_violations)
    if statistics and total:
        counts: dict[str, int] = {}
        for violation in result.all_violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        lines.append("")
        lines.extend(
            f"{code}: {count}" for code, count in sorted(counts.items())
        )
    summary = (
        f"repro-check: {result.files_checked} files, {total} violation(s)"
        + (f", {result.suppressed} suppressed" if result.suppressed else "")
        + (f", {result.baselined} baselined" if result.baselined else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def _render_github(result: CheckResult) -> str:
    """GitHub Actions workflow-command annotations, one per finding."""
    lines = []
    for violation in result.all_violations:
        message = violation.message.replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::error file={violation.path},line={violation.line},"
            f"col={violation.col},title={violation.code}::{message}"
        )
    lines.append(
        f"repro-check: {result.files_checked} files, "
        f"{len(result.all_violations)} violation(s)"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in EVERY_RULE:
            print(f"{rule.code}  {rule.summary}")
        return 0
    rules = _selected_rules(args.select)
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-check: path(s) not found: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    result = check_paths(args.paths, rules)
    if args.write_baseline:
        count = write_baseline(result, args.write_baseline)
        print(
            f"repro-check: wrote {count} finding(s) to {args.write_baseline}"
        )
        return 0
    stale: list[Violation] = []
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(
                f"repro-check: baseline not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            print(
                f"repro-check: bad baseline {args.baseline}: {error}",
                file=sys.stderr,
            )
            return 2
        stale = apply_baseline(result, baseline)
    if args.format == "json":
        payload = result.as_dict()
        if stale:
            payload["stale_baseline"] = [v.as_dict() for v in stale]
        print(json.dumps(payload, indent=2))
    elif args.format == "github":
        print(_render_github(result))
    else:
        print(_render_text(result, args.statistics))
        for violation in stale:
            print(f"note: stale baseline entry: {violation.render()}")
    return result.exit_code
