"""Interprocedural dataflow over the project index.

One pass per function produces a :class:`FunctionSummary` — the lock
regions it opens, the calls it makes (with the locks held at each call
site), the shared-state writes it performs, the functions it hands to
threads, and the blocking / nondeterministic primitives it touches.
Everything the cross-file rules need is then a graph computation over
the summaries:

* :func:`effective_acquires` — the fixed point of "locks this function
  may acquire, directly or through any callee";
* :func:`lock_order_edges` — the project's lock-acquisition-order
  graph, each edge carrying the call chain that witnesses it;
* :func:`find_lock_cycles` — strongly connected components of that
  graph (every cycle is a potential deadlock, every 2-cycle an
  inconsistent acquisition order);
* :func:`reachable_chains` — BFS over call edges with a per-edge
  filter, returning a witness chain per reached function (the engine
  behind the async-blocking and determinism-taint rules);
* :func:`blocking_closure` — the fixed point of "blocking primitives
  this function may hit, directly or through any sync callee".

The call graph is the index's conservative one: unresolvable calls
contribute no edges, so chains reported by the rules are always real
resolution paths through the source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping

from .graph import (
    ClassInfo,
    FunctionInfo,
    LockInfo,
    ProjectIndex,
    _dotted,
    _lock_created_by,
)

#: Methods that mutate their receiver in place (mirrors rules.py's set).
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "move_to_end", "sort",
        "reverse", "appendleft", "extendleft",
    }
)

#: Call-name tails that hand their function argument to a worker thread,
#: mapped to how the target is passed (kwarg name or positional index).
_THREAD_DISPATCHERS: dict[str, tuple[str | None, int]] = {
    "Thread": ("target", -1),
    "submit": (None, 0),
    "map": (None, 0),
    "run_in_executor": (None, 1),
    "to_thread": (None, 0),
}

#: Direct blocking primitives for the async rule: dotted-name matchers.
_BLOCKING_EXACT = {
    "time.sleep": "time.sleep() blocks the event loop",
    "os.fsync": "os.fsync() blocks on disk flush",
    "os.replace": "os.replace() performs sync file I/O",
}
_BLOCKING_HEADS = {
    "subprocess": "subprocess call blocks until the child finishes",
    "shutil": "shutil call performs sync file I/O",
}
_BLOCKING_IO_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes", "open"}
)
_NUMPY_IO = frozenset(
    {"load", "save", "savez", "savez_compressed", "loadtxt", "savetxt"}
)

#: Classes whose (sync) methods the async rule treats as blocking sinks.
BLOCKING_STORE_CLASSES = frozenset({"CheckpointStore", "JobStore"})


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition site inside a function."""

    lock: LockInfo
    node: ast.AST
    #: locks already held (lock ids; "?" marks an unresolvable guard)
    held: tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One resolved call: candidate callees plus the locks held."""

    callees: tuple[str, ...]
    node: ast.AST
    held: tuple[str, ...]


@dataclass(frozen=True)
class Write:
    """One shared-state write: a module global or a ``self`` attribute."""

    kind: str  #: "global" | "attr"
    name: str  #: qualified state name (module.NAME or module.Class.attr)
    node: ast.AST
    guarded: bool


@dataclass(frozen=True)
class Op:
    """One flagged primitive (blocking or nondeterministic)."""

    desc: str
    node: ast.AST


@dataclass
class FunctionSummary:
    func: FunctionInfo
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    writes: list[Write] = field(default_factory=list)
    #: functions this one hands to a worker thread
    thread_targets: list[tuple[str, ast.AST]] = field(default_factory=list)
    blocking: list[Op] = field(default_factory=list)
    nondet: list[Op] = field(default_factory=list)


#: Sentinel held-lock id for guards we can see but not identify.
ANON_GUARD = "?"


def summarize_project(index: ProjectIndex) -> dict[str, FunctionSummary]:
    """One :class:`FunctionSummary` per indexed function."""
    summaries: dict[str, FunctionSummary] = {}
    for qualname, func in index.functions.items():
        summaries[qualname] = _summarize_function(index, func)
    return summaries


# ---------------------------------------------------------------------------
# per-function summarization
# ---------------------------------------------------------------------------


def _summarize_function(
    index: ProjectIndex, func: FunctionInfo
) -> FunctionSummary:
    module = index.modules[func.module]
    cls_info = index.class_of(func)
    summary = FunctionSummary(func)
    random_names = _ambient_random_imports(module.tree)

    local_types = dict(index.parameter_types(module, func.node))
    local_locks: dict[str, LockInfo] = {}
    local_names: set[str] = {
        arg.arg
        for arg in [
            *func.node.args.posonlyargs,
            *func.node.args.args,
            *func.node.args.kwonlyargs,
        ]
    }
    global_decls: set[str] = set()

    # Pre-pass: local bindings, local lock objects, declared globals.
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local_names.add(target.id)
                    lock = _lock_created_by(
                        node.value,
                        f"{func.qualname}.{target.id}",
                        func.path,
                    )
                    if lock is not None:
                        local_locks[target.id] = lock
                    else:
                        types = index._expr_types(
                            module, node.value, local_types, cls_info
                        )
                        if types:
                            local_types.setdefault(target.id, types)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                local_names.add(node.target.id)
                if isinstance(node, ast.AnnAssign) and node.annotation is not None:
                    types = index.annotation_types(module, node.annotation)
                    if types:
                        local_types.setdefault(node.target.id, types)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    local_names.add(target.id)
    local_names -= global_decls

    def resolve_lock(expr: ast.expr) -> LockInfo | None:
        """The LockInfo an expression denotes, if we can tell."""
        if isinstance(expr, ast.Name):
            if expr.id in local_locks:
                return local_locks[expr.id]
            if expr.id not in local_names and expr.id in module.locks:
                return module.locks[expr.id]
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if cls_info is not None:
                    return index.lookup_lock(cls_info.qualname, expr.attr)
                return None
            base_types = index._expr_types(
                module, expr.value, local_types, cls_info
            )
            for base in base_types:
                lock = index.lookup_lock(base, expr.attr)
                if lock is not None:
                    return lock
        return None

    def resolve_callable_ref(expr: ast.expr) -> str | None:
        """Qualname of a *function reference* (not a call) expression."""
        if isinstance(expr, ast.Name):
            resolved = index.resolve_name(module, expr.id)
            if resolved in index.functions:
                return resolved
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                if cls_info is not None:
                    return index.lookup_method(cls_info.qualname, expr.attr)
                return None
            dotted = _dotted(expr)
            if dotted:
                resolved = index.resolve_name(module, dotted)
                if resolved in index.functions:
                    return resolved
            base_types = index._expr_types(
                module, expr.value, local_types, cls_info
            )
            for base in base_types:
                method = index.lookup_method(base, expr.attr)
                if method is not None:
                    return method
        return None

    def resolve_call(call: ast.Call) -> tuple[str, ...]:
        """Candidate callee qualnames of a call expression."""
        found: list[str] = []
        direct = resolve_callable_ref(call.func)
        if direct is not None:
            found.append(direct)
        dotted = _dotted(call.func)
        if dotted:
            resolved = index.resolve_name(module, dotted)
            if resolved in index.classes:
                init = index.lookup_method(resolved, "__init__")
                found.append(init if init is not None else resolved + ".__init__")
        if not found and isinstance(call.func, ast.Attribute):
            # Chained call: ``f(...).method(...)`` through return types.
            if isinstance(call.func.value, ast.Call):
                inner = resolve_call(call.func.value)
                for callee in inner:
                    returns = _return_types(index, callee)
                    for cls in returns:
                        method = index.lookup_method(cls, call.func.attr)
                        if method is not None:
                            found.append(method)
        return tuple(dict.fromkeys(found))

    def thread_target_of(call: ast.Call) -> ast.expr | None:
        tail = _dotted(call.func).split(".")[-1]
        if tail not in _THREAD_DISPATCHERS:
            return None
        if tail in {"submit", "map", "run_in_executor", "to_thread"} and not (
            isinstance(call.func, ast.Attribute)
            or tail == "to_thread"
        ):
            return None
        kwarg, position = _THREAD_DISPATCHERS[tail]
        if kwarg is not None:
            for keyword in call.keywords:
                if keyword.arg == kwarg:
                    return keyword.value
        if position >= 0 and len(call.args) > position:
            return call.args[position]
        return None

    def record_blocking(call: ast.Call) -> None:
        dotted = _dotted(call.func)
        desc = _BLOCKING_EXACT.get(dotted)
        if desc is None and dotted:
            head = dotted.split(".")[0]
            desc = _BLOCKING_HEADS.get(head)
            parts = dotted.split(".")
            if (
                desc is None
                and len(parts) >= 2
                and parts[0] in {"np", "numpy"}
                and parts[-1] in _NUMPY_IO
            ):
                desc = f"{dotted}() performs sync file I/O"
        if desc is None and isinstance(call.func, ast.Name) and call.func.id == "open":
            desc = "open() performs sync file I/O"
        if (
            desc is None
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in _BLOCKING_IO_METHODS
        ):
            desc = f".{call.func.attr}() performs sync file I/O"
        if desc is not None:
            summary.blocking.append(Op(desc, call))

    def held_ids(guards: list[LockInfo | None]) -> tuple[str, ...]:
        return tuple(
            guard.lock_id if guard is not None else ANON_GUARD
            for guard in guards
        )

    def visit(node: ast.AST, guards: list[LockInfo | None]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[LockInfo | None] = []
            for item in node.items:
                lock = resolve_lock(item.context_expr)
                if lock is not None:
                    summary.acquisitions.append(
                        Acquisition(lock, item.context_expr, held_ids(guards))
                    )
                    acquired.append(lock)
                elif _looks_like_lock(item.context_expr):
                    acquired.append(None)
                # The context expressions themselves run under the outer
                # guard set only.
                visit_expr(item.context_expr, guards)
            inner = guards + acquired
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not func.node
        ):
            # Nested function: conservatively inherit the current guards
            # (closures usually run where they are defined; thread-
            # dispatched ones are picked up via thread_targets).
            for child in ast.iter_child_nodes(node):
                visit(child, guards)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            _record_writes(
                node, summary, func, cls_info, module, local_names,
                global_decls, bool(guards),
            )
        if isinstance(node, ast.Call):
            visit_call(node, guards)
        record_nondet_single(node)
        for child in ast.iter_child_nodes(node):
            visit(child, guards)

    def visit_expr(node: ast.AST, guards: list[LockInfo | None]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                visit_call(sub, guards, walk_children=False)

    seen_calls: set[int] = set()

    def visit_call(
        call: ast.Call,
        guards: list[LockInfo | None],
        walk_children: bool = True,
    ) -> None:
        del walk_children
        if id(call) in seen_calls:
            return
        seen_calls.add(id(call))
        callees = resolve_call(call)
        summary.calls.append(CallSite(callees, call, held_ids(guards)))
        record_blocking(call)
        target = thread_target_of(call)
        if target is not None:
            resolved_target = resolve_callable_ref(target)
            if resolved_target is not None:
                summary.thread_targets.append((resolved_target, call))
        # ``lock.acquire()`` outside a with-statement still orders locks.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "acquire"
        ):
            lock = resolve_lock(call.func.value)
            if lock is not None:
                summary.acquisitions.append(
                    Acquisition(lock, call, held_ids(guards))
                )
        # Mutator-method writes (self.attr.append(...), NAME.update(...)).
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATOR_METHODS
        ):
            _record_mutation_write(
                call.func.value, summary, func, cls_info, module,
                local_names, global_decls, bool(guards), call,
            )

    nondet_seen: set[int] = set()

    def record_nondet_single(node: ast.AST) -> None:
        if id(node) in nondet_seen:
            return
        nondet_seen.add(id(node))
        summary.nondet.extend(_scan_nondet_node(node, random_names))

    for stmt in func.node.body:
        visit(stmt, [])
    return summary


def _record_writes(
    node: ast.Assign | ast.AugAssign | ast.AnnAssign | ast.Delete,
    summary: FunctionSummary,
    func: FunctionInfo,
    cls_info: ClassInfo | None,
    module: object,
    local_names: set[str],
    global_decls: set[str],
    guarded: bool,
) -> None:
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    else:
        targets = [node.target]
    for target in targets:
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        _record_mutation_write(
            base, summary, func, cls_info, module, local_names,
            global_decls, guarded, node, direct=not isinstance(target, ast.Subscript),
        )


def _record_mutation_write(
    base: ast.expr,
    summary: FunctionSummary,
    func: FunctionInfo,
    cls_info: ClassInfo | None,
    module: object,
    local_names: set[str],
    global_decls: set[str],
    guarded: bool,
    node: ast.AST,
    direct: bool = False,
) -> None:
    module_vars: set[str] = getattr(module, "module_vars", set())
    module_name: str = getattr(module, "name", "")
    module_locks: dict[str, LockInfo] = getattr(module, "locks", {})
    if isinstance(base, ast.Name):
        name = base.id
        if name in module_locks:
            return
        is_global_write = name in global_decls or (
            not direct and name not in local_names and name in module_vars
        )
        if is_global_write:
            summary.writes.append(
                Write("global", f"{module_name}.{name}", node, guarded)
            )
        return
    if (
        isinstance(base, ast.Attribute)
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
        and cls_info is not None
    ):
        if base.attr in cls_info.locks:
            return
        summary.writes.append(
            Write(
                "attr",
                f"{cls_info.qualname}.{base.attr}",
                node,
                guarded,
            )
        )


def _looks_like_lock(expr: ast.expr) -> bool:
    """Textual fallback: a guard we cannot resolve but should respect."""
    tail = _dotted(expr).split(".")[-1].lower()
    if "lock" in tail or "mutex" in tail:
        return True
    return (
        isinstance(expr, ast.Call)
        and "lock" in _dotted(expr.func).split(".")[-1].lower()
    )


def _return_types(index: ProjectIndex, qualname: str) -> tuple[str, ...]:
    func = index.functions.get(qualname)
    if func is None:
        return ()
    return index.annotation_types(
        index.modules[func.module], func.node.returns
    )


# ---------------------------------------------------------------------------
# nondeterminism scanning (the interprocedural twin of RPR002)
# ---------------------------------------------------------------------------


def _ambient_random_imports(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            names.update(alias.asname or alias.name for alias in node.names)
    return names


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _is_bare_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _scan_nondet_node(node: ast.AST, random_names: set[str]) -> list[Op]:
    """Nondeterminism sources introduced *at* this node (not recursive)."""
    out: list[Op] = []
    if isinstance(node, ast.Call):
        chain = _dotted(node.func)
        if chain in {"time.time", "time.time_ns"}:
            out.append(Op(f"{chain}() reads the wall clock", node))
        if chain == "os.urandom":
            out.append(Op("os.urandom() draws entropy", node))
        head = chain.split(".")[0]
        if head == "random" or chain in random_names:
            out.append(Op(f"{chain}() draws from ambient RNG state", node))
        parts = chain.split(".")
        if (
            len(parts) >= 3
            and parts[0] in {"np", "numpy"}
            and parts[1] == "random"
            and parts[2] != "default_rng"
        ):
            out.append(Op(f"{chain}() uses numpy's global RNG", node))
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"get", "setdefault", "pop"}
            and node.args
            and _is_id_call(node.args[0])
        ):
            out.append(Op("id()-keyed lookup", node))
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple", "enumerate", "iter"}
            and node.args
            and _is_bare_set_expr(node.args[0])
        ):
            out.append(Op("materializing a set in arbitrary order", node))
    elif isinstance(node, (ast.Dict, ast.DictComp)):
        keys = node.keys if isinstance(node, ast.Dict) else [node.key]
        if any(key is not None and _is_id_call(key) for key in keys):
            out.append(Op("id()-keyed dict", node))
    elif isinstance(node, ast.Subscript) and _is_id_call(node.slice):
        out.append(Op("id()-keyed subscript", node))
    elif isinstance(node, (ast.For, ast.comprehension)):
        if _is_bare_set_expr(node.iter):
            out.append(Op("iteration over a set has no deterministic order", node.iter))
    return out


# ---------------------------------------------------------------------------
# interprocedural analyses
# ---------------------------------------------------------------------------


def effective_acquires(
    summaries: Mapping[str, FunctionSummary],
) -> dict[str, set[str]]:
    """Fixed point: lock ids each function may acquire, transitively."""
    acquires: dict[str, set[str]] = {
        name: {acq.lock.lock_id for acq in summary.acquisitions}
        for name, summary in summaries.items()
    }
    changed = True
    while changed:
        changed = False
        for name, summary in summaries.items():
            current = acquires[name]
            before = len(current)
            for call in summary.calls:
                for callee in call.callees:
                    callee_set = acquires.get(callee)
                    if callee_set:
                        current |= callee_set
            if len(current) != before:
                changed = True
    return acquires


@dataclass(frozen=True)
class OrderEdge:
    """``held`` was held while ``acquired`` was (transitively) acquired."""

    held: str
    acquired: str
    func: str  #: function whose body witnesses the edge
    node: ast.AST  #: acquisition or call site inside the held region
    via: tuple[str, ...]  #: call chain from the region to the acquisition


def lock_order_edges(
    summaries: Mapping[str, FunctionSummary],
    locks: Mapping[str, LockInfo],
) -> list[OrderEdge]:
    """Every held -> acquired ordering the project exhibits."""
    acquires = effective_acquires(summaries)
    direct_holders: dict[str, list[str]] = {}
    for name, summary in summaries.items():
        for acq in summary.acquisitions:
            direct_holders.setdefault(acq.lock.lock_id, []).append(name)

    edges: list[OrderEdge] = []
    seen: set[tuple[str, str, str, int]] = set()

    def add(
        held: str, acquired: str, func: str, node: ast.AST, via: tuple[str, ...]
    ) -> None:
        key = (held, acquired, func, getattr(node, "lineno", 0))
        if key in seen:
            return
        seen.add(key)
        edges.append(OrderEdge(held, acquired, func, node, via))

    for name, summary in summaries.items():
        for acq in summary.acquisitions:
            for held in acq.held:
                if held != ANON_GUARD:
                    add(held, acq.lock.lock_id, name, acq.node, ())
        for call in summary.calls:
            held_locks = [h for h in call.held if h != ANON_GUARD]
            if not held_locks:
                continue
            for callee in call.callees:
                for lock_id in sorted(acquires.get(callee, set())):
                    if lock_id not in locks:
                        continue
                    chain = _witness_chain(
                        summaries, callee, lock_id, acquires
                    )
                    for held in held_locks:
                        add(held, lock_id, name, call.node, chain)
    return edges


def _witness_chain(
    summaries: Mapping[str, FunctionSummary],
    start: str,
    lock_id: str,
    acquires: Mapping[str, set[str]],
) -> tuple[str, ...]:
    """Shortest call chain from ``start`` to a direct acquirer of the lock."""
    queue: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
    visited = {start}
    while queue:
        current, chain = queue.pop(0)
        summary = summaries.get(current)
        if summary is None:
            continue
        if any(acq.lock.lock_id == lock_id for acq in summary.acquisitions):
            return chain
        for call in summary.calls:
            for callee in call.callees:
                if callee in visited:
                    continue
                if lock_id not in acquires.get(callee, set()):
                    continue
                visited.add(callee)
                queue.append((callee, chain + (callee,)))
    return (start,)


def find_lock_cycles(edges: Iterable[OrderEdge]) -> list[list[str]]:
    """Cycles in the lock-order graph, self-loops excluded, deduplicated.

    Each cycle is returned as a lock-id list ``[a, b, ..., a]`` rotated
    so the lexicographically smallest id leads, which makes reporting
    deterministic.
    """
    graph: dict[str, set[str]] = {}
    for edge in edges:
        if edge.held == edge.acquired:
            continue
        graph.setdefault(edge.held, set()).add(edge.acquired)
        graph.setdefault(edge.acquired, set())

    cycles: list[list[str]] = []
    seen_keys: set[tuple[str, ...]] = set()

    for component in _sccs(graph):
        if len(component) < 2:
            continue
        members = set(component)
        start = min(component)
        cycle = _cycle_through(graph, start, members)
        if cycle is None:
            continue
        key = tuple(sorted(set(cycle)))
        if key in seen_keys:
            continue
        seen_keys.add(key)
        cycles.append(cycle)
    return sorted(cycles)


def _sccs(graph: Mapping[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components, iteratively."""
    index_counter = 0
    indices: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []

    for root in sorted(graph):
        if root in indices:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = low[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(graph.get(node, set()))
            for offset in range(child_index, len(children)):
                child = children[offset]
                if child not in indices:
                    work[-1] = (node, offset + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], indices[child])
            if advanced:
                continue
            work.pop()
            if low[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return result


def _cycle_through(
    graph: Mapping[str, set[str]], start: str, members: set[str]
) -> list[str] | None:
    """A concrete cycle through ``start`` inside one SCC."""
    path = [start]
    visited = {start}

    def dfs(node: str) -> list[str] | None:
        for child in sorted(graph.get(node, set())):
            if child == start and len(path) > 1:
                return path + [start]
            if child in members and child not in visited:
                visited.add(child)
                path.append(child)
                found = dfs(child)
                if found is not None:
                    return found
                path.pop()
        return None

    return dfs(start)


def self_deadlock_edges(
    edges: Iterable[OrderEdge], locks: Mapping[str, LockInfo]
) -> list[OrderEdge]:
    """Held -> same-lock acquisitions on non-reentrant locks."""
    return [
        edge
        for edge in edges
        if edge.held == edge.acquired
        and edge.held in locks
        and not locks[edge.held].reentrant
    ]


def reachable_chains(
    summaries: Mapping[str, FunctionSummary],
    roots: Iterable[str],
    *,
    follow: Callable[[FunctionSummary, CallSite, str], bool],
) -> dict[str, tuple[str, ...]]:
    """BFS over call edges; returns reached function -> witness chain.

    ``follow(summary, call_site, callee)`` decides whether an edge is
    traversed.  Roots map to single-element chains.
    """
    chains: dict[str, tuple[str, ...]] = {}
    queue: list[str] = []
    for root in roots:
        if root not in chains and root in summaries:
            chains[root] = (root,)
            queue.append(root)
    while queue:
        current = queue.pop(0)
        summary = summaries[current]
        for call in summary.calls:
            for callee in call.callees:
                if callee in chains or callee not in summaries:
                    continue
                if not follow(summary, call, callee):
                    continue
                chains[callee] = chains[current] + (callee,)
                queue.append(callee)
    return chains


def blocking_closure(
    summaries: Mapping[str, FunctionSummary],
) -> dict[str, list[tuple[str, tuple[str, ...]]]]:
    """Fixed point of blocking primitives reachable through sync calls.

    Maps each function to ``[(description, chain), ...]`` where the
    chain walks from the function itself to the one containing the
    primitive.  Async callees stop propagation (they suspend, not
    block), as does anything the call graph cannot resolve.
    """
    closure: dict[str, dict[str, tuple[str, ...]]] = {}
    for name, summary in summaries.items():
        direct: dict[str, tuple[str, ...]] = {}
        for op in summary.blocking:
            direct.setdefault(op.desc, (name,))
        for call in summary.calls:
            for callee in call.callees:
                info = summaries.get(callee)
                if info is not None and info.func.class_name in BLOCKING_STORE_CLASSES:
                    direct.setdefault(
                        f"sync {info.func.short()}() store call", (name,)
                    )
        closure[name] = direct
    changed = True
    while changed:
        changed = False
        for name, summary in summaries.items():
            if summary.func.is_async:
                continue
            current = closure[name]
            for call in summary.calls:
                for callee in call.callees:
                    info = summaries.get(callee)
                    if info is None or info.func.is_async:
                        continue
                    for desc, chain in closure[callee].items():
                        if desc not in current:
                            current[desc] = (name,) + chain
                            changed = True
    return {
        name: sorted(entries.items())
        for name, entries in closure.items()
    }
