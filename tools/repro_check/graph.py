"""Whole-program index: modules, symbols, types, and a call graph.

The per-file rules see one ``ast.Module`` at a time; the cross-file
rules (RPR009-RPR012) need to know *what a call lands on* — which class
``self.store`` holds, which function ``observe_session.counter`` is,
which locks a callee acquires.  :class:`ProjectIndex` answers those
questions conservatively, from nothing but the parsed sources:

* a **module table** mapping dotted module names to their trees and
  their import bindings (``from ..ioutil import atomic_write_text``
  resolves through the package layout, including relative imports);
* a **symbol table** of every top-level function, class, method and
  module-level assignment, keyed by qualified name
  (``repro.engine.cache.PlanCache.get``);
* a light **type model**: instance-attribute types recovered from
  ``__init__`` assignments, dataclass field annotations and parameter
  annotations; local-variable types from constructor calls; function
  return annotations (so ``observe_session.counter(...).inc()``
  resolves through the union return type to ``Counter.inc``);
* a **lock model**: every ``threading.Lock()`` / ``threading.RLock()``
  bound to a module-level name, an instance attribute or a function
  local, with its creation site — the same (path, line) identity the
  runtime sanitizer records, so static and dynamic evidence line up.

Resolution is *conservative by refusal*: a call the type model cannot
pin down resolves to no callees at all rather than to every method of
that name in the project.  The cross-file rules are therefore
under-approximate (they can miss) but precise (what they report is
backed by a resolvable chain) — the right trade for a gating linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping

#: Names whose call creates a lock object (the last attribute segment).
_LOCK_FACTORIES = {"Lock": False, "RLock": True}


@dataclass(frozen=True)
class LockInfo:
    """One lock object the project creates, with its creation site."""

    lock_id: str  #: e.g. ``repro.engine.cache.PlanCache._lock``
    path: str
    line: int
    reentrant: bool

    def short(self) -> str:
        """The lock id without the leading package segments."""
        parts = self.lock_id.split(".")
        return ".".join(parts[-2:]) if len(parts) > 1 else self.lock_id


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def name(self) -> str:
        return self.node.name

    def short(self) -> str:
        parts = self.qualname.split(".")
        return ".".join(parts[-2:]) if self.class_name else parts[-1]


@dataclass
class ClassInfo:
    """One class: methods, recovered attribute types, owned locks."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> candidate class qualnames (from ``__init__``
    #: assignments, dataclass fields and annotations)
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: lock-holding attribute name -> LockInfo
    locks: dict[str, LockInfo] = field(default_factory=dict)
    #: base-class qualnames resolved within the project
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution environment."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: local name -> fully qualified target (module or module.symbol)
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)
    #: module-level lock name -> LockInfo
    locks: dict[str, LockInfo] = field(default_factory=dict)
    #: names assigned at module level (shared mutable state candidates)
    module_vars: set[str] = field(default_factory=set)
    #: module-level ``NAME: Annotation`` declarations (raw nodes;
    #: resolved lazily once imports are in place)
    var_annotations: dict[str, ast.expr] = field(default_factory=dict)


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative POSIX path.

    ``src/repro/engine/cache.py`` -> ``repro.engine.cache``; virtual
    fixture paths follow the same rule when they contain a ``repro/``
    segment, and otherwise fall back to the file stem so single-file
    fixture projects still index cleanly.
    """
    posix = Path(path).as_posix()
    parts = posix.split("/")
    if "repro" in parts:
        tail = parts[parts.index("repro"):]
    elif parts[0] == "src" and len(parts) > 1:
        tail = parts[1:]
    else:
        tail = [parts[-1]]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail) or Path(path).stem


class ProjectIndex:
    """The whole-program symbol/type/call index the project rules consume."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: path of every indexed file, in indexing order
        self.paths: list[str] = []

    # -- construction ------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> ProjectIndex:
        """Build an index from ``{repo-relative path: source}``.

        Unparsable files are skipped (the per-file driver already
        reports them as RPR000).
        """
        index = cls()
        for path, source in sources.items():
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            name = module_name_for(path)
            index.modules[name] = ModuleInfo(name, path, tree, source)
            index.paths.append(path)
        for info in index.modules.values():
            index._collect_module(info)
        for info in index.modules.values():
            index._resolve_imports(info)
        for cls_info in index.classes.values():
            index._resolve_class(cls_info)
        return index

    @classmethod
    def from_files(
        cls, files: Iterable[Path], *, base: Path | None = None
    ) -> ProjectIndex:
        from .core import relative_posix

        base = base if base is not None else Path.cwd()
        sources: dict[str, str] = {}
        for file_path in files:
            try:
                sources[relative_posix(file_path, base)] = file_path.read_text(
                    encoding="utf-8"
                )
            except (OSError, UnicodeDecodeError):
                continue
        return cls.from_sources(sources)

    def _collect_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{info.name}.{node.name}"
                info.functions[node.name] = qualname
                self.functions[qualname] = FunctionInfo(
                    qualname, info.name, info.path, node
                )
            elif isinstance(node, ast.ClassDef):
                qualname = f"{info.name}.{node.name}"
                info.classes[node.name] = qualname
                cls_info = ClassInfo(qualname, info.name, info.path, node)
                self.classes[qualname] = cls_info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qualname = f"{qualname}.{item.name}"
                        cls_info.methods[item.name] = method_qualname
                        self.functions[method_qualname] = FunctionInfo(
                            method_qualname, info.name, info.path, item, node.name
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        info.module_vars.add(target.id)
                        if isinstance(node, ast.AnnAssign):
                            info.var_annotations[target.id] = node.annotation
                        lock = _lock_created_by(
                            node.value if node.value is not None else None,
                            f"{info.name}.{target.id}",
                            info.path,
                        )
                        if lock is not None:
                            info.locks[target.id] = lock

    def _resolve_imports(self, info: ModuleInfo) -> None:
        package = info.name.rsplit(".", 1)[0] if "." in info.name else info.name
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        info.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                module = self._absolute_module(node, package)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    info.imports[alias.asname or alias.name] = (
                        f"{module}.{alias.name}" if module else alias.name
                    )

    @staticmethod
    def _absolute_module(node: ast.ImportFrom, package: str) -> str:
        if node.level == 0:
            return node.module or ""
        parts = package.split(".")
        # level=1 strips nothing beyond the current package, level=2 one
        # parent, and so on; ``package`` is already the containing package.
        if node.level > 1:
            parts = parts[: -(node.level - 1)] if node.level - 1 < len(parts) else []
        base = ".".join(parts)
        if node.module:
            return f"{base}.{node.module}" if base else node.module
        return base

    def _resolve_class(self, cls_info: ClassInfo) -> None:
        module = self.modules[cls_info.module]
        bases: list[str] = []
        for base in cls_info.node.bases:
            resolved = self.resolve_name(module, _dotted(base))
            if resolved in self.classes:
                bases.append(resolved)
        cls_info.bases = tuple(bases)

        # Dataclass-style field annotations on the class body.
        for item in cls_info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                types = self.annotation_types(module, item.annotation)
                if types:
                    cls_info.attr_types[item.target.id] = types

        init = self.functions.get(f"{cls_info.qualname}.__init__")
        if init is None:
            return
        param_types = self.parameter_types(module, init.node)
        for node in ast.walk(init.node):
            value: ast.expr | None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if isinstance(node, ast.AnnAssign):
                    types = self.annotation_types(module, node.annotation)
                    if types:
                        cls_info.attr_types.setdefault(attr, types)
                if value is None:
                    continue
                lock = _lock_created_by(
                    value, f"{cls_info.qualname}.{attr}", cls_info.path
                )
                if lock is not None:
                    cls_info.locks[attr] = lock
                    continue
                inferred = self._expr_types(module, value, param_types, cls_info)
                if inferred and attr not in cls_info.locks:
                    existing = cls_info.attr_types.get(attr, ())
                    merged = tuple(dict.fromkeys(existing + inferred))
                    cls_info.attr_types[attr] = merged

    # -- name and type resolution -----------------------------------------
    def resolve_name(self, module: ModuleInfo, dotted: str) -> str:
        """Fully qualified name for ``dotted`` as seen from ``module``.

        Walks the import table for the head segment, then appends the
        rest: ``observe_session.counter`` ->
        ``repro.observe.session.counter``.  Unresolvable names return
        the input unchanged (callers test membership in the tables).
        """
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        if head in module.functions and not rest:
            return module.functions[head]
        if head in module.classes:
            return (
                f"{module.classes[head]}.{rest}" if rest else module.classes[head]
            )
        target = module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def annotation_types(
        self, module: ModuleInfo, annotation: ast.expr | None
    ) -> tuple[str, ...]:
        """Class qualnames an annotation can denote (unions unpacked)."""
        if annotation is None:
            return ()
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return ()
        found: list[str] = []

        def visit(node: ast.expr) -> None:
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                visit(node.left)
                visit(node.right)
                return
            if isinstance(node, ast.Subscript):
                # Optional[X] / Union[X, Y] unpack; other generics keep
                # the container (list[X] is a list, not an X).
                head = _dotted(node.value).split(".")[-1]
                if head in {"Optional", "Union"}:
                    inner = node.slice
                    elements = (
                        inner.elts if isinstance(inner, ast.Tuple) else [inner]
                    )
                    for element in elements:
                        visit(element)
                    return
                visit(node.value)
                return
            dotted = _dotted(node)
            if not dotted or dotted in {"None", "Any"}:
                return
            resolved = self.resolve_name(module, dotted)
            if resolved in self.classes:
                found.append(resolved)

        visit(annotation)
        return tuple(dict.fromkeys(found))

    def parameter_types(
        self, module: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, tuple[str, ...]]:
        types: dict[str, tuple[str, ...]] = {}
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            resolved = self.annotation_types(module, arg.annotation)
            if resolved:
                types[arg.arg] = resolved
        return types

    def _expr_types(
        self,
        module: ModuleInfo,
        value: ast.expr,
        local_types: Mapping[str, tuple[str, ...]],
        cls_info: ClassInfo | None,
    ) -> tuple[str, ...]:
        """Candidate class qualnames for the value of an expression."""
        if isinstance(value, ast.Call):
            callee = self.resolve_name(module, _dotted(value.func))
            if callee in self.classes:
                return (callee,)
            func = self.functions.get(callee)
            if func is not None:
                return self.annotation_types(
                    self.modules[func.module], func.node.returns
                )
            return ()
        if isinstance(value, ast.Name):
            found = local_types.get(value.id, ())
            if not found and value.id in module.var_annotations:
                found = self.annotation_types(
                    module, module.var_annotations[value.id]
                )
            return found
        if isinstance(value, ast.Attribute):
            base_types = self._expr_types(
                module, value.value, local_types, cls_info
            )
            if (
                not base_types
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and cls_info is not None
            ):
                base_types = (cls_info.qualname,)
            found: list[str] = []
            for base in base_types:
                attr_types = self.attribute_types(base, value.attr)
                found.extend(attr_types)
            return tuple(dict.fromkeys(found))
        if isinstance(value, (ast.IfExp,)):
            return tuple(
                dict.fromkeys(
                    self._expr_types(module, value.body, local_types, cls_info)
                    + self._expr_types(module, value.orelse, local_types, cls_info)
                )
            )
        return ()

    def attribute_types(self, class_qualname: str, attr: str) -> tuple[str, ...]:
        """Types of ``<instance of class>.<attr>``, searching base classes."""
        for qualname in self._mro(class_qualname):
            cls_info = self.classes.get(qualname)
            if cls_info is not None and attr in cls_info.attr_types:
                return cls_info.attr_types[attr]
        return ()

    def lookup_method(self, class_qualname: str, method: str) -> str | None:
        """Qualname of ``method`` on the class or its project bases."""
        for qualname in self._mro(class_qualname):
            cls_info = self.classes.get(qualname)
            if cls_info is not None and method in cls_info.methods:
                return cls_info.methods[method]
        return None

    def lookup_lock(self, class_qualname: str, attr: str) -> LockInfo | None:
        for qualname in self._mro(class_qualname):
            cls_info = self.classes.get(qualname)
            if cls_info is not None and attr in cls_info.locks:
                return cls_info.locks[attr]
        return None

    def _mro(self, class_qualname: str) -> list[str]:
        """Depth-first base-class order (cycles tolerated)."""
        order: list[str] = []
        stack = [class_qualname]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            cls_info = self.classes.get(current)
            if cls_info is not None:
                stack = list(cls_info.bases) + stack
        return order

    def class_of(self, func: FunctionInfo) -> ClassInfo | None:
        if func.class_name is None:
            return None
        return self.classes.get(f"{func.module}.{func.class_name}")

    def functions_under(self, path_parts: tuple[str, ...]) -> list[FunctionInfo]:
        """Every indexed function whose path contains any given part."""
        return [
            func
            for func in self.functions.values()
            if any(part in func.path for part in path_parts)
        ]

    def all_locks(self) -> dict[str, LockInfo]:
        """Every class- and module-owned lock, keyed by lock id."""
        locks: dict[str, LockInfo] = {}
        for module in self.modules.values():
            for lock in module.locks.values():
                locks[lock.lock_id] = lock
        for cls_info in self.classes.values():
            for lock in cls_info.locks.values():
                locks[lock.lock_id] = lock
        return locks


def _dotted(node: ast.AST) -> str:
    """Dotted name of a Name/Attribute chain, or '' when not one."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _lock_created_by(
    value: ast.expr | None, lock_id: str, path: str
) -> LockInfo | None:
    """A LockInfo when ``value`` constructs a threading lock."""
    if value is None:
        return None
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            tail = _dotted(sub.func).split(".")[-1]
            if tail in _LOCK_FACTORIES:
                return LockInfo(
                    lock_id,
                    path,
                    getattr(sub, "lineno", 0),
                    _LOCK_FACTORIES[tail],
                )
    return None
