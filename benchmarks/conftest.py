"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4).  Matrices and their derived
representations are generated once per session and cached; every bench
prints the same rows/series the paper reports, next to pytest-benchmark's
own timing table.

Environment knobs:

``REPRO_BENCH_KEYS``
    Comma-separated suite keys to restrict the workloads (e.g.
    ``R1,R3,G1``).  Default: the full Table-I suite.
"""

from __future__ import annotations

import os
from collections import defaultdict

import pytest

from repro import SystemConfig, build_at_matrix
from repro.formats import coo_to_csr, coo_to_dense
from repro.generate import load_matrix, suite_keys

#: The scaled benchmark configuration (384 KiB LLC -> b_atomic = 128).
BENCH_CONFIG = SystemConfig()


def selected_keys(*, real: bool = True, generated: bool = True) -> list[str]:
    """Suite keys honoring the REPRO_BENCH_KEYS restriction."""
    keys = suite_keys(real=real, generated=generated)
    override = os.environ.get("REPRO_BENCH_KEYS")
    if override:
        wanted = {token.strip() for token in override.split(",") if token.strip()}
        keys = [key for key in keys if key in wanted]
    return keys


class MatrixCache:
    """Lazily generates and caches suite matrices and representations."""

    def __init__(self) -> None:
        self._staged = {}
        self._csr = {}
        self._dense = {}
        self._at = {}

    def staged(self, key: str):
        if key not in self._staged:
            self._staged[key] = load_matrix(key).sum_duplicates()
        return self._staged[key]

    def csr(self, key: str):
        if key not in self._csr:
            self._csr[key] = coo_to_csr(self.staged(key))
        return self._csr[key]

    def dense(self, key: str):
        if key not in self._dense:
            self._dense[key] = coo_to_dense(self.staged(key))
        return self._dense[key]

    def at(self, key: str):
        if key not in self._at:
            self._at[key] = build_at_matrix(self.staged(key), BENCH_CONFIG)
        return self._at[key]


_CACHE = MatrixCache()


@pytest.fixture(scope="session")
def matrices() -> MatrixCache:
    return _CACHE


class ResultCollector:
    """Collects per-(workload, algorithm) seconds for the final tables."""

    def __init__(self) -> None:
        self.series: dict[str, dict[str, dict[str, float]]] = defaultdict(
            lambda: defaultdict(dict)
        )
        self.notes: dict[str, list[str]] = defaultdict(list)

    def record(
        self, experiment: str, algorithm: str, workload: str, seconds: float
    ) -> None:
        self.series[experiment][algorithm][workload] = seconds

    def note(self, experiment: str, line: str) -> None:
        self.notes[experiment].append(line)


_COLLECTOR = ResultCollector()


@pytest.fixture(scope="session")
def collector() -> ResultCollector:
    return _COLLECTOR


def pytest_sessionfinish(session, exitstatus):
    """Dump every collected (experiment, algorithm, workload) timing to
    ``bench_results.json`` next to the benchmarks, so the paper tables can
    be regenerated or post-processed without re-running anything."""
    import json
    from pathlib import Path

    if not _COLLECTOR.series:
        return
    payload = {
        "config": {
            "llc_bytes": BENCH_CONFIG.llc_bytes,
            "b_atomic": BENCH_CONFIG.b_atomic,
            "alpha": BENCH_CONFIG.alpha,
            "beta": BENCH_CONFIG.beta,
        },
        "seconds": {
            experiment: {
                algorithm: dict(workloads)
                for algorithm, workloads in algorithms.items()
            }
            for experiment, algorithms in _COLLECTOR.series.items()
        },
        "notes": dict(_COLLECTOR.notes),
    }
    target = Path(__file__).parent / "bench_results.json"
    target.write_text(json.dumps(payload, indent=2, sort_keys=True))


def register_report(benchmark) -> None:
    """Register a no-op benchmark so report tests survive --benchmark-only.

    The ``test_zz_*_report`` tests only print the paper-style tables; this
    keeps them from being deselected when the harness runs with the
    ``--benchmark-only`` flag.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def bench_once(benchmark, fn):
    """Run a workload exactly once under pytest-benchmark and return
    (result, seconds).  One round keeps the heavy multiplications cheap
    while still registering with the benchmark machinery."""
    result_holder = {}

    def wrapper():
        result_holder["value"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1, warmup_rounds=0)
    return result_holder["value"], benchmark.stats.stats.mean
