"""Fig. 5: the water-level method.

Left: the 1-D histogram of logical block densities of an estimated
result matrix.  Right: the projected memory consumption as a function of
the write density threshold, and the thresholds the water-level method
picks for a sweep of memory limits.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.density import estimate_product_density, water_level_threshold
from repro.density.water_level import memory_at_threshold

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

KEY = next(iter(selected_keys(generated=False)), None) or "R3"


@pytest.fixture(scope="module")
def estimate(matrices):
    dm = matrices.at(KEY).density_map()
    return estimate_product_density(dm, dm)


def test_water_level_runtime(benchmark, estimate, collector):
    """The sweep must be negligible next to a multiplication."""
    all_dense = memory_at_threshold(estimate, 0.0, BENCH_CONFIG)
    all_sparse = memory_at_threshold(estimate, 2.0, BENCH_CONFIG)
    limit = 0.5 * (all_sparse + all_dense)  # halfway down the water column
    result, seconds = bench_once(
        benchmark,
        lambda: water_level_threshold(estimate, limit, BENCH_CONFIG),
    )
    collector.record("fig5", "water_level", KEY, seconds)
    assert result.total_bytes <= limit


def test_zz_fig5_report(benchmark, estimate, capsys):
    register_report(benchmark)
    densities = estimate.grid.ravel()
    bins = np.linspace(0.0, 1.0, 11)
    histogram, _ = np.histogram(densities, bins=bins)
    hist_rows = [
        [f"{lo:.1f}-{hi:.1f}", int(count), "#" * min(60, int(count))]
        for lo, hi, count in zip(bins[:-1], bins[1:], histogram)
    ]
    all_dense = memory_at_threshold(estimate, 0.0, BENCH_CONFIG)
    all_sparse = memory_at_threshold(estimate, 2.0, BENCH_CONFIG)
    sweep_rows = []
    for threshold in np.linspace(0.0, 1.0, 11):
        sweep_rows.append(
            [f"{threshold:.1f}", f"{memory_at_threshold(estimate, float(threshold), BENCH_CONFIG) / 1e6:.2f}"]
        )
    level_rows = []
    for fraction in (1.0, 0.8, 0.6, 0.4, 0.2):
        limit = all_sparse + fraction * max(0.0, all_dense - all_sparse)
        result = water_level_threshold(estimate, limit, BENCH_CONFIG)
        level_rows.append(
            [
                f"{limit / 1e6:.2f}",
                f"{result.threshold:.3f}",
                result.dense_blocks,
                f"{result.total_bytes / 1e6:.2f}",
            ]
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["density bin", "blocks", ""],
                hist_rows,
                title=f"Fig. 5 left: histogram of estimated block densities ({KEY} self-product)",
            )
        )
        print()
        print(
            format_table(
                ["threshold", "memory MB"],
                sweep_rows,
                title="Fig. 5 right: projected memory vs. write density threshold",
            )
        )
        print()
        print(
            format_table(
                ["flexible limit MB", "chosen rho_D_W", "dense blocks", "projected MB"],
                level_rows,
                title="water-level outcomes for a sweep of memory limits",
            )
        )
