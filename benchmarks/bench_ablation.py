"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure, but the paper motivates each parameter in prose:

* the atomic block granularity ``k`` (section II-B2: "our multiplication
  experiments have shown the best results for k = 10", i.e. b_atomic
  equal to the maximum dense tile size);
* the read density threshold ``rho0_R`` (section II-C3: chosen near the
  kernel cost crossover, 0.25 in the paper's configuration);
* the future-work pre-multiplication re-tiling of the left operand
  (section IV-C), evaluated on the R7 x dense case the paper highlights.
"""

import numpy as np
import pytest

from repro import COOMatrix, SystemConfig, atmult, build_at_matrix
from repro.bench import format_table
from repro.core.retile import align_to_operand

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

KEY = "R3" if "R3" in selected_keys() else next(iter(selected_keys()), "R3")
HYPERSPARSE_KEY = "R7" if "R7" in selected_keys() else KEY

_GRANULARITY = {}
_THRESHOLD = {}
_RETILE = {}


# ------------------------------------------------------- b_atomic sweep --
@pytest.mark.parametrize("k", [4, 5, 6, 7, 8])
def test_granularity(benchmark, matrices, collector, k):
    staged = matrices.staged(KEY)
    config = SystemConfig(llc_bytes=BENCH_CONFIG.llc_bytes, b_atomic=2**k)
    at = build_at_matrix(staged, config)

    (result, _), seconds = bench_once(
        benchmark, lambda: atmult(at, at, config=config)
    )
    _GRANULARITY[k] = (seconds, at.num_tiles())
    collector.record("ablation", f"k={k}", KEY, seconds)
    assert result.nnz > 0


# --------------------------------------------------- read-threshold sweep --
@pytest.mark.parametrize("threshold", [0.05, 0.15, 0.25, 0.5, 0.9])
def test_read_threshold(benchmark, matrices, collector, threshold):
    staged = matrices.staged(KEY)
    at = build_at_matrix(staged, BENCH_CONFIG, read_threshold=threshold)
    (result, report), seconds = bench_once(
        benchmark, lambda: atmult(at, at, config=BENCH_CONFIG)
    )
    _THRESHOLD[threshold] = (seconds, report.conversions)
    collector.record("ablation", f"rho0_R={threshold}", KEY, seconds)
    assert result.nnz > 0


# ------------------------------------------- future-work: re-tiling of A --
@pytest.fixture(scope="module")
def hypersparse_case(matrices):
    """The paper's R7 x dense scenario (section IV-C)."""
    staged = matrices.staged(HYPERSPARSE_KEY)
    rng = np.random.default_rng(7)
    free = max(16, min(1024, 3 * staged.nnz // staged.cols))
    dense = COOMatrix.from_dense(rng.random((staged.cols, free)))
    return (
        build_at_matrix(staged, BENCH_CONFIG),
        build_at_matrix(dense, BENCH_CONFIG),
    )


def test_retile_off(benchmark, hypersparse_case, collector):
    a, b = hypersparse_case
    (result, _), seconds = bench_once(
        benchmark, lambda: atmult(a, b, config=BENCH_CONFIG)
    )
    _RETILE["without re-tiling"] = seconds
    collector.record("ablation", "retile_off", HYPERSPARSE_KEY, seconds)
    assert result.nnz > 0


def test_retile_on(benchmark, hypersparse_case, collector):
    a, b = hypersparse_case
    aligned = align_to_operand(a, b)

    (result, _), seconds = bench_once(
        benchmark, lambda: atmult(aligned, b, config=BENCH_CONFIG)
    )
    _RETILE["with re-tiling"] = seconds
    collector.record("ablation", "retile_on", HYPERSPARSE_KEY, seconds)
    assert result.nnz > 0


def test_zz_ablation_report(benchmark, capsys):
    register_report(benchmark)
    with capsys.disabled():
        print()
        rows = [
            [f"k={k} (b={2**k})", f"{seconds * 1e3:.1f}", tiles]
            for k, (seconds, tiles) in sorted(_GRANULARITY.items())
        ]
        print(
            format_table(
                ["granularity", "ATMULT ms", "tiles"],
                rows,
                title=f"ablation: atomic block granularity on {KEY} "
                      f"(paper: best at b_atomic = tau_d_max)",
            )
        )
        print()
        rows = [
            [f"{threshold:.2f}", f"{seconds * 1e3:.1f}", conversions]
            for threshold, (seconds, conversions) in sorted(_THRESHOLD.items())
        ]
        print(
            format_table(
                ["rho0_R", "ATMULT ms", "JIT conversions"],
                rows,
                title=f"ablation: read density threshold on {KEY} (paper: 0.25)",
            )
        )
        print()
        rows = [
            [label, f"{seconds * 1e3:.1f}"] for label, seconds in _RETILE.items()
        ]
        print(
            format_table(
                ["variant", "ATMULT ms"],
                rows,
                title=(
                    f"ablation: pre-multiplication re-tiling on "
                    f"{HYPERSPARSE_KEY} x dense (the paper's future work)"
                ),
            )
        )
