"""Fig. 8: C = A * A with A = B over the full suite.

(a) runtimes of ATMULT, spspd, spdd and ddd relative to the spspsp_gemm
    baseline (larger is faster);
(b) the fraction of ATMULT runtime spent on density estimation and
    dynamic optimization (incl. tile conversions);
(c) the output memory consumption of each approach.

Expected shapes from the paper: ATMULT wins clearly where the topology
has dense regions (R1-R6, skewed G's), is slightly behind spspsp on the
uniform hypersparse R7-R9, spspd generally beats spspsp when the result
is dense, and the ATMULT output is never bigger than the best plain
representation.
"""

import pytest

from repro import atmult
from repro.bench import format_relative_table, format_table
from repro.kernels import ddd_gemm, spdd_gemm, spspd_gemm, spspsp_gemm

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

_SECONDS: dict[str, dict[str, float]] = {}
_MEMORY: dict[str, dict[str, int]] = {}
_REPORTS = {}


def _record(key, algorithm, seconds, output_bytes):
    _SECONDS.setdefault(algorithm, {})[key] = seconds
    _MEMORY.setdefault(algorithm, {})[key] = output_bytes


@pytest.mark.parametrize("key", selected_keys())
def test_spspsp(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    result, seconds = bench_once(benchmark, lambda: spspsp_gemm(csr, csr))
    _record(key, "spspsp", seconds, result.memory_bytes())
    collector.record("fig8", "spspsp", key, seconds)


@pytest.mark.parametrize("key", selected_keys())
def test_spspd(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    result, seconds = bench_once(benchmark, lambda: spspd_gemm(csr, csr))
    _record(key, "spspd", seconds, result.memory_bytes())
    collector.record("fig8", "spspd", key, seconds)


@pytest.mark.parametrize("key", selected_keys())
def test_spdd(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    dense = matrices.dense(key)
    result, seconds = bench_once(benchmark, lambda: spdd_gemm(csr, dense))
    _record(key, "spdd", seconds, result.memory_bytes())
    collector.record("fig8", "spdd", key, seconds)


@pytest.mark.parametrize("key", selected_keys())
def test_ddd(benchmark, matrices, collector, key):
    dense = matrices.dense(key)
    result, seconds = bench_once(benchmark, lambda: ddd_gemm(dense, dense))
    _record(key, "ddd", seconds, result.memory_bytes())
    collector.record("fig8", "ddd", key, seconds)


@pytest.mark.parametrize("key", selected_keys())
def test_atmult(benchmark, matrices, collector, key):
    at = matrices.at(key)
    (result, report), seconds = bench_once(
        benchmark, lambda: atmult(at, at, config=BENCH_CONFIG)
    )
    _record(key, "ATMULT", seconds, result.memory_bytes())
    _REPORTS[key] = report
    collector.record("fig8", "ATMULT", key, seconds)


def test_zz_fig8_report(benchmark, capsys):
    register_report(benchmark)
    keys = [k for k in selected_keys() if k in _SECONDS.get("spspsp", {})]
    with capsys.disabled():
        print()
        print(
            format_relative_table(
                keys,
                {name: _SECONDS.get(name, {}) for name in
                 ["spspsp", "spspd", "spdd", "ddd", "ATMULT"]},
                baseline="spspsp",
                title="Fig. 8a: C = A*A runtime relative to spspsp_gemm (higher = faster)",
            )
        )
        rows = []
        for key in keys:
            report = _REPORTS.get(key)
            if report is None:
                continue
            rows.append(
                [
                    key,
                    f"{report.estimate_fraction:.2%}",
                    f"{report.optimize_fraction:.2%}",
                    report.conversions,
                ]
            )
        print()
        print(
            format_table(
                ["matrix", "density estimation", "optimization", "tile conversions"],
                rows,
                title="Fig. 8b: share of ATMULT runtime spent in estimation/optimization",
            )
        )
        rows = []
        for key in keys:
            rows.append(
                [key]
                + [
                    f"{_MEMORY.get(name, {}).get(key, 0) / 1e6:.1f}"
                    for name in ["spspsp", "spspd", "spdd", "ddd", "ATMULT"]
                ]
            )
        print()
        print(
            format_table(
                ["matrix", "spspsp MB", "spspd MB", "spdd MB", "ddd MB", "ATMULT MB"],
                rows,
                title="Fig. 8c: output memory consumption",
            )
        )
        print(
            "paper shapes: ATMULT >= 1x except R7-R9; spspd > spspsp on dense "
            "results; ATMULT memory <= min(plain) and < CSR where dense regions "
            "exceed rho = S_d/S_sp"
        )
