"""Fig. 6: two-level parallelization and NUMA-aware placement.

The paper pins one worker team per socket, distributes tile-rows
round-robin over the memory nodes and lets first-touch place the result
with its A tile-row.  This bench runs a real ATMULT per machine size,
records its task trace with the matching round-robin placement, and
replays it through the topology simulator comparing:

* the paper policy (round-robin placement + team pinning) per socket
  count (1, 2, 4) — makespan should shrink with sockets;
* placement-oblivious scheduling (pairs land on arbitrary teams) — A's
  locality is lost, increasing the remote-byte fraction;
* pinning plus work stealing.

Note that even the paper's policy reads B tiles remotely (B is
partitioned by *its* tile-rows); pinning guarantees locality of the A
tile-row and, via first touch, of C.
"""

import pytest

from repro import SystemTopology, WorkerTeamScheduler, atmult, build_at_matrix, distribute_tile_rows
from repro.bench import format_table

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

KEY = "R3" if "R3" in selected_keys() else next(iter(selected_keys()), "R3")

_RESULTS = {}
_TRACES = {}


def trace_for(matrices, sockets: int):
    """ATMULT task trace under round-robin placement on ``sockets`` nodes."""
    if sockets not in _TRACES:
        topology = SystemTopology(sockets=sockets, cores_per_socket=4)
        # Fresh build: distribute_tile_rows mutates tile placement in
        # place, and the session cache shares matrices across benches.
        at = build_at_matrix(matrices.staged(KEY), BENCH_CONFIG)
        distribute_tile_rows(at, topology)
        _, report = atmult(at, at, config=BENCH_CONFIG)
        _TRACES[sockets] = report.tasks
    return _TRACES[sockets]


@pytest.mark.parametrize(
    "label,sockets,pinned,stealing",
    [
        ("paper policy, 1 socket", 1, True, False),
        ("paper policy, 2 sockets", 2, True, False),
        ("paper policy, 4 sockets", 4, True, False),
        ("placement-oblivious, 2 sockets", 2, False, False),
        ("pinned + stealing, 2 sockets", 2, True, True),
    ],
)
def test_schedule(benchmark, matrices, collector, label, sockets, pinned, stealing):
    tasks = trace_for(matrices, sockets)
    topology = SystemTopology(sockets=sockets, cores_per_socket=4)
    scheduler = WorkerTeamScheduler(
        topology, honor_pinning=pinned, work_stealing=stealing
    )
    result, seconds = bench_once(benchmark, lambda: scheduler.run(tasks))
    _RESULTS[label] = result
    collector.record("fig6", label, KEY, result.makespan_seconds)


def test_zz_fig6_report(benchmark, capsys):
    register_report(benchmark)
    rows = [
        [
            label,
            f"{r.makespan_seconds * 1e3:.2f}",
            f"{r.parallel_efficiency:.2f}",
            f"{r.remote_fraction:.2%}",
        ]
        for label, r in _RESULTS.items()
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["policy", "sim. makespan ms", "parallel eff.", "remote bytes"],
                rows,
                title=f"Fig. 6: simulated schedules of the {KEY} ATMULT task trace",
            )
        )
        print(
            "paper shapes: makespan shrinks with socket count; pinning keeps "
            "the A tile-row (and C via first touch) local, so the oblivious "
            "policy reads strictly more bytes remotely"
        )
