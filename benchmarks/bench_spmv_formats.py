"""SpMV format comparison (design-motivation ablation).

The paper justifies CSR as its sparse tile representation with Vuduc's
observation that "CSR tends to have best performance for sparse
matrix-vector multiplication on a wide class of matrices" (sections II-A
and V-A).  This bench reproduces that comparison on the suite: CSR vs.
ELLPACK vs. BCSR (3x3 register blocks) vs. dense gemv, plus the AT
Matrix vector path (ATMV), which routes dense regions through gemv.

Expected shapes: CSR best-or-close on every topology; ELL collapses when
row lengths are skewed (padding); BCSR pays its fill-in except on
block-structured matrices; dense only wins at high density; ATMV tracks
the best of CSR/dense per region.
"""

import numpy as np
import pytest

from repro.bench import format_relative_table, format_table
from repro.core.atmv import atmv
from repro.formats.bcsr import BCSRMatrix
from repro.formats.ell import ELLMatrix
from repro.kernels.spmv import csr_spmv, dense_spmv

from .conftest import register_report, bench_once, selected_keys

# ELL materialization on skewed RMAT matrices can exceed memory
# (width = max row nnz); restrict to the real-world family plus G1.
KEYS = [k for k in selected_keys() if not k.startswith("G") or k == "G1"]

_SECONDS: dict[str, dict[str, float]] = {}
_STATS: dict[str, dict[str, float]] = {}

#: Iterations per measurement — SpMV is too fast for single-shot timing.
REPEATS = 10


def _vector(matrices, key):
    rng = np.random.default_rng(1)
    return rng.random(matrices.staged(key).cols)


def _record(key, fmt, seconds):
    _SECONDS.setdefault(fmt, {})[key] = seconds


@pytest.mark.parametrize("key", KEYS)
def test_csr(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    x = _vector(matrices, key)

    def run():
        for _ in range(REPEATS):
            y = csr_spmv(csr, x)
        return y

    _, seconds = bench_once(benchmark, run)
    _record(key, "CSR", seconds)
    collector.record("spmv", "CSR", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_ell(benchmark, matrices, collector, key):
    ell = ELLMatrix.from_csr(matrices.csr(key))
    x = _vector(matrices, key)
    _STATS.setdefault(key, {})["ell_padding"] = ell.padding_fraction

    def run():
        for _ in range(REPEATS):
            y = ell.spmv(x)
        return y

    _, seconds = bench_once(benchmark, run)
    _record(key, "ELL", seconds)
    collector.record("spmv", "ELL", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_bcsr(benchmark, matrices, collector, key):
    bcsr = BCSRMatrix.from_csr(matrices.csr(key), 3, 3)
    x = _vector(matrices, key)
    _STATS.setdefault(key, {})["bcsr_fill"] = bcsr.fill_ratio

    def run():
        for _ in range(REPEATS):
            y = bcsr.spmv(x)
        return y

    _, seconds = bench_once(benchmark, run)
    _record(key, "BCSR3x3", seconds)
    collector.record("spmv", "BCSR3x3", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_dense(benchmark, matrices, collector, key):
    dense = matrices.dense(key)
    x = _vector(matrices, key)

    def run():
        for _ in range(REPEATS):
            y = dense_spmv(dense, x)
        return y

    _, seconds = bench_once(benchmark, run)
    _record(key, "dense", seconds)
    collector.record("spmv", "dense", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_atmv(benchmark, matrices, collector, key):
    at = matrices.at(key)
    x = _vector(matrices, key)

    def run():
        for _ in range(REPEATS):
            y = atmv(at, x)
        return y

    result, seconds = bench_once(benchmark, run)
    _record(key, "ATMV", seconds)
    collector.record("spmv", "ATMV", key, seconds)
    expected = csr_spmv(matrices.csr(key), x)
    np.testing.assert_allclose(result, expected, atol=1e-8)


def test_zz_spmv_report(benchmark, capsys):
    register_report(benchmark)
    keys = [k for k in KEYS if k in _SECONDS.get("CSR", {})]
    with capsys.disabled():
        print()
        print(
            format_relative_table(
                keys,
                {f: _SECONDS.get(f, {}) for f in ["CSR", "ELL", "BCSR3x3", "dense", "ATMV"]},
                baseline="CSR",
                title="SpMV format comparison, relative to CSR (higher = faster)",
            )
        )
        rows = [
            [
                key,
                f"{_STATS.get(key, {}).get('ell_padding', 0.0):.1%}",
                f"{_STATS.get(key, {}).get('bcsr_fill', 1.0):.2f}",
            ]
            for key in keys
        ]
        print()
        print(
            format_table(
                ["matrix", "ELL padding", "BCSR fill ratio"],
                rows,
                title="format overheads explaining the timings",
            )
        )
        print(
            "paper motivation: CSR best-or-close across topologies (Vuduc), "
            "supporting CSR as the sparse tile format"
        )
