#!/usr/bin/env python
"""Plan-cache benchmark: iterative solves with and without plan reuse.

The engine redesign split ATMULT into ``build_plan`` / ``execute_plan``
so iterative workloads can pay for density estimation, the water-level
threshold and the per-product kernel decisions **once** and replay the
cached :class:`~repro.engine.plan.ExecutionPlan` on every following
product.  This bench quantifies that: a 20-iteration conjugate-gradient
solve over a 2048 x 2048 RMAT-derived SPD system, run

* through a :class:`repro.Session` (plan cached after iteration 1), and
* through plain ``options=`` with **no** plan cache (every matvec
  re-plans from scratch — the pre-redesign cost profile).

Both paths execute the identical kernels; the difference is planning
overhead only.  Results land in ``BENCH_engine.json`` and the process
exits non-zero when the planned path is not at least ``--min-speedup``
(default 1.5) times faster — CI runs this as a regression gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--output PATH]
        [--min-speedup X] [--repeats N]

Standalone on purpose: the pytest-benchmark suite next door regenerates
paper tables, while this script is a pass/fail gate cheap enough for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    COOMatrix,
    MultiplyOptions,
    Session,
    SystemConfig,
    build_at_matrix,
    conjugate_gradient,
)
from repro.generate import rmat_matrix

N = 2048
NNZ_TARGET = 8 * N
RMAT_PROBS = (0.45, 0.22, 0.22, 0.11)
ITERATIONS = 20
#: Small atomic blocks make the per-product decision count (and so the
#: planning share of each matvec) representative of big-matrix runs.
CONFIG = SystemConfig(llc_bytes=384 * 1024, b_atomic=32)


def build_system() -> tuple[object, np.ndarray, int]:
    """A strictly diagonally dominant SPD system from an RMAT graph."""
    graph = rmat_matrix(N, NNZ_TARGET, *RMAT_PROBS, seed=7)
    raw = graph.to_dense()
    symmetric = (raw + raw.T) / 2.0
    np.fill_diagonal(symmetric, np.abs(symmetric).sum(axis=1) + 1.0)
    matrix = build_at_matrix(COOMatrix.from_dense(symmetric), CONFIG)
    rhs = np.ones(N)
    return matrix, rhs, int(np.count_nonzero(symmetric))


def run_planned(matrix, rhs) -> tuple[float, dict]:
    """One 20-iteration CG solve through a fresh Session (plan cached)."""
    session = Session(config=CONFIG)
    start = time.perf_counter()
    outcome = session.conjugate_gradient(
        matrix, rhs, tolerance=0.0, max_iterations=ITERATIONS
    )
    elapsed = time.perf_counter() - start
    assert outcome.iterations == ITERATIONS
    return elapsed, session.cache_stats().as_dict()


def run_replanning(matrix, rhs) -> float:
    """The same solve through the engine with no plan cache."""
    options = MultiplyOptions(config=CONFIG)
    start = time.perf_counter()
    outcome = conjugate_gradient(
        matrix, rhs, tolerance=0.0, max_iterations=ITERATIONS, options=options
    )
    elapsed = time.perf_counter() - start
    assert outcome.iterations == ITERATIONS
    return elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail when planned/no-plan speedup falls below this (default 1.5)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per path; the best of each is compared",
    )
    args = parser.parse_args(argv)

    matrix, rhs, nnz = build_system()
    # Warm both paths once (imports, allocator, branch caches).
    run_replanning(matrix, rhs)
    run_planned(matrix, rhs)

    replanning_times = [run_replanning(matrix, rhs) for _ in range(args.repeats)]
    planned_times = []
    cache_stats: dict = {}
    for _ in range(args.repeats):
        elapsed, cache_stats = run_planned(matrix, rhs)
        planned_times.append(elapsed)

    best_replanning = min(replanning_times)
    best_planned = min(planned_times)
    speedup = best_replanning / best_planned

    report = {
        "workload": {
            "matrix": f"RMAT({N}x{N}, a={RMAT_PROBS[0]}, b={RMAT_PROBS[1]}, "
            f"c={RMAT_PROBS[2]}, d={RMAT_PROBS[3]}), symmetrized + "
            "diagonally dominant",
            "n": N,
            "nnz": nnz,
            "solver": "conjugate_gradient",
            "iterations": ITERATIONS,
        },
        "config": {
            "llc_bytes": CONFIG.llc_bytes,
            "b_atomic": CONFIG.b_atomic,
        },
        "seconds": {
            "replanning": replanning_times,
            "planned": planned_times,
            "best_replanning": best_replanning,
            "best_planned": best_planned,
        },
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "plan_cache": cache_stats,
        "passed": speedup >= args.min_speedup,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True))

    print(
        f"20-iteration CG on {N}x{N} RMAT (nnz={nnz}): "
        f"re-planning {best_replanning * 1e3:.1f} ms, "
        f"planned {best_planned * 1e3:.1f} ms, speedup {speedup:.2f}x "
        f"(gate: {args.min_speedup:.2f}x) -> {args.output}"
    )
    print(
        f"plan cache: {cache_stats.get('hits', 0)} hits, "
        f"{cache_stats.get('misses', 0)} misses, "
        f"{cache_stats.get('entries', 0)} plans"
    )
    if not report["passed"]:
        print(
            f"FAIL: planned path is only {speedup:.2f}x faster "
            f"(required {args.min_speedup:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
