"""Matrix chain planning bench (the SpMachO-style expression gain).

The paper motivates adaptive storage partly through "sparse matrix chain
multiplications [9]" where fixed representations and naive evaluation
orders hurt.  This bench builds a three-factor chain with a bottleneck
inner dimension — the classic case where parenthesization dominates —
and compares:

* naive left-to-right evaluation ((A B) C);
* the cost-based plan of :func:`repro.core.chain.multiply_chain`.

Expected shape: the planner picks A (B C) and avoids materializing the
large intermediate, winning by a factor that grows with the bottleneck
ratio.
"""

import numpy as np
import pytest

from repro import COOMatrix, MultiplyOptions, atmult, build_at_matrix, multiply_chain
from repro.bench import format_table
from repro.generate import uniform_random_matrix

from .conftest import register_report, BENCH_CONFIG, bench_once

WIDE = 2048
NARROW = 64

_RESULTS = {}


@pytest.fixture(scope="module")
def chain(matrices):
    """A (wide x narrow) @ (narrow x wide) @ (wide x narrow) chain."""
    rng = np.random.default_rng(11)
    a = COOMatrix.from_dense(
        np.where(rng.random((WIDE, NARROW)) < 0.3, rng.random((WIDE, NARROW)), 0)
    )
    b = uniform_random_matrix(WIDE, 60_000, seed=12).extract_window(
        0, NARROW, 0, WIDE
    )
    b = COOMatrix(NARROW, WIDE, b.row_ids, b.col_ids, b.values)
    c = COOMatrix.from_dense(
        np.where(rng.random((WIDE, NARROW)) < 0.3, rng.random((WIDE, NARROW)), 0)
    )
    return [
        build_at_matrix(a, BENCH_CONFIG),
        build_at_matrix(b, BENCH_CONFIG),
        build_at_matrix(c, BENCH_CONFIG),
    ]


def test_naive_left_to_right(benchmark, chain, collector):
    def run():
        ab, _ = atmult(chain[0], chain[1], config=BENCH_CONFIG)
        result, _ = atmult(ab, chain[2], config=BENCH_CONFIG)
        return result

    result, seconds = bench_once(benchmark, run)
    _RESULTS["naive (A B) C"] = seconds
    collector.record("chain", "naive", "bottleneck", seconds)
    assert result.shape == (WIDE, NARROW)


def test_planned_chain(benchmark, chain, collector):
    def run():
        result, plan = multiply_chain(
            chain, options=MultiplyOptions(config=BENCH_CONFIG)
        )
        return result, plan

    (result, plan), seconds = bench_once(benchmark, run)
    _RESULTS["planned " + plan.parenthesization()] = seconds
    collector.record("chain", "planned", "bottleneck", seconds)
    assert plan.parenthesization() == "(A1 (A2 A3))"
    assert result.shape == (WIDE, NARROW)


def test_zz_chain_report(benchmark, capsys):
    register_report(benchmark)
    rows = [[label, f"{seconds * 1e3:.1f}"] for label, seconds in _RESULTS.items()]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["evaluation order", "total ms"],
                rows,
                title=(
                    f"chain multiplication: ({WIDE}x{NARROW}) @ "
                    f"({NARROW}x{WIDE}) @ ({WIDE}x{NARROW})"
                ),
            )
        )
        print("expected shape: the planner avoids the large (A B) intermediate")
