"""Fig. 9: mixed sparse-dense multiplication.

(a) {A: sparse, B: dense}: ATMULT vs spdd / spspd / ddd;
(b) {A: dense, B: sparse}: ATMULT vs dspd / spspd / ddd;
(c, d) the optimization-time breakdown of the ATMULT runs.

The dense operand is a full (rho = 1) rectangular matrix sized so its
element count is gamma * N_nz of the sparse operand (paper: gamma = 3).
Expected shapes: ATMULT wins everywhere except the small dense-ish R1
(pure MKL/ddd wins; conversions add overhead) and the hypersparse R7
(referenced-submatrix slicing overhead).
"""

import numpy as np
import pytest

from repro import COOMatrix, atmult, build_at_matrix
from repro.bench import format_relative_table, format_table
from repro.formats import coo_to_csr, coo_to_dense
from repro.kernels import ddd_gemm, dspd_gemm, spdd_gemm, spspd_gemm

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

GAMMA = 3

_SECONDS_A: dict[str, dict[str, float]] = {}
_SECONDS_B: dict[str, dict[str, float]] = {}
_REPORTS_A = {}
_REPORTS_B = {}
_DENSE_CACHE = {}


def dense_operand(matrices, key: str, side: str):
    """The full rectangular dense operand of paper section IV-C."""
    cached = _DENSE_CACHE.get((key, side))
    if cached is None:
        staged = matrices.staged(key)
        k = staged.cols if side == "right" else staged.rows
        free = max(16, min(4096, GAMMA * staged.nnz // k))
        rng = np.random.default_rng(99)
        if side == "right":
            array = rng.random((k, free))
        else:
            array = rng.random((free, k))
        coo = COOMatrix.from_dense(array)
        cached = {
            "dense": coo_to_dense(coo),
            "csr": coo_to_csr(coo),
            "at": build_at_matrix(coo, BENCH_CONFIG),
        }
        _DENSE_CACHE[(key, side)] = cached
    return cached


KEYS = selected_keys(generated=False)


# ---------------------------------------------------------------- Fig. 9a --
@pytest.mark.parametrize("key", KEYS)
def test_sparse_dense_spdd(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    operand = dense_operand(matrices, key, "right")
    _, seconds = bench_once(benchmark, lambda: spdd_gemm(csr, operand["dense"]))
    _SECONDS_A.setdefault("spdd", {})[key] = seconds
    collector.record("fig9a", "spdd", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_sparse_dense_spspd(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    operand = dense_operand(matrices, key, "right")
    _, seconds = bench_once(benchmark, lambda: spspd_gemm(csr, operand["csr"]))
    _SECONDS_A.setdefault("spspd", {})[key] = seconds
    collector.record("fig9a", "spspd", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_sparse_dense_ddd(benchmark, matrices, collector, key):
    dense_a = matrices.dense(key)
    operand = dense_operand(matrices, key, "right")
    _, seconds = bench_once(benchmark, lambda: ddd_gemm(dense_a, operand["dense"]))
    _SECONDS_A.setdefault("ddd", {})[key] = seconds
    collector.record("fig9a", "ddd", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_sparse_dense_atmult(benchmark, matrices, collector, key):
    at = matrices.at(key)
    operand = dense_operand(matrices, key, "right")
    (result, report), seconds = bench_once(
        benchmark, lambda: atmult(at, operand["at"], config=BENCH_CONFIG)
    )
    _SECONDS_A.setdefault("ATMULT", {})[key] = seconds
    _REPORTS_A[key] = report
    collector.record("fig9a", "ATMULT", key, seconds)
    assert result.nnz > 0


# ---------------------------------------------------------------- Fig. 9b --
@pytest.mark.parametrize("key", KEYS)
def test_dense_sparse_dspd(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    operand = dense_operand(matrices, key, "left")
    _, seconds = bench_once(benchmark, lambda: dspd_gemm(operand["dense"], csr))
    _SECONDS_B.setdefault("dspd", {})[key] = seconds
    collector.record("fig9b", "dspd", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_dense_sparse_spspd(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    operand = dense_operand(matrices, key, "left")
    _, seconds = bench_once(benchmark, lambda: spspd_gemm(operand["csr"], csr))
    _SECONDS_B.setdefault("spspd", {})[key] = seconds
    collector.record("fig9b", "spspd", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_dense_sparse_ddd(benchmark, matrices, collector, key):
    dense_b = matrices.dense(key)
    operand = dense_operand(matrices, key, "left")
    _, seconds = bench_once(benchmark, lambda: ddd_gemm(operand["dense"], dense_b))
    _SECONDS_B.setdefault("ddd", {})[key] = seconds
    collector.record("fig9b", "ddd", key, seconds)


@pytest.mark.parametrize("key", KEYS)
def test_dense_sparse_atmult(benchmark, matrices, collector, key):
    at = matrices.at(key)
    operand = dense_operand(matrices, key, "left")
    (result, report), seconds = bench_once(
        benchmark, lambda: atmult(operand["at"], at, config=BENCH_CONFIG)
    )
    _SECONDS_B.setdefault("ATMULT", {})[key] = seconds
    _REPORTS_B[key] = report
    collector.record("fig9b", "ATMULT", key, seconds)
    assert result.nnz > 0


def test_zz_fig9_report(benchmark, capsys):
    register_report(benchmark)
    keys_a = [k for k in KEYS if k in _SECONDS_A.get("spdd", {})]
    keys_b = [k for k in KEYS if k in _SECONDS_B.get("dspd", {})]
    with capsys.disabled():
        print()
        print(
            format_relative_table(
                keys_a,
                {n: _SECONDS_A.get(n, {}) for n in ["spdd", "spspd", "ddd", "ATMULT"]},
                baseline="spdd",
                title=(
                    "Fig. 9a: {A sparse, B dense} runtime relative to spdd_gemm "
                    f"(gamma={GAMMA})"
                ),
            )
        )
        print()
        print(
            format_relative_table(
                keys_b,
                {n: _SECONDS_B.get(n, {}) for n in ["dspd", "spspd", "ddd", "ATMULT"]},
                baseline="dspd",
                title="Fig. 9b: {A dense, B sparse} runtime relative to dspd_gemm",
            )
        )
        rows = []
        for key in keys_a:
            ra, rb = _REPORTS_A.get(key), _REPORTS_B.get(key)
            if ra is None or rb is None:
                continue
            rows.append(
                [
                    key,
                    f"{ra.estimate_fraction:.2%}",
                    f"{ra.optimize_fraction:.2%}",
                    f"{rb.estimate_fraction:.2%}",
                    f"{rb.optimize_fraction:.2%}",
                ]
            )
        print()
        print(
            format_table(
                ["matrix", "9c est.", "9c opt.", "9d est.", "9d opt."],
                rows,
                title="Fig. 9c/9d: estimation + optimization share of ATMULT runtime",
            )
        )
        print(
            "paper shapes: ATMULT wins except R1 (ddd/MKL best; conversion "
            "overhead) and R7 (referenced-submatrix slicing); optimization "
            "peaks ~7.5% (R1), estimation grows on hypersparse R9 (~5%)"
        )
