"""Fig. 7: duration of the partitioning components vs. one multiplication.

The paper reports, per real-world matrix, the relative duration of the
partitioning components — the Z-order sort, the ZBlockCnts creation, and
the recursive partitioning incl. tile materialization — normalized to one
execution of the traditional sparse multiplication.  The expected shape:
partitioning is cheaper than one multiplication except for R8-like cases
(large dims, small multiplication result).
"""

import pytest

from repro.bench import format_table
from repro.core.builder import ATMatrixBuilder
from repro.kernels import spspsp_gemm

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

_REPORTS = {}
_MULT_SECONDS = {}


@pytest.mark.parametrize("key", selected_keys(generated=False))
def test_partition(benchmark, matrices, collector, key):
    staged = matrices.staged(key)
    builder = ATMatrixBuilder(BENCH_CONFIG)
    (at, report), seconds = bench_once(
        benchmark, lambda: builder.build_with_report(staged)
    )
    _REPORTS[key] = report
    collector.record("fig7", "partitioning", key, seconds)
    assert at.nnz == staged.nnz


@pytest.mark.parametrize("key", selected_keys(generated=False))
def test_reference_multiplication(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    _, seconds = bench_once(benchmark, lambda: spspsp_gemm(csr, csr))
    _MULT_SECONDS[key] = seconds
    collector.record("fig7", "spspsp_gemm", key, seconds)


def test_zz_fig7_report(benchmark, capsys):
    register_report(benchmark)
    rows = []
    for key in selected_keys(generated=False):
        report = _REPORTS.get(key)
        mult = _MULT_SECONDS.get(key)
        if report is None or mult is None:
            continue
        parts = report.as_dict()
        rows.append(
            [
                key,
                f"{parts['z_sort'] / mult:.3f}",
                f"{parts['zblockcnts'] / mult:.3f}",
                f"{(parts['recursive_partitioning'] + parts['materialization']) / mult:.3f}",
                f"{report.total_seconds / mult:.3f}",
                "yes" if report.total_seconds < mult else "NO",
            ]
        )
    table = format_table(
        ["matrix", "z-sort", "ZBlockCnts", "partition+materialize", "total", "< 1 mult?"],
        rows,
        title="Fig. 7: partitioning components relative to one spspsp_gemm run",
    )
    with capsys.disabled():
        print()
        print(table)
        print("paper shape: total < 1.0 for all matrices except R8")
