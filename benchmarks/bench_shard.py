#!/usr/bin/env python
"""Shard-executor benchmark: process scaling and kill-recovery overhead.

The supervised multiprocess executor exists for two reasons: true
multicore scaling (worker processes sidestep the GIL entirely, where
thread teams only overlap inside GIL-releasing kernels) and crash
survival.  This bench quantifies both on a dense-dominated workload —
the paper's best case for parallel tile products:

* **Scaling** — one multiplication through ``execution="processes"`` at
  1, 2 and 4 workers; the speedup of N workers over the 1-worker run is
  the scaling figure.
* **Kill overhead** — the 2-worker run repeated with an injected
  ``WORKER_CRASH`` (the pair SIGKILLs its host on first dispatch); the
  wall-clock ratio over the clean 2-worker run prices one worker death,
  detection and reassignment included.

Results land in ``BENCH_shard.json``.  The ``--min-speedup`` gate
(default 1.5 at 4 workers) is **host-aware**: process scaling is
physically impossible on fewer cores than workers, so on such hosts the
gate records ``"skipped (host has N cores, need 4)"`` and exits 0 —
CI runs the real gate on multicore runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py [--output PATH]
        [--min-speedup X] [--smoke]

Standalone on purpose, like bench_engine.py: a pass/fail gate cheap
enough for CI rather than a pytest-benchmark table generator.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import (
    COOMatrix,
    MultiplyOptions,
    SystemConfig,
    SystemTopology,
    build_at_matrix,
)
from repro.core.parallel import parallel_atmult
from repro.resilience import FaultPlan, inject_faults

#: Dense-dominated operand: every tile above the read threshold, so the
#: pair work is BLAS gemm — the workload process sharding targets.
FULL_SIZE = 1024
FULL_CONFIG = SystemConfig(llc_bytes=384 * 1024, b_atomic=128)
SMOKE_SIZE = 256
SMOKE_CONFIG = SystemConfig(llc_bytes=24 * 1024, b_atomic=32)
WORKER_COUNTS = (1, 2, 4)


def build_operand(size: int, config: SystemConfig):
    rng = np.random.default_rng(42)
    array = rng.uniform(0.1, 1.0, size=(size, size))
    return build_at_matrix(COOMatrix.from_dense(array), config)


def run_processes(
    at, config: SystemConfig, workers: int, fault_plan: FaultPlan | None = None
) -> tuple[float, object]:
    topology = SystemTopology(sockets=workers, cores_per_socket=1)
    options = MultiplyOptions(
        config=config,
        execution="processes",
        workers=workers,
        heartbeat_interval_seconds=0.1,
    )
    start = time.perf_counter()
    if fault_plan is not None:
        with inject_faults(fault_plan):
            result, report = parallel_atmult(
                at, at, topology=topology, options=options
            )
    else:
        result, report = parallel_atmult(
            at, at, topology=topology, options=options
        )
    return time.perf_counter() - start, (result, report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_shard.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail when the 4-worker speedup falls below this (default 1.5)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small operand for CI smoke runs (gate still host-aware)",
    )
    args = parser.parse_args(argv)

    size = SMOKE_SIZE if args.smoke else FULL_SIZE
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    at = build_operand(size, config)
    host_cores = os.cpu_count() or 1
    max_workers = max(WORKER_COUNTS)

    # Warm-up (imports, allocator, fork machinery).
    run_processes(at, config, 1)

    seconds: dict[str, float] = {}
    reference = None
    pairs = 0
    for workers in WORKER_COUNTS:
        elapsed, (result, report) = run_processes(at, config, workers)
        seconds[str(workers)] = elapsed
        pairs = report.pairs
        dense = result.to_dense()
        if reference is None:
            reference = dense
        elif not np.array_equal(dense, reference):
            raise AssertionError(
                f"{workers}-worker result is not bit-identical to 1-worker"
            )

    speedups = {
        str(workers): seconds["1"] / seconds[str(workers)]
        for workers in WORKER_COUNTS
    }

    # Kill-one-worker overhead: the (0, 0) pair murders its first host.
    crash = FaultPlan(0, worker_crash_pairs=((0, 0),), worker_crash_attempts=1)
    kill_elapsed, (kill_result, kill_report) = run_processes(
        at, config, 2, fault_plan=crash
    )
    assert np.array_equal(kill_result.to_dense(), reference)
    assert kill_report.failure.worker_deaths >= 1
    kill_overhead = kill_elapsed / seconds["2"]

    gate_applies = host_cores >= max_workers
    if gate_applies:
        gate_status = "applied"
        passed = speedups[str(max_workers)] >= args.min_speedup
    else:
        gate_status = f"skipped (host has {host_cores} cores, need {max_workers})"
        passed = True

    report_payload = {
        "workload": {
            "matrix": f"dense uniform {size}x{size}",
            "n": size,
            "pairs": pairs,
            "kernels": "dense-dominated (gemm)",
            "smoke": args.smoke,
        },
        "config": {
            "llc_bytes": config.llc_bytes,
            "b_atomic": config.b_atomic,
        },
        "host": {"cpu_cores": host_cores},
        "seconds": seconds,
        "speedups": speedups,
        "kill_one_worker": {
            "seconds": kill_elapsed,
            "overhead_vs_clean_2_workers": kill_overhead,
            "worker_deaths": kill_report.failure.worker_deaths,
            "pairs_reassigned": kill_report.failure.pairs_reassigned,
        },
        "min_speedup": args.min_speedup,
        "gate": gate_status,
        "passed": passed,
    }
    args.output.write_text(json.dumps(report_payload, indent=2, sort_keys=True))

    scaling = ", ".join(
        f"{workers}w {seconds[str(workers)]:.2f}s ({speedups[str(workers)]:.2f}x)"
        for workers in WORKER_COUNTS
    )
    print(
        f"supervised shard multiply on {size}x{size} dense ({pairs} pairs): "
        f"{scaling} -> {args.output}"
    )
    print(
        f"kill-one-worker: {kill_elapsed:.2f}s "
        f"({kill_overhead:.2f}x of clean 2-worker run, "
        f"{kill_report.failure.pairs_reassigned} pairs reassigned)"
    )
    print(f"gate ({args.min_speedup:.2f}x at {max_workers} workers): {gate_status}")
    if not passed:
        print(
            f"FAIL: {max_workers}-worker speedup "
            f"{speedups[str(max_workers)]:.2f}x < {args.min_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
