"""Fig. 2: AT Matrix layouts of R3 and its self-product density maps.

Reproduces the four panels of the paper's Fig. 2 on the power-network
matrix: (a, b) the adaptive tile layout at a coarse and a fine
granularity k, (c) the *estimated* density map of the self-product, and
(d) the actual product's density map.  The estimator run is timed — the
paper reports it as negligible next to the multiplication.
"""

import numpy as np
import pytest

from repro import SystemConfig, atmult, build_at_matrix
from repro.density import estimate_product_density
from repro.viz import render_density_map, render_tile_layout

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

KEY = "R3" if "R3" in selected_keys() else next(iter(selected_keys()), "R3")

#: Coarse and fine granularity exponents (paper: k = 6 and k = 10).
COARSE_K = 5
FINE_K = BENCH_CONFIG.k_atomic

_PANELS = {}


@pytest.mark.parametrize("k", [COARSE_K, FINE_K])
def test_partition_granularity(benchmark, matrices, collector, k):
    staged = matrices.staged(KEY)
    config = SystemConfig(llc_bytes=BENCH_CONFIG.llc_bytes, b_atomic=2**k)
    at, seconds = bench_once(benchmark, lambda: build_at_matrix(staged, config))
    _PANELS[f"layout_k{k}"] = at
    collector.record("fig2", f"partition_k{k}", KEY, seconds)
    assert at.nnz == staged.nnz


def test_density_estimation(benchmark, matrices, collector):
    dm = matrices.at(KEY).density_map()
    estimate, seconds = bench_once(
        benchmark, lambda: estimate_product_density(dm, dm)
    )
    _PANELS["estimated"] = estimate
    collector.record("fig2", "estimate", KEY, seconds)


def test_actual_product(benchmark, matrices, collector):
    at = matrices.at(KEY)
    (result, _), seconds = bench_once(
        benchmark, lambda: atmult(at, at, config=BENCH_CONFIG)
    )
    _PANELS["actual"] = result.density_map()
    collector.record("fig2", "multiply", KEY, seconds)


def test_zz_fig2_report(benchmark, capsys):
    register_report(benchmark)
    with capsys.disabled():
        print()
        for k in (COARSE_K, FINE_K):
            at = _PANELS.get(f"layout_k{k}")
            if at is None:
                continue
            print(f"Fig. 2 layout of {KEY} at k={k} "
                  f"({at.num_tiles()} tiles, '/' = dense):")
            print(render_tile_layout(at, max_cells=32))
            print()
        estimated = _PANELS.get("estimated")
        actual = _PANELS.get("actual")
        if estimated is not None and actual is not None:
            print("Fig. 2c: ESTIMATED self-product density map:")
            print(render_density_map(estimated, max_cells=32))
            print()
            print("Fig. 2d: ACTUAL self-product density map:")
            print(render_density_map(actual, max_cells=32))
            err = float(
                np.abs(estimated.grid - actual.grid).mean()
            )
            print(f"\nmean absolute block-density error of the estimate: {err:.4f}")
