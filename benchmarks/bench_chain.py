#!/usr/bin/env python
"""Fused-chain benchmark: repeated chain products and pinned solver matvecs.

The chain redesign taught the engine to cache a whole
:class:`~repro.engine.plan.FusedChainPlan` under one
:class:`~repro.engine.cache.ChainKey`: a repeated chain product replays
the recorded cross-hop schedule (dead intermediates freed eagerly)
instead of re-running dynamic-programming parenthesization, density
estimation and per-hop plan construction on every call.  This bench
quantifies that on two workloads:

* a **repeated 4-matrix chain** — cache-less ``multiply_chain`` (the
  legacy barrier-per-hop loop, re-planning every run) versus warm
  :meth:`repro.Session.multiply_chain` replays of one fused plan, and
* a **conjugate-gradient solve** through a Session, which must pin one
  fused matvec plan after a single cache hit and replay it for every
  remaining iteration (``hits == 1 < iterations``).

Both paths execute identical kernels; the difference is planning
overhead plus the barrier-per-hop materialization. Results land in
``BENCH_chain.json`` and the process exits non-zero when the fused path
is not at least ``--min-speedup`` times faster or the solver fails to
pin its plan — CI runs this as a regression gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_chain.py [--output PATH]
        [--min-speedup X] [--repeats N]

Standalone on purpose: ``bench_chain_planning.py`` next door regenerates
the paper's parenthesization tables, while this script is a pass/fail
gate cheap enough for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    COOMatrix,
    MultiplyOptions,
    Session,
    SystemConfig,
    build_at_matrix,
    multiply_chain,
)
from repro.generate import rmat_matrix

#: ``len(CHAIN_DIMS) - 1 == 4`` operands, deliberately rectangular so the
#: dynamic-programming parenthesization is non-trivial on every re-plan.
CHAIN_DIMS = (1024, 512, 1280, 384, 768)
#: Sparse enough that planning (density estimation, water-level, kernel
#: decisions, DP) is a large share of each run — the share the fused
#: replay eliminates.
CHAIN_DENSITY = 0.002
#: Chain executions per timed sample; the unfused path re-plans each one.
CHAIN_RUNS = 10
SOLVER_N = 1024
SOLVER_ITERATIONS = 20
#: Small atomic blocks make the per-product decision count (and so the
#: planning share of each hop) representative of big-matrix runs.
CONFIG = SystemConfig(llc_bytes=384 * 1024, b_atomic=32)


def build_chain() -> tuple[list, int]:
    """Random sparse operands for the repeated 4-matrix chain."""
    rng = np.random.default_rng(7)
    operands = []
    nnz = 0
    for rows, cols in zip(CHAIN_DIMS[:-1], CHAIN_DIMS[1:], strict=True):
        raw = np.where(
            rng.random((rows, cols)) < CHAIN_DENSITY,
            rng.random((rows, cols)),
            0.0,
        )
        nnz += int(np.count_nonzero(raw))
        operands.append(build_at_matrix(COOMatrix.from_dense(raw), CONFIG))
    return operands, nnz


def build_solver_system() -> tuple[object, np.ndarray, int]:
    """A strictly diagonally dominant SPD system from an RMAT graph."""
    graph = rmat_matrix(SOLVER_N, 8 * SOLVER_N, 0.45, 0.22, 0.22, 0.11, seed=11)
    raw = graph.to_dense()
    symmetric = (raw + raw.T) / 2.0
    np.fill_diagonal(symmetric, np.abs(symmetric).sum(axis=1) + 1.0)
    matrix = build_at_matrix(COOMatrix.from_dense(symmetric), CONFIG)
    rhs = np.ones(SOLVER_N)
    return matrix, rhs, int(np.count_nonzero(symmetric))


def run_unfused(operands) -> float:
    """CHAIN_RUNS cache-less chain products: legacy per-hop re-planning."""
    options = MultiplyOptions(config=CONFIG)
    start = time.perf_counter()
    for _ in range(CHAIN_RUNS):
        _, report = multiply_chain(list(operands), options=options)
        assert not report.fused
    return time.perf_counter() - start


def run_fused(operands, session: Session) -> float:
    """CHAIN_RUNS warm replays of the session's cached fused plan."""
    start = time.perf_counter()
    for _ in range(CHAIN_RUNS):
        _, report = session.multiply_chain(list(operands))
        assert report.fused and report.plan_cache_hit
    return time.perf_counter() - start


def run_pinned_solve(matrix, rhs) -> tuple[dict, int]:
    """One fixed-iteration CG solve through a fresh Session."""
    session = Session(config=CONFIG)
    outcome = session.conjugate_gradient(
        matrix, rhs, tolerance=0.0, max_iterations=SOLVER_ITERATIONS
    )
    assert outcome.iterations == SOLVER_ITERATIONS
    stats = session.cache_stats()
    report = stats.as_dict()
    report["hit_rate"] = stats.hit_rate
    return report, outcome.iterations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_chain.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail when fused/unfused speedup falls below this (default 1.5)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per path; the best of each is compared",
    )
    args = parser.parse_args(argv)

    operands, chain_nnz = build_chain()
    session = Session(config=CONFIG)
    # Warm both paths once; the session's first run records the fused plan.
    run_unfused(operands)
    _, cold_report = session.multiply_chain(list(operands))
    assert not cold_report.plan_cache_hit

    unfused_times = [run_unfused(operands) for _ in range(args.repeats)]
    fused_times = [run_fused(operands, session) for _ in range(args.repeats)]
    best_unfused = min(unfused_times)
    best_fused = min(fused_times)
    speedup = best_unfused / best_fused

    matrix, rhs, solver_nnz = build_solver_system()
    solver_stats, iterations = run_pinned_solve(matrix, rhs)
    # One chain-key hit pins the fused matvec plan; iterations 3..N then
    # replay it without touching the cache at all.
    pinned = (
        solver_stats.get("hits", 0) == 1
        and solver_stats.get("hits", 0) < iterations
        and solver_stats.get("hit_rate", 0.0) > 0
    )

    passed = speedup >= args.min_speedup and pinned
    report = {
        "workload": {
            "chain_dims": list(CHAIN_DIMS),
            "chain_density": CHAIN_DENSITY,
            "chain_nnz": chain_nnz,
            "chain_runs_per_sample": CHAIN_RUNS,
            "solver": "conjugate_gradient",
            "solver_n": SOLVER_N,
            "solver_nnz": solver_nnz,
            "solver_iterations": iterations,
        },
        "config": {
            "llc_bytes": CONFIG.llc_bytes,
            "b_atomic": CONFIG.b_atomic,
        },
        "seconds": {
            "unfused": unfused_times,
            "fused": fused_times,
            "best_unfused": best_unfused,
            "best_fused": best_fused,
        },
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "chain_cache": session.cache_stats().as_dict(),
        "solver_cache": solver_stats,
        "solver_pinned": pinned,
        "passed": passed,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True))

    chain = "x".join(str(d) for d in CHAIN_DIMS)
    print(
        f"{CHAIN_RUNS}-run 4-matrix chain ({chain}, nnz={chain_nnz}): "
        f"unfused {best_unfused * 1e3:.1f} ms, "
        f"fused {best_fused * 1e3:.1f} ms, speedup {speedup:.2f}x "
        f"(gate: {args.min_speedup:.2f}x) -> {args.output}"
    )
    print(
        f"solver cache: {solver_stats.get('hits', 0)} hits, "
        f"{solver_stats.get('misses', 0)} misses over {iterations} "
        f"iterations (pinned: {pinned})"
    )
    if not passed:
        if speedup < args.min_speedup:
            print(
                f"FAIL: fused path is only {speedup:.2f}x faster "
                f"(required {args.min_speedup:.2f}x)",
                file=sys.stderr,
            )
        if not pinned:
            print(
                "FAIL: solver did not pin one fused matvec plan "
                f"(stats: {solver_stats})",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
