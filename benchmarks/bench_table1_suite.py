"""Table I: the evaluation matrix suite and its statistics.

Regenerates the paper's Table I for the scaled suite: dimensions, nnz,
density, COO binary size, and the self-product result size.  The paper
reports result sizes of the C = A * A multiplications; we measure them
with the density estimator (exact counting would run every product here;
the exact sizes appear in the Fig. 8 bench).
"""

import pytest

from repro.bench import format_table
from repro.density import estimate_product_density
from repro.generate import SUITE

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys


@pytest.mark.parametrize("key", selected_keys())
def test_generate_suite_matrix(benchmark, matrices, collector, key):
    """Time the (deterministic) generation of each suite matrix."""
    staged, seconds = bench_once(benchmark, lambda: SUITE[key].load())
    collector.record("table1", "generate", key, seconds)
    assert staged.nnz > 0


def test_zz_table1_report(benchmark, matrices, capsys):
    register_report(benchmark)
    rows = []
    for key in selected_keys():
        staged = matrices.staged(key)
        at = matrices.at(key)
        dm = at.density_map()
        estimated_result = estimate_product_density(dm, dm)
        rows.append(
            [
                key,
                SUITE[key].name,
                SUITE[key].domain,
                f"{staged.rows} x {staged.cols}",
                f"{staged.nnz / 1e3:.2f} K",
                f"{100 * staged.density:.3f}",
                f"{staged.memory_bytes() / 1e6:.1f} MB",
                f"{estimated_result.estimated_nnz() * 16 / 1e6:.1f} MB",
            ]
        )
    table = format_table(
        ["No.", "Name", "Domain", "Dimensions", "N_nz", "rho [%]", "Bin. Size", "Est. Result Size"],
        rows,
        title="Table I (scaled): sparse matrices of different dimensions and densities",
    )
    with capsys.disabled():
        print()
        print(table)
        print(
            f"(LLC {BENCH_CONFIG.llc_bytes // 1024} KiB, "
            f"b_atomic {BENCH_CONFIG.b_atomic}; paper: 24 MiB / 1024)"
        )
