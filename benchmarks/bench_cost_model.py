"""Cost-model validation: predicted vs. measured kernel times.

The dynamic optimizer is only as good as its cost model (paper section
III-C).  This bench measures every kernel family across a grid of tile
densities and checks that the model's predictions *rank* the kernels
correctly — rank fidelity is what the optimizer needs; absolute scale is
calibrated separately.

Reported: per-workpoint measured/predicted times, the fraction of grid
points where the model picks the truly fastest input-kind pair, and the
Spearman rank correlation between predicted and measured times.
"""

import time

import numpy as np
import pytest

from repro.bench import format_table
from repro.cost import CostModel, calibrate
from repro.formats.convert import dense_to_csr
from repro.formats.dense import DenseMatrix
from repro.kernels import by_name
from repro.kinds import StorageKind, kernel_name

from .conftest import register_report

SIZE = 192
DENSITIES = [0.005, 0.05, 0.25, 0.7]

_ROWS = []
_RANKING = {"agreements": 0, "total": 0}


def _operands(density: float):
    rng = np.random.default_rng(int(density * 1e4))
    array = np.where(
        rng.random((SIZE, SIZE)) < density, rng.random((SIZE, SIZE)), 0.0
    )
    dense = DenseMatrix(array, copy=False)
    return dense_to_csr(dense), dense


@pytest.fixture(scope="module")
def model() -> CostModel:
    return CostModel(calibrate(size=128, density=0.05, repeats=1))


@pytest.mark.parametrize("density", DENSITIES)
def test_prediction_grid(benchmark, model, density):
    """Measure the four input-kind pairs into a dense target."""
    csr, dense = _operands(density)
    rho_c = min(1.0, density * density * SIZE * 2)

    measured = {}
    predicted = {}

    def run_all():
        for a_kind in StorageKind:
            for b_kind in StorageKind:
                name = kernel_name(a_kind, b_kind, StorageKind.DENSE)
                op_a = csr if a_kind is StorageKind.SPARSE else dense
                op_b = csr if b_kind is StorageKind.SPARSE else dense
                start = time.perf_counter()
                by_name(name)(op_a, op_b)
                measured[name] = time.perf_counter() - start
                predicted[name] = model.product_cost(
                    a_kind, b_kind, StorageKind.DENSE,
                    SIZE, SIZE, SIZE, density, density, rho_c,
                )

    benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)

    best_measured = min(measured, key=measured.get)
    best_predicted = min(predicted, key=predicted.get)
    _RANKING["total"] += 1
    if best_measured == best_predicted:
        _RANKING["agreements"] += 1
    for name in measured:
        _ROWS.append(
            [
                f"{density:.3f}",
                name,
                f"{measured[name] * 1e3:.2f}",
                f"{predicted[name] * 1e3:.2f}",
            ]
        )


def _spearman(x, y):
    def ranks(values):
        order = np.argsort(values)
        out = np.empty(len(values))
        out[order] = np.arange(len(values))
        return out

    rx, ry = ranks(np.asarray(x)), ranks(np.asarray(y))
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx**2).sum() * (ry**2).sum())
    return float((rx * ry).sum() / denom) if denom else 0.0


def test_zz_cost_model_report(benchmark, capsys):
    register_report(benchmark)
    measured = [float(row[2]) for row in _ROWS]
    predicted = [float(row[3]) for row in _ROWS]
    correlation = _spearman(measured, predicted) if _ROWS else 0.0
    with capsys.disabled():
        print()
        print(
            format_table(
                ["density", "kernel", "measured ms", "predicted ms"],
                _ROWS,
                title=f"cost model validation on {SIZE}x{SIZE} tiles",
            )
        )
        total = _RANKING["total"] or 1
        print(
            f"\noptimizer-relevant accuracy: best kernel identified in "
            f"{_RANKING['agreements']}/{_RANKING['total']} grid points; "
            f"Spearman rank correlation {correlation:.2f}"
        )
    if _ROWS:
        assert correlation > 0.5, "cost model must rank kernels usefully"
