"""Fig. 10: impact of the single optimization steps.

Starting from plain spspsp_gemm, the paper incrementally enables its
optimization components on five real-world matrices (R2, R3, R4, R6, R7):

1. baseline: spspsp_gemm on unpartitioned matrices;
2. fixed-size sparse-only tiles (sparse targets);
3. + density estimation (dense targets above the write threshold);
4. + mixed tiles (input blocks above rho0_R stored dense);
5. adaptive mixed tiles + estimation, no dynamic conversion;
6. + dynamic tile conversion = full ATMULT.

Expected shapes: (2) barely helps; (3) boosts dense-result matrices
(R2, R6); (4) jumps on dense substructure (R3); adaptive tiling (5/6)
costs <= ~20% where (4) was already optimal but wins big on R4 and is the
only tiling that does not catastrophically lose on hypersparse R7.
"""

import pytest

from repro import atmult, fixed_grid_at_matrix
from repro.bench import format_relative_table
from repro.kernels import spspsp_gemm

from .conftest import register_report, BENCH_CONFIG, bench_once, selected_keys

#: The paper's five Fig. 10 instances.
FIG10_KEYS = [k for k in ["R2", "R3", "R4", "R6", "R7"] if k in selected_keys()]

_SECONDS: dict[str, dict[str, float]] = {}
_FIXED_SPARSE = {}
_FIXED_MIXED = {}

STEPS = [
    "1 baseline",
    "2 fixed sparse tiles",
    "3 + density estimation",
    "4 + mixed tiles",
    "5 adaptive tiles",
    "6 + dynamic conversion",
]


def _fixed(matrices, key, mixed):
    cache = _FIXED_MIXED if mixed else _FIXED_SPARSE
    if key not in cache:
        cache[key] = fixed_grid_at_matrix(
            matrices.staged(key), BENCH_CONFIG, mixed=mixed
        )
    return cache[key]


def _record(key, step, seconds, collector):
    _SECONDS.setdefault(step, {})[key] = seconds
    collector.record("fig10", step, key, seconds)


@pytest.mark.parametrize("key", FIG10_KEYS)
def test_step1_baseline(benchmark, matrices, collector, key):
    csr = matrices.csr(key)
    _, seconds = bench_once(benchmark, lambda: spspsp_gemm(csr, csr))
    _record(key, STEPS[0], seconds, collector)


@pytest.mark.parametrize("key", FIG10_KEYS)
def test_step2_fixed_sparse_tiles(benchmark, matrices, collector, key):
    tiled = _fixed(matrices, key, mixed=False)
    _, seconds = bench_once(
        benchmark,
        lambda: atmult(
            tiled, tiled, config=BENCH_CONFIG,
            use_estimation=False, dynamic_conversion=False,
        ),
    )
    _record(key, STEPS[1], seconds, collector)


@pytest.mark.parametrize("key", FIG10_KEYS)
def test_step3_density_estimation(benchmark, matrices, collector, key):
    tiled = _fixed(matrices, key, mixed=False)
    _, seconds = bench_once(
        benchmark,
        lambda: atmult(
            tiled, tiled, config=BENCH_CONFIG,
            use_estimation=True, dynamic_conversion=False,
        ),
    )
    _record(key, STEPS[2], seconds, collector)


@pytest.mark.parametrize("key", FIG10_KEYS)
def test_step4_mixed_tiles(benchmark, matrices, collector, key):
    tiled = _fixed(matrices, key, mixed=True)
    _, seconds = bench_once(
        benchmark,
        lambda: atmult(
            tiled, tiled, config=BENCH_CONFIG,
            use_estimation=True, dynamic_conversion=False,
        ),
    )
    _record(key, STEPS[3], seconds, collector)


@pytest.mark.parametrize("key", FIG10_KEYS)
def test_step5_adaptive_tiles(benchmark, matrices, collector, key):
    at = matrices.at(key)
    _, seconds = bench_once(
        benchmark,
        lambda: atmult(
            at, at, config=BENCH_CONFIG,
            use_estimation=True, dynamic_conversion=False,
        ),
    )
    _record(key, STEPS[4], seconds, collector)


@pytest.mark.parametrize("key", FIG10_KEYS)
def test_step6_full_atmult(benchmark, matrices, collector, key):
    at = matrices.at(key)
    _, seconds = bench_once(
        benchmark, lambda: atmult(at, at, config=BENCH_CONFIG)
    )
    _record(key, STEPS[5], seconds, collector)


def test_zz_fig10_report(benchmark, capsys):
    register_report(benchmark)
    keys = [k for k in FIG10_KEYS if k in _SECONDS.get(STEPS[0], {})]
    with capsys.disabled():
        print()
        print(
            format_relative_table(
                keys,
                {step: _SECONDS.get(step, {}) for step in STEPS},
                baseline=STEPS[0],
                title="Fig. 10: relative performance of incremental optimization steps",
            )
        )
        print(
            "paper shapes: (2) ~= 1x; (3) boosts R2/R6; (4) jumps on R3; "
            "(5-6) win on R4, stay close to 1x on R7 where fixed tiling "
            "collapses"
        )
