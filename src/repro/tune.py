"""Empirical parameter autotuning.

The paper derives ``b_atomic`` and the thresholds from heuristics and
notes that "the ideal tile size and values of alpha, beta might deviate
from our heuristic selection, leaving room for further tuning" (section
II-B1).  :func:`autotune` closes that loop empirically: it partitions a
probe of the target matrix under a small grid of candidate settings,
times one self-multiplication each, and returns the fastest
configuration together with the full trial log.

The probe defaults to the full matrix; for very large inputs pass
``probe_dim`` to tune on the leading principal submatrix (topology
classes are position-stable for the generators and most real matrices,
so a probe preserves the ranking).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .config import SystemConfig
from .core.atmult import atmult
from .core.builder import build_at_matrix
from .cost.model import CostModel
from .engine.options import MultiplyOptions
from .errors import ConfigError
from .formats.coo import COOMatrix
from .observe import Observation


@dataclass(frozen=True)
class Trial:
    """One autotuning measurement."""

    b_atomic: int
    read_threshold: float
    partition_seconds: float
    multiply_seconds: float
    tiles: int
    #: geometric-mean measured/predicted kernel cost ratio of the trial's
    #: multiplication (``None`` unless ``observe_costs=True``); 1.0 means
    #: the cost model predicted this configuration perfectly
    cost_ratio: float | None = None

    @property
    def total_seconds(self) -> float:
        return self.partition_seconds + self.multiply_seconds


@dataclass(frozen=True)
class TuningResult:
    """Outcome of :func:`autotune`."""

    best: Trial
    trials: tuple[Trial, ...]
    config: SystemConfig

    def summary(self) -> str:
        lines = ["autotuning trials (sorted by multiply time):"]
        for trial in sorted(self.trials, key=lambda t: t.multiply_seconds):
            marker = " <= best" if trial == self.best else ""
            accuracy = (
                f" cost-ratio={trial.cost_ratio:5.2f}"
                if trial.cost_ratio is not None
                else ""
            )
            lines.append(
                f"  b_atomic={trial.b_atomic:<5d} rho0_R={trial.read_threshold:<5.2f}"
                f" partition={trial.partition_seconds * 1e3:7.1f}ms"
                f" multiply={trial.multiply_seconds * 1e3:8.1f}ms"
                f" tiles={trial.tiles}{accuracy}{marker}"
            )
        return "\n".join(lines)


def autotune(
    staged: COOMatrix,
    base_config: SystemConfig | None = None,
    *,
    b_atomic_candidates: list[int] | None = None,
    read_threshold_candidates: list[float] | None = None,
    probe_dim: int | None = None,
    include_partitioning: bool = False,
    observe_costs: bool = False,
) -> TuningResult:
    """Find the fastest (b_atomic, rho0_R) pair for a matrix empirically.

    Parameters
    ----------
    staged:
        The target matrix (COO staging form).
    base_config:
        Configuration template; candidates override ``b_atomic``.
    b_atomic_candidates:
        Block sizes to try.  Default: the heuristic choice plus one step
        finer and one coarser.
    read_threshold_candidates:
        Read thresholds to try.  Default: ``[0.1, 0.25, 0.5]``.
    probe_dim:
        Tune on the leading ``probe_dim x probe_dim`` submatrix instead
        of the full matrix.
    include_partitioning:
        Rank candidates by partition+multiply time instead of multiply
        time only (choose this when matrices are multiplied once; the
        default assumes the partitioned matrix is reused).
    observe_costs:
        Run each trial under an observation session and record the
        cost model's geometric-mean measured/predicted ratio on the
        trial (``Trial.cost_ratio``) — a configuration whose ratio sits
        far from 1.0 is one the optimizer reasons poorly about, so its
        win may not transfer to other matrices.
    """
    base_config = base_config or SystemConfig()
    assert base_config.b_atomic is not None
    if b_atomic_candidates is None:
        b = base_config.b_atomic
        b_atomic_candidates = sorted({max(2, b // 2), b, b * 2})
    if read_threshold_candidates is None:
        read_threshold_candidates = [0.1, 0.25, 0.5]
    for candidate in b_atomic_candidates:
        if candidate < 2 or candidate & (candidate - 1):
            raise ConfigError(f"b_atomic candidate {candidate} not a power of two >= 2")

    probe = staged
    if probe_dim is not None:
        dim = min(probe_dim, staged.rows, staged.cols)
        probe = staged.extract_window(0, dim, 0, dim)
        if probe.nnz == 0:
            probe = staged  # empty probe says nothing; tune on the full matrix

    trials: list[Trial] = []
    for b_atomic in b_atomic_candidates:
        config = SystemConfig(
            llc_bytes=base_config.llc_bytes,
            alpha=base_config.alpha,
            beta=base_config.beta,
            b_atomic=b_atomic,
        )
        for threshold in read_threshold_candidates:
            model = CostModel(read_threshold=threshold)
            start = time.perf_counter()
            matrix = build_at_matrix(probe, config, read_threshold=threshold)
            partition_seconds = time.perf_counter() - start
            observer = Observation() if observe_costs else None
            start = time.perf_counter()
            atmult(
                matrix, matrix,
                options=MultiplyOptions(
                    config=config, cost_model=model, observer=observer
                ),
            )
            multiply_seconds = time.perf_counter() - start
            cost_ratio = None
            if observer is not None:
                ratios = observer.cost_accuracy.ratio_by_kernel()
                if ratios:
                    product = 1.0
                    for ratio in ratios.values():
                        product *= ratio
                    cost_ratio = product ** (1.0 / len(ratios))
            trials.append(
                Trial(
                    b_atomic,
                    threshold,
                    partition_seconds,
                    multiply_seconds,
                    len(matrix.tiles),
                    cost_ratio,
                )
            )

    key = (
        (lambda t: t.total_seconds)
        if include_partitioning
        else (lambda t: t.multiply_seconds)
    )
    best = min(trials, key=key)
    best_config = SystemConfig(
        llc_bytes=base_config.llc_bytes,
        alpha=base_config.alpha,
        beta=base_config.beta,
        b_atomic=best.b_atomic,
    )
    return TuningResult(best=best, trials=tuple(trials), config=best_config)
