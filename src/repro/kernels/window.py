"""Reference windows for submatrix multiplication.

Paper section III-B: arbitrary rectangular subparts of a tile are
referenced via the coordinates of the upper-left and lower-right edges,
relative to the tile origin.  A :class:`Window` is that reference in
half-open form ``[row0, row1) x [col0, col1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError


@dataclass(frozen=True)
class Window:
    """Half-open rectangular reference into a matrix or tile."""

    row0: int
    row1: int
    col0: int
    col1: int

    def __post_init__(self) -> None:
        if self.row0 < 0 or self.col0 < 0 or self.row0 > self.row1 or self.col0 > self.col1:
            raise ShapeError(f"degenerate window {self}")

    @property
    def rows(self) -> int:
        return self.row1 - self.row0

    @property
    def cols(self) -> int:
        return self.col1 - self.col0

    @property
    def area(self) -> int:
        return self.rows * self.cols

    def is_empty(self) -> bool:
        return self.rows == 0 or self.cols == 0

    def covers(self, shape: tuple[int, int]) -> bool:
        """Whether this window spans the full matrix of the given shape."""
        return (self.row0, self.col0) == (0, 0) and (self.row1, self.col1) == shape

    def validate_within(self, shape: tuple[int, int]) -> None:
        """Raise :class:`ShapeError` unless the window fits inside ``shape``."""
        if self.row1 > shape[0] or self.col1 > shape[1]:
            raise ShapeError(f"window {self} exceeds matrix shape {shape}")

    def shifted(self, row_offset: int, col_offset: int) -> Window:
        """The same window translated by the given offsets."""
        return Window(
            self.row0 + row_offset,
            self.row1 + row_offset,
            self.col0 + col_offset,
            self.col1 + col_offset,
        )

    @staticmethod
    def full(shape: tuple[int, int]) -> Window:
        """The window covering an entire matrix of the given shape."""
        return Window(0, shape[0], 0, shape[1])

    @staticmethod
    def intersect(a: Window, b: Window) -> Window:
        """The (possibly empty) intersection of two windows."""
        row0 = max(a.row0, b.row0)
        col0 = max(a.col0, b.col0)
        row1 = max(row0, min(a.row1, b.row1))
        col1 = max(col0, min(a.col1, b.col1))
        return Window(row0, row1, col0, col1)
