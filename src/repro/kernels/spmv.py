"""Matrix-vector multiplication kernels.

The paper's related work (section V-A) leans on SpMV results — notably
Vuduc's observation that "CSR tends to have best performance for sparse
matrix-vector multiplication on a wide class of matrices", which
motivated CSR as the sparse tile format.  These kernels provide the
vector path for both plain matrices and windowed tiles, so the AT Matrix
can serve iterative solvers (power iteration, PageRank, CG-style loops)
without densifying.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.csr import CSRMatrix, _segment_gather_indices
from ..formats.dense import DenseMatrix
from .window import Window


def csr_spmv(matrix: CSRMatrix, vector: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for CSR: the classic row-wise kernel, vectorized.

    Products are formed per stored element and reduced per row with a
    segmented sum — the numpy equivalent of Gustavson's row loop.
    """
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != matrix.cols:
        raise ShapeError(f"vector length {len(vector)} != cols {matrix.cols}")
    out = np.zeros(matrix.rows, dtype=np.float64)
    if not matrix.nnz:
        return out
    products = matrix.values * vector[matrix.indices]
    row_nnz = matrix.row_nnz()
    occupied = np.flatnonzero(row_nnz)
    starts = matrix.indptr[occupied]
    out[occupied] = np.add.reduceat(products, starts)
    return out


def csr_spmv_window(
    matrix: CSRMatrix, window: Window, vector: np.ndarray
) -> np.ndarray:
    """Windowed CSR SpMV: ``y = A[window] @ x`` (x indexes window cols)."""
    window.validate_within(matrix.shape)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != window.cols:
        raise ShapeError(f"vector length {len(vector)} != window cols {window.cols}")
    out = np.zeros(window.rows, dtype=np.float64)
    lo, hi = matrix.window_ranges(window.row0, window.row1, window.col0, window.col1)
    lengths = hi - lo
    total = int(lengths.sum())
    if not total:
        return out
    take = _segment_gather_indices(lo, lengths)
    products = matrix.values[take] * vector[matrix.indices[take] - window.col0]
    occupied = np.flatnonzero(lengths)
    boundaries = np.concatenate([[0], np.cumsum(lengths[occupied])[:-1]])
    out[occupied] = np.add.reduceat(products, boundaries)
    return out


def dense_spmv(matrix: DenseMatrix, vector: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for the dense representation (BLAS gemv)."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != matrix.cols:
        raise ShapeError(f"vector length {len(vector)} != cols {matrix.cols}")
    return matrix.array @ vector


def dense_spmv_window(
    matrix: DenseMatrix, window: Window, vector: np.ndarray
) -> np.ndarray:
    """Windowed dense SpMV over a zero-copy view."""
    window.validate_within(matrix.shape)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != window.cols:
        raise ShapeError(f"vector length {len(vector)} != window cols {window.cols}")
    view = matrix.window_view(window.row0, window.row1, window.col0, window.col1)
    return view @ vector
