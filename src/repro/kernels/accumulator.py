"""Output accumulators for tile-granular multiplication.

A target tile ``C_(ti,tj)`` is written accumulatively by every tile
product of its block-row/block-column pair (paper Fig. 4).  Two
accumulator flavors mirror the paper's write-side representations:

:class:`DenseAccumulator`
    wraps a dense array; every product adds in place (cheap writes, the
    reason ``spspd_gemm`` beats ``spspsp_gemm`` on dense outputs).

:class:`SparseAccumulator`
    the classical SPA realized as a triple buffer: products append
    coordinate runs, and :meth:`finalize` sorts/merges them into CSR once
    (expensive writes — the paper's read/write cost asymmetry).
"""

from __future__ import annotations

import numpy as np

from .._types import FloatArray, IndexArray
from ..errors import ShapeError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind


class DenseAccumulator:
    """Accumulates tile products into a dense array."""

    kind = StorageKind.DENSE

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ShapeError(f"accumulator dims must be positive, got ({rows}, {cols})")
        self.rows = rows
        self.cols = cols
        self.array = np.zeros((rows, cols), dtype=np.float64)
        #: Number of scalar writes performed (cost-model bookkeeping).
        self.writes = 0

    def add_dense(self, row0: int, col0: int, block: FloatArray) -> None:
        """Add a dense product block at offset ``(row0, col0)``."""
        rows, cols = block.shape
        self.array[row0 : row0 + rows, col0 : col0 + cols] += block
        self.writes += block.size

    def add_triples(
        self, row0: int, col0: int, rows: IndexArray, cols: IndexArray, values: FloatArray
    ) -> None:
        """Scatter-add coordinate triples at offset ``(row0, col0)``.

        Large scatters go through ``bincount`` (a dense histogram pass,
        ~2x faster than ``np.add.at``); small ones scatter directly to
        avoid allocating an accumulator of the full tile area.
        """
        area = self.rows * self.cols
        if len(values) * 8 >= area:
            flat = (rows + row0) * np.int64(self.cols) + (cols + col0)
            self.array.ravel()[:] += np.bincount(
                flat, weights=values, minlength=area
            )
        else:
            np.add.at(self.array, (rows + row0, cols + col0), values)
        self.writes += len(values)

    def finalize(self) -> DenseMatrix:
        """The accumulated tile as a dense matrix (owns the array)."""
        return DenseMatrix(self.array, copy=False)


class SparseAccumulator:
    """Accumulates tile products as coordinate runs, merged once at the end."""

    kind = StorageKind.SPARSE

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ShapeError(f"accumulator dims must be positive, got ({rows}, {cols})")
        self.rows = rows
        self.cols = cols
        self._row_runs: list[IndexArray] = []
        self._col_runs: list[IndexArray] = []
        self._val_runs: list[FloatArray] = []
        self.writes = 0

    def add_dense(self, row0: int, col0: int, block: FloatArray) -> None:
        """Add a dense product block (non-zeros extracted) at an offset."""
        nz_rows, nz_cols = np.nonzero(block)
        self.add_triples(row0, col0, nz_rows, nz_cols, block[nz_rows, nz_cols])

    def add_triples(
        self, row0: int, col0: int, rows: IndexArray, cols: IndexArray, values: FloatArray
    ) -> None:
        """Append coordinate triples at offset ``(row0, col0)``."""
        if len(values) == 0:
            return
        self._row_runs.append(np.asarray(rows, dtype=np.int64) + row0)
        self._col_runs.append(np.asarray(cols, dtype=np.int64) + col0)
        self._val_runs.append(np.asarray(values, dtype=np.float64))
        self.writes += len(values)

    @property
    def pending(self) -> int:
        """Number of buffered (pre-merge) triples."""
        return sum(len(run) for run in self._val_runs)

    def finalize(self) -> CSRMatrix:
        """Merge all runs into a CSR matrix (duplicates summed)."""
        if not self._val_runs:
            return CSRMatrix.empty(self.rows, self.cols)
        return CSRMatrix.from_arrays_unsorted(
            self.rows,
            self.cols,
            np.concatenate(self._row_runs),
            np.concatenate(self._col_runs),
            np.concatenate(self._val_runs),
            sum_duplicates=True,
        )


Accumulator = DenseAccumulator | SparseAccumulator


def make_accumulator(kind: StorageKind, rows: int, cols: int) -> Accumulator:
    """Accumulator factory keyed by target storage kind."""
    if kind is StorageKind.DENSE:
        return DenseAccumulator(rows, cols)
    return SparseAccumulator(rows, cols)
