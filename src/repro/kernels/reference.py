"""Reference kernels: element-wise Gustavson with an explicit SPA.

These are direct, loop-based transcriptions of the classical algorithms
— Gustavson's row-wise sparse multiplication with a sparse accumulator
(paper [11]) — kept as executable documentation and as an independent
oracle for the vectorized kernels.  They are orders of magnitude slower
and never used by default.

:func:`use_reference_kernels` demonstrates the paper's plug-in
architecture (section III-A: kernels "could just be plugged in to our
system"): inside the context, the registry dispatches every sparse
product to the reference implementation while the optimizer and tiling
machinery stay unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator

from ..formats.csr import CSRMatrix
from ..kinds import StorageKind
from .accumulator import Accumulator
from .registry import Operand, get_kernel, register_kernel
from .window import Window


def gustavson_spsp(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Classical Gustavson: per output row, scatter into a SPA.

    The sparse accumulator (SPA) is realized as a Python dict keyed by
    column id — the literal textbook algorithm.
    """
    rows: list[int] = []
    cols: list[int] = []
    values: list[float] = []
    for i in range(a.rows):
        spa: dict[int, float] = {}
        a_cols, a_vals = a.row_slice(i)
        for k, a_ik in zip(a_cols, a_vals, strict=True):
            b_cols, b_vals = b.row_slice(int(k))
            for j, b_kj in zip(b_cols, b_vals, strict=True):
                spa[int(j)] = spa.get(int(j), 0.0) + float(a_ik) * float(b_kj)
        for j in sorted(spa):
            value = spa[j]
            if value != 0.0:
                rows.append(i)
                cols.append(j)
                values.append(value)
    return CSRMatrix.from_arrays_unsorted(
        a.rows, b.cols, rows, cols, values, sum_duplicates=False
    )


def _windowed_csr(matrix: CSRMatrix, window: Window) -> CSRMatrix:
    if window.covers(matrix.shape):
        return matrix
    return matrix.extract_window(window.row0, window.row1, window.col0, window.col1)


def _reference_spsp_kernel(
    a: Operand,
    wa: Window,
    b: Operand,
    wb: Window,
    out: Accumulator,
    row0: int,
    col0: int,
) -> None:
    """Registry-compatible wrapper around :func:`gustavson_spsp`."""
    assert isinstance(a, CSRMatrix) and isinstance(b, CSRMatrix)
    product = gustavson_spsp(_windowed_csr(a, wa), _windowed_csr(b, wb))
    import numpy as np

    tile_rows = np.repeat(
        np.arange(product.rows, dtype=np.int64), product.row_nnz()
    )
    out.add_triples(row0, col0, tile_rows, product.indices, product.values)


#: Public alias used by the resilience layer's reference fallback.
reference_spsp_kernel = _reference_spsp_kernel


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Swap the sparse-sparse kernels for the reference implementation.

    Restores the previous registrations on exit, even on error.  Only
    the (sparse, sparse, *) combinations are replaced; mixed and dense
    products keep their vectorized kernels.
    """
    saved = {
        c_kind: get_kernel(StorageKind.SPARSE, StorageKind.SPARSE, c_kind)
        for c_kind in StorageKind
    }
    try:
        for c_kind in StorageKind:
            register_kernel(
                StorageKind.SPARSE, StorageKind.SPARSE, c_kind, _reference_spsp_kernel
            )
        yield
    finally:
        for c_kind, kernel in saved.items():
            register_kernel(StorageKind.SPARSE, StorageKind.SPARSE, c_kind, kernel)
