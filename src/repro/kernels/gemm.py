"""Whole-matrix baseline multiplication operators.

These are the monolithic ("naive") algorithms the paper benchmarks ATMULT
against (Fig. 8/9): a single kernel applied to the unpartitioned operands.
Names follow the paper's ``<A><B><C>_gemm`` convention with ``sp`` / ``d``
type codes, e.g. ``spspd_gemm`` multiplies two CSR matrices into a dense
array.  ``ddd_gemm`` delegates to BLAS through numpy, standing in for the
paper's Intel MKL call.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ShapeError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind
from .accumulator import make_accumulator
from .registry import Operand, run_tile_product
from .window import Window


def _multiply(a: Operand, b: Operand, c_kind: StorageKind) -> Operand:
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    out = make_accumulator(c_kind, a.rows, b.cols)
    run_tile_product(a, Window.full(a.shape), b, Window.full(b.shape), out)
    return out.finalize()


def spspsp_gemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """sparse x sparse -> sparse; the paper's baseline (R/MATLAB-style)."""
    return _multiply(a, b, StorageKind.SPARSE)


def spspd_gemm(a: CSRMatrix, b: CSRMatrix) -> DenseMatrix:
    """sparse x sparse -> dense array."""
    return _multiply(a, b, StorageKind.DENSE)


def spdsp_gemm(a: CSRMatrix, b: DenseMatrix) -> CSRMatrix:
    """sparse x dense -> sparse."""
    return _multiply(a, b, StorageKind.SPARSE)


def spdd_gemm(a: CSRMatrix, b: DenseMatrix) -> DenseMatrix:
    """sparse x dense -> dense."""
    return _multiply(a, b, StorageKind.DENSE)


def dspsp_gemm(a: DenseMatrix, b: CSRMatrix) -> CSRMatrix:
    """dense x sparse -> sparse."""
    return _multiply(a, b, StorageKind.SPARSE)


def dspd_gemm(a: DenseMatrix, b: CSRMatrix) -> DenseMatrix:
    """dense x sparse -> dense."""
    return _multiply(a, b, StorageKind.DENSE)


def ddsp_gemm(a: DenseMatrix, b: DenseMatrix) -> CSRMatrix:
    """dense x dense -> sparse."""
    return _multiply(a, b, StorageKind.SPARSE)


def ddd_gemm(a: DenseMatrix, b: DenseMatrix) -> DenseMatrix:
    """dense x dense -> dense (BLAS, the paper's MKL stand-in)."""
    return _multiply(a, b, StorageKind.DENSE)


def multiply_plain(a: Operand, b: Operand, c_kind: StorageKind) -> Operand:
    """Generic baseline multiply; operand kinds are dispatched internally."""
    return _multiply(a, b, c_kind)


_BY_NAME: dict[str, Callable[..., Operand]] = {
    "spspsp_gemm": spspsp_gemm,
    "spspd_gemm": spspd_gemm,
    "spdsp_gemm": spdsp_gemm,
    "spdd_gemm": spdd_gemm,
    "dspsp_gemm": dspsp_gemm,
    "dspd_gemm": dspd_gemm,
    "ddsp_gemm": ddsp_gemm,
    "ddd_gemm": ddd_gemm,
}


def by_name(name: str) -> Callable[..., Operand]:
    """Look up a baseline operator by its paper-style name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown gemm {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
