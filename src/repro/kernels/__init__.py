"""Multiplication kernels: windowed tile products and plain baselines.

The optimizer layer (``repro.core``) treats everything here as a black box
with a known cost function, matching the paper's architecture where high
performance kernels can be "plugged in" (section III-A).
"""

from .accumulator import Accumulator, DenseAccumulator, SparseAccumulator, make_accumulator
from .gemm import (
    by_name,
    ddd_gemm,
    ddsp_gemm,
    dspd_gemm,
    dspsp_gemm,
    multiply_plain,
    spdd_gemm,
    spdsp_gemm,
    spspd_gemm,
    spspsp_gemm,
)
from .registry import available_kernels, get_kernel, kind_of, register_kernel, run_tile_product
from .window import Window

__all__ = [
    "Accumulator",
    "DenseAccumulator",
    "SparseAccumulator",
    "make_accumulator",
    "Window",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "run_tile_product",
    "kind_of",
    "multiply_plain",
    "by_name",
    "spspsp_gemm",
    "spspd_gemm",
    "spdsp_gemm",
    "spdd_gemm",
    "dspsp_gemm",
    "dspd_gemm",
    "ddsp_gemm",
    "ddd_gemm",
]
