"""Registry of the 8 tile multiplication kernels.

Paper section III-A: "In total, there are 2**3 = 8 different kernels for
the basic matrix types that are either sparse or dense."  A kernel is
addressed by the storage kinds of (A, B, C); it reads windowed operands
and adds its product into an accumulator at a target offset.

New kernel implementations (the paper's "plug in" extension point) can be
registered with :func:`register_kernel`, replacing the built-in routine
for a given type combination — the optimizer only needs the cost model to
stay in sync.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import ShapeError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind, kernel_name
from ..observe import session as observe_session
from ..resilience.faults import fire_corruption, fire_hooks
from . import products
from .accumulator import Accumulator, DenseAccumulator
from .window import Window

Operand = CSRMatrix | DenseMatrix


class Kernel(Protocol):
    """Callable signature of a tile multiplication kernel."""

    def __call__(
        self,
        a: Operand,
        wa: Window,
        b: Operand,
        wb: Window,
        out: Accumulator,
        row0: int,
        col0: int,
    ) -> None: ...


def kind_of(operand: Operand) -> StorageKind:
    """Storage kind of a plain operand object."""
    if isinstance(operand, CSRMatrix):
        return StorageKind.SPARSE
    if isinstance(operand, DenseMatrix):
        return StorageKind.DENSE
    raise TypeError(f"not a kernel operand: {type(operand).__name__}")


def _kernel_sp_sp(
    a: Operand, wa: Window, b: Operand, wb: Window,
    out: Accumulator, row0: int, col0: int,
) -> None:
    # Both accumulator flavors take the compressed expansion as triples;
    # the write-cost asymmetry materializes in the accumulator itself.
    out.add_triples(row0, col0, *products.spsp_triples(a, wa, b, wb))


def _kernel_sp_d(
    a: Operand, wa: Window, b: Operand, wb: Window,
    out: Accumulator, row0: int, col0: int,
) -> None:
    if isinstance(out, DenseAccumulator):
        out.add_dense(row0, col0, products.spd_dense(a, wa, b, wb))
    else:
        out.add_triples(row0, col0, *products.spd_triples(a, wa, b, wb))


def _kernel_d_sp(
    a: Operand, wa: Window, b: Operand, wb: Window,
    out: Accumulator, row0: int, col0: int,
) -> None:
    if isinstance(out, DenseAccumulator):
        out.add_dense(row0, col0, products.dsp_dense(a, wa, b, wb))
    else:
        out.add_triples(row0, col0, *products.dsp_triples(a, wa, b, wb))


def _kernel_d_d(
    a: Operand, wa: Window, b: Operand, wb: Window,
    out: Accumulator, row0: int, col0: int,
) -> None:
    if isinstance(out, DenseAccumulator):
        out.add_dense(row0, col0, products.dd_dense(a, wa, b, wb))
    else:
        out.add_triples(row0, col0, *products.dd_triples(a, wa, b, wb))


_KERNELS: dict[tuple[StorageKind, StorageKind, StorageKind], Kernel] = {}


def register_kernel(
    a_kind: StorageKind, b_kind: StorageKind, c_kind: StorageKind, kernel: Kernel
) -> None:
    """Install (or replace) the kernel for one (A, B, C) type combination."""
    _KERNELS[(a_kind, b_kind, c_kind)] = kernel


def get_kernel(
    a_kind: StorageKind, b_kind: StorageKind, c_kind: StorageKind
) -> Kernel:
    """Look up the kernel for an (A, B, C) type combination."""
    return _KERNELS[(a_kind, b_kind, c_kind)]


def available_kernels() -> list[str]:
    """Paper-style names of all registered kernels (e.g. ``spspd_gemm``)."""
    return sorted(kernel_name(*key) for key in _KERNELS)


def _install_builtins() -> None:
    for c_kind in StorageKind:
        register_kernel(StorageKind.SPARSE, StorageKind.SPARSE, c_kind, _kernel_sp_sp)
        register_kernel(StorageKind.SPARSE, StorageKind.DENSE, c_kind, _kernel_sp_d)
        register_kernel(StorageKind.DENSE, StorageKind.SPARSE, c_kind, _kernel_d_sp)
        register_kernel(StorageKind.DENSE, StorageKind.DENSE, c_kind, _kernel_d_d)


_install_builtins()


def run_tile_product(
    a: Operand,
    wa: Window,
    b: Operand,
    wb: Window,
    out: Accumulator,
    row0: int = 0,
    col0: int = 0,
) -> None:
    """Dispatch one windowed tile product to the registered kernel.

    ``(row0, col0)`` locate the product inside the target accumulator,
    which realizes the accumulative write of paper Fig. 4.
    """
    if wa.cols != wb.rows:
        raise ShapeError(
            f"inner dimensions differ: {wa.rows}x{wa.cols} vs {wb.rows}x{wb.cols}"
        )
    if wa.is_empty() or wb.is_empty():
        return
    hook_extra = (row0, col0, wa.row0, wa.col0, wb.row0, wb.col0)
    fire_hooks("kernel", hook_extra)
    a_kind, b_kind = kind_of(a), kind_of(b)
    kernel = get_kernel(a_kind, b_kind, out.kind)
    obs = observe_session.current()
    if obs is None:
        # Disabled path: one global read and a None check, nothing else.
        kernel(a, wa, b, wb, out, row0, col0)
    else:
        name = kernel_name(a_kind, b_kind, out.kind)
        with obs.tracer.span(name, "kernel"):
            kernel(a, wa, b, wb, out, row0, col0)
        obs.metrics.counter(f"kernel.dispatch.{name}").inc()
    fire_corruption("kernel", out, hook_extra)
