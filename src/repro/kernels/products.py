"""Windowed tile-product primitives underlying the 8 multiplication kernels.

Four product routines cover the (sparse|dense) x (sparse|dense) operand
combinations; each exists in a variant producing a dense block and one
producing compressed coordinate triples, giving the paper's ``2**3 = 8``
kernels once combined with the two accumulator flavors.

Sparse products follow Gustavson's row-wise algorithm in vectorized
*expand-sort-compress* form: every non-zero ``A[i,k]`` is expanded against
row ``k`` of ``B``, and the expansion is merged by sorting on the target
coordinate.  All routines chunk their expansion buffers so peak memory
stays bounded regardless of operand size.
"""

from __future__ import annotations

import numpy as np

from .._types import FloatArray, IndexArray
from ..errors import ShapeError
from ..formats.csr import CSRMatrix, _segment_gather_indices
from ..formats.dense import DenseMatrix
from .window import Window

#: Expansion buffer budget (elements) for chunked products.
EXPANSION_CHUNK = 1 << 22

Triples = tuple[IndexArray, IndexArray, FloatArray]


def _empty_triples() -> Triples:
    empty = np.empty(0, dtype=np.int64)
    return empty, empty, np.empty(0, dtype=np.float64)


def _check_inner(wa: Window, wb: Window) -> None:
    if wa.cols != wb.rows:
        raise ShapeError(
            f"inner dimensions differ: A window {wa.rows}x{wa.cols}"
            f" vs B window {wb.rows}x{wb.cols}"
        )


def compress_triples(
    rows: IndexArray, cols: IndexArray, values: FloatArray, ncols: int
) -> Triples:
    """Sort triples row-major and sum duplicates, dropping explicit zeros."""
    if not len(values):
        return _empty_triples()
    keys = rows * np.int64(ncols) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    summed = np.add.reduceat(values, starts)
    keys = keys[starts]
    keep = summed != 0.0
    keys = keys[keep]
    summed = summed[keep]
    return keys // ncols, keys % ncols, summed


def _csr_row_ranges(
    matrix: CSRMatrix, window: Window
) -> tuple[IndexArray, IndexArray]:
    """Per-row ``(lo, hi)`` index bounds of ``matrix`` inside ``window``.

    The column range is resolved with one vectorized binary search over
    the matrix's sorted row-major keys (paper section III-B: sorted
    column ids enable binary column-id search).
    """
    return matrix.window_ranges(window.row0, window.row1, window.col0, window.col1)


def _csr_window_triples(matrix: CSRMatrix, window: Window) -> Triples:
    """Window-relative triples of a CSR operand, row-major order."""
    window.validate_within(matrix.shape)
    lo, hi = _csr_row_ranges(matrix, window)
    lengths = hi - lo
    total = int(lengths.sum())
    if not total:
        return _empty_triples()
    take = _segment_gather_indices(lo, lengths)
    rows = np.repeat(np.arange(window.rows, dtype=np.int64), lengths)
    return rows, matrix.indices[take] - window.col0, matrix.values[take]


# ---------------------------------------------------------------------------
# sparse x sparse
# ---------------------------------------------------------------------------
def spsp_triples(a: CSRMatrix, wa: Window, b: CSRMatrix, wb: Window) -> Triples:
    """Windowed CSR x CSR product as compressed triples (Gustavson)."""
    _check_inner(wa, wb)
    a_rows, a_cols, a_vals = _csr_window_triples(a, wa)
    if not len(a_vals):
        return _empty_triples()
    b_lo, b_hi = _csr_row_ranges(b, wb)
    b_lengths = b_hi - b_lo
    lens = b_lengths[a_cols]
    cumulative = np.cumsum(lens)
    total = int(cumulative[-1]) if len(cumulative) else 0
    if not total:
        return _empty_triples()
    row_runs: list[IndexArray] = []
    col_runs: list[IndexArray] = []
    val_runs: list[FloatArray] = []
    start = 0
    while start < len(a_vals):
        base = cumulative[start - 1] if start else 0
        end = int(np.searchsorted(cumulative, base + EXPANSION_CHUNK, side="left"))
        end = min(max(end, start + 1), len(a_vals))
        chunk_lens = lens[start:end]
        take = _segment_gather_indices(b_lo[a_cols[start:end]], chunk_lens)
        out_rows = np.repeat(a_rows[start:end], chunk_lens)
        out_cols = b.indices[take] - wb.col0
        out_vals = np.repeat(a_vals[start:end], chunk_lens) * b.values[take]
        rows_c, cols_c, vals_c = compress_triples(out_rows, out_cols, out_vals, wb.cols)
        row_runs.append(rows_c)
        col_runs.append(cols_c)
        val_runs.append(vals_c)
        start = end
    if len(row_runs) == 1:
        return row_runs[0], col_runs[0], val_runs[0]
    return compress_triples(
        np.concatenate(row_runs),
        np.concatenate(col_runs),
        np.concatenate(val_runs),
        wb.cols,
    )


def spsp_flops(a: CSRMatrix, wa: Window, b: CSRMatrix, wb: Window) -> int:
    """Exact scalar-multiplication count of the windowed CSR x CSR product."""
    _check_inner(wa, wb)
    __, a_cols, __ = _csr_window_triples(a, wa)
    if not len(a_cols):
        return 0
    b_lo, b_hi = _csr_row_ranges(b, wb)
    return int((b_hi - b_lo)[a_cols].sum())


def spsp_dense(a: CSRMatrix, wa: Window, b: CSRMatrix, wb: Window) -> FloatArray:
    """Windowed CSR x CSR product materialized as a dense block."""
    rows, cols, values = spsp_triples(a, wa, b, wb)
    out = np.zeros((wa.rows, wb.cols), dtype=np.float64)
    out[rows, cols] = values
    return out


# ---------------------------------------------------------------------------
# sparse x dense
# ---------------------------------------------------------------------------
def spd_dense(a: CSRMatrix, wa: Window, b: DenseMatrix, wb: Window) -> FloatArray:
    """Windowed CSR x dense product as a dense block.

    For every non-zero ``A[i,k]`` the dense row ``B[k,:]`` is scaled and
    added into output row ``i``; rows are merged with a segmented
    reduction instead of a scatter.
    """
    _check_inner(wa, wb)
    b_view = b.window_view(wb.row0, wb.row1, wb.col0, wb.col1)
    out = np.zeros((wa.rows, wb.cols), dtype=np.float64)
    a_rows, a_cols, a_vals = _csr_window_triples(a, wa)
    if not len(a_vals):
        return out
    chunk = max(1, EXPANSION_CHUNK // max(1, wb.cols))
    for start in range(0, len(a_vals), chunk):
        end = min(start + chunk, len(a_vals))
        rows_c = a_rows[start:end]
        expanded = a_vals[start:end, None] * b_view[a_cols[start:end]]
        boundaries = np.empty(end - start, dtype=bool)
        boundaries[0] = True
        np.not_equal(rows_c[1:], rows_c[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        # Rows are unique within a chunk; += merges rows split across chunks.
        out[rows_c[starts]] += np.add.reduceat(expanded, starts, axis=0)
    return out


def spd_triples(a: CSRMatrix, wa: Window, b: DenseMatrix, wb: Window) -> Triples:
    """Windowed CSR x dense product as compressed triples."""
    block = spd_dense(a, wa, b, wb)
    rows, cols = np.nonzero(block)
    return rows.astype(np.int64), cols.astype(np.int64), block[rows, cols]


# ---------------------------------------------------------------------------
# dense x sparse
# ---------------------------------------------------------------------------
def dsp_dense(a: DenseMatrix, wa: Window, b: CSRMatrix, wb: Window) -> FloatArray:
    """Windowed dense x CSR product as a dense block.

    Every non-zero ``B[k,j]`` contributes ``A[:,k] * v`` to output column
    ``j``; contributions are grouped by target column and merged with a
    segmented reduction along the expansion axis.
    """
    _check_inner(wa, wb)
    a_view = a.window_view(wa.row0, wa.row1, wa.col0, wa.col1)
    out = np.zeros((wa.rows, wb.cols), dtype=np.float64)
    b_rows, b_cols, b_vals = _csr_window_triples(b, wb)
    if not len(b_vals):
        return out
    order = np.argsort(b_cols, kind="stable")
    b_rows, b_cols, b_vals = b_rows[order], b_cols[order], b_vals[order]
    chunk = max(1, EXPANSION_CHUNK // max(1, wa.rows))
    for start in range(0, len(b_vals), chunk):
        end = min(start + chunk, len(b_vals))
        cols_c = b_cols[start:end]
        expanded = a_view[:, b_rows[start:end]] * b_vals[start:end]
        boundaries = np.empty(end - start, dtype=bool)
        boundaries[0] = True
        np.not_equal(cols_c[1:], cols_c[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        out[:, cols_c[starts]] += np.add.reduceat(expanded, starts, axis=1)
    return out


def dsp_triples(a: DenseMatrix, wa: Window, b: CSRMatrix, wb: Window) -> Triples:
    """Windowed dense x CSR product as compressed triples."""
    block = dsp_dense(a, wa, b, wb)
    rows, cols = np.nonzero(block)
    return rows.astype(np.int64), cols.astype(np.int64), block[rows, cols]


# ---------------------------------------------------------------------------
# dense x dense
# ---------------------------------------------------------------------------
def dd_dense(a: DenseMatrix, wa: Window, b: DenseMatrix, wb: Window) -> FloatArray:
    """Windowed dense x dense product (delegates to BLAS via numpy)."""
    _check_inner(wa, wb)
    a_view = a.window_view(wa.row0, wa.row1, wa.col0, wa.col1)
    b_view = b.window_view(wb.row0, wb.row1, wb.col0, wb.col1)
    return a_view @ b_view


def dd_triples(a: DenseMatrix, wa: Window, b: DenseMatrix, wb: Window) -> Triples:
    """Windowed dense x dense product as compressed triples."""
    block = dd_dense(a, wa, b, wb)
    rows, cols = np.nonzero(block)
    return rows.astype(np.int64), cols.astype(np.int64), block[rows, cols]


__all__ = [
    "EXPANSION_CHUNK",
    "compress_triples",
    "spsp_triples",
    "spsp_dense",
    "spsp_flops",
    "spd_dense",
    "spd_triples",
    "dsp_dense",
    "dsp_triples",
    "dd_dense",
    "dd_triples",
]
