"""Analytic cost functions for the 8 multiplication kernels.

The model predicts the runtime of one tile product ``C += A x B`` with
``A: m x k`` at density ``rho_a``, ``B: k x n`` at ``rho_b`` and estimated
result density ``rho_c``.  Work terms follow the implemented algorithms:

* sparse expansion flops ``F = m * k * n * rho_a * rho_b`` — the expected
  scalar product count of Gustavson's algorithm;
* sort/merge work ``F * log2(F)`` for compressing sparse expansions;
* dense flops ``m * k * n`` for BLAS;
* write costs asymmetric between dense targets (cheap accumulation into an
  array) and sparse targets (buffered triples merged by a global sort) —
  the asymmetry behind the paper's two thresholds ``rho0_R >> rho0_W``.

Coefficients are machine-dependent; :mod:`repro.cost.calibrate` fits them
from micro-benchmarks, and :data:`DEFAULT_COEFFICIENTS` ships values
fitted on the reference development machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..kinds import StorageKind


@dataclass(frozen=True)
class CostCoefficients:
    """Machine-dependent weights of the cost model (seconds per unit work).

    The absolute scale is irrelevant to the optimizer (only ratios drive
    decisions); values are kept in rough "seconds per element operation"
    units so predicted costs remain interpretable.
    """

    #: per expanded scalar product in sparse-sparse expansion
    sparse_expand: float = 3.0e-8
    #: per element-log-element of sort/merge work in sparse compression
    sparse_sort: float = 1.0e-8
    #: per scalar product of the CSR x dense row-accumulation kernel
    spd_flop: float = 1.2e-8
    #: per scalar product of the dense x CSR column-accumulation kernel
    dsp_flop: float = 1.4e-8
    #: per scalar product of the BLAS dense kernel
    dense_flop: float = 1.0e-9
    #: per cell written into a dense accumulator
    dense_write: float = 2.0e-9
    #: per triple appended to / merged into a sparse accumulator
    sparse_write: float = 4.0e-8
    #: per cell scanned when extracting non-zeros from a dense block
    dense_scan: float = 1.5e-9
    #: per element moved in a representation conversion
    convert_element: float = 2.0e-8
    #: fixed overhead per kernel invocation
    task_overhead: float = 3.0e-5

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"coefficient {name} must be >= 0, got {value}")


DEFAULT_COEFFICIENTS = CostCoefficients()


def _nlogn(n: float) -> float:
    return n * math.log2(n) if n > 2.0 else n


class CostModel:
    """Cost oracle for kernel selection, conversions and thresholds.

    Parameters
    ----------
    coefficients:
        Machine coefficients (see :class:`CostCoefficients`).
    read_threshold:
        The paper's ``rho0_R`` — density at which an *input* tile should
        be dense.  The paper's configuration uses 0.25.
    write_threshold:
        The paper's ``rho0_W`` — density at which an *output* tile should
        be dense; "usually a much lower value" due to the read/write
        asymmetry.
    """

    def __init__(
        self,
        coefficients: CostCoefficients = DEFAULT_COEFFICIENTS,
        *,
        read_threshold: float = 0.25,
        write_threshold: float = 0.04,
    ) -> None:
        if not 0.0 < read_threshold <= 1.0:
            raise ConfigError(f"read_threshold must be in (0, 1], got {read_threshold}")
        if not 0.0 < write_threshold <= 1.0:
            raise ConfigError(
                f"write_threshold must be in (0, 1], got {write_threshold}"
            )
        self.coefficients = coefficients
        self.read_threshold = read_threshold
        self.write_threshold = write_threshold

    # -- kernel costs -----------------------------------------------------
    def product_cost(
        self,
        a_kind: StorageKind,
        b_kind: StorageKind,
        c_kind: StorageKind,
        m: int,
        k: int,
        n: int,
        rho_a: float,
        rho_b: float,
        rho_c: float,
    ) -> float:
        """Predicted seconds for one ``C += A x B`` tile product."""
        c = self.coefficients
        volume = float(m) * float(k) * float(n)
        nnz_c = rho_c * m * n

        if a_kind is StorageKind.SPARSE and b_kind is StorageKind.SPARSE:
            flops = volume * rho_a * rho_b
            compute = c.sparse_expand * flops + c.sparse_sort * _nlogn(flops)
            produced = min(flops, float(m) * n)  # triples after compression
        elif a_kind is StorageKind.SPARSE:  # sparse x dense
            flops = volume * rho_a
            compute = c.spd_flop * flops
            produced = float(m) * n
        elif b_kind is StorageKind.SPARSE:  # dense x sparse
            flops = volume * rho_b
            compute = c.dsp_flop * flops
            produced = float(m) * n
        else:  # dense x dense
            flops = volume
            compute = c.dense_flop * flops
            produced = float(m) * n

        if c_kind is StorageKind.DENSE:
            write = c.dense_write * produced
        else:
            if a_kind is StorageKind.SPARSE and b_kind is StorageKind.SPARSE:
                # Compressed triples append + later global merge.
                write = c.sparse_write * produced + c.sparse_sort * _nlogn(nnz_c)
            else:
                # Dense product block scanned for non-zeros, then merged.
                write = (
                    c.dense_scan * produced
                    + c.sparse_write * nnz_c
                    + c.sparse_sort * _nlogn(nnz_c)
                )
        return c.task_overhead + compute + write

    def conversion_cost(
        self, source: StorageKind, target: StorageKind, m: int, n: int, rho: float
    ) -> float:
        """Predicted seconds for converting an ``m x n`` tile of density
        ``rho`` between representations (0 when kinds match)."""
        if source is target:
            return 0.0
        c = self.coefficients
        cells = float(m) * n
        nnz = rho * cells
        if target is StorageKind.DENSE:
            # Allocate/zero the array, scatter the non-zeros.
            return c.dense_write * cells + c.convert_element * nnz
        # Dense -> sparse: scan all cells, build CSR from the non-zeros.
        return c.dense_scan * cells + c.convert_element * nnz + c.sparse_sort * _nlogn(nnz)

    # -- threshold derivation ------------------------------------------------
    def solve_read_turnaround(
        self, m: int, k: int, n: int, rho_b: float, rho_c: float, *, steps: int = 256
    ) -> float:
        """Density of A at which a dense A starts to beat a sparse A.

        Numerically locates the cost-crossover of ``spspsp`` vs ``dspsp``
        (holding B sparse and the target fixed) — the paper's "density
        turnaround point" that ``rho0_R`` approximates.
        """
        c_kind = StorageKind.SPARSE
        for i in range(1, steps + 1):
            rho = i / steps
            sparse_cost = self.product_cost(
                StorageKind.SPARSE, StorageKind.SPARSE, c_kind, m, k, n, rho, rho_b, rho_c
            )
            dense_cost = self.product_cost(
                StorageKind.DENSE, StorageKind.SPARSE, c_kind, m, k, n, rho, rho_b, rho_c
            )
            if dense_cost <= sparse_cost:
                return rho
        return 1.0

    def solve_write_turnaround(
        self, m: int, k: int, n: int, rho_a: float, rho_b: float, *, steps: int = 4096
    ) -> float:
        """Result density at which a dense target starts to beat sparse.

        Locates the crossover of ``spspd`` vs ``spspsp`` in the result
        density — the basis of the paper's much lower ``rho0_W``.
        """
        for i in range(1, steps + 1):
            rho_c = i / steps
            sparse_cost = self.product_cost(
                StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.SPARSE,
                m, k, n, rho_a, rho_b, rho_c,
            )
            dense_cost = self.product_cost(
                StorageKind.SPARSE, StorageKind.SPARSE, StorageKind.DENSE,
                m, k, n, rho_a, rho_b, rho_c,
            )
            if dense_cost <= sparse_cost:
                return rho_c
        return 1.0

    def cheapest_input_kinds(
        self,
        a_kind: StorageKind,
        b_kind: StorageKind,
        c_kind: StorageKind,
        m: int,
        k: int,
        n: int,
        rho_a: float,
        rho_b: float,
        rho_c: float,
        *,
        convertible_a: bool = True,
        convertible_b: bool = True,
    ) -> tuple[StorageKind, StorageKind, float]:
        """Input-kind pair minimizing product + conversion cost.

        This is the decision of the dynamic optimizer (paper Alg. 2 line
        9): conversions of A/B are charged their one-off cost.
        """
        candidates_a = list(StorageKind) if convertible_a else [a_kind]
        candidates_b = list(StorageKind) if convertible_b else [b_kind]
        best: tuple[StorageKind, StorageKind, float] | None = None
        for ka in candidates_a:
            for kb in candidates_b:
                cost = self.product_cost(ka, kb, c_kind, m, k, n, rho_a, rho_b, rho_c)
                cost += self.conversion_cost(a_kind, ka, m, k, rho_a)
                cost += self.conversion_cost(b_kind, kb, k, n, rho_b)
                if best is None or cost < best[2]:
                    best = (ka, kb, cost)
        assert best is not None
        return best
