"""The eightfold multiplication cost model and its calibration.

Paper section III-C: every kernel has a cost function over the operand
dimensions ``m x k`` / ``k x n`` and densities ``rho_A``, ``rho_B`` and
the *estimated* result density ``rho_C``.  The dynamic optimizer consults
these functions — plus representation-conversion costs — to pick the
cheapest kernel per tile product.
"""

from .model import CostCoefficients, CostModel, DEFAULT_COEFFICIENTS
from .calibrate import calibrate, refine_from_observation

__all__ = [
    "CostCoefficients",
    "CostModel",
    "DEFAULT_COEFFICIENTS",
    "calibrate",
    "refine_from_observation",
]
