"""Micro-benchmark calibration of the cost-model coefficients.

The cost model's coefficients are "seconds per unit work" constants that
depend on the host machine.  :func:`calibrate` times small, targeted
workloads for each work term and fits the coefficients, replacing the
shipped :data:`~repro.cost.model.DEFAULT_COEFFICIENTS` where measurements
are available.  Calibration is optional — relative kernel rankings are
robust against moderate coefficient error — but sharpens the turnaround
thresholds on unusual machines.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observe import Observation

import numpy as np

from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kernels import gemm
from .model import CostCoefficients, DEFAULT_COEFFICIENTS


def _random_csr(rng: np.random.Generator, rows: int, cols: int, density: float) -> CSRMatrix:
    nnz = max(1, int(rows * cols * density))
    flat = rng.choice(rows * cols, size=nnz, replace=False)
    return CSRMatrix.from_arrays_unsorted(
        rows, cols, flat // cols, flat % cols, rng.random(nnz)
    )


def _time(fn: Callable[[], object], *, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate(
    *, size: int = 256, density: float = 0.05, seed: int = 0, repeats: int = 3
) -> CostCoefficients:
    """Fit machine coefficients from kernel micro-benchmarks.

    Times one representative workload per kernel family on ``size x size``
    tiles and solves each coefficient from its dominant work term.  The
    result should be passed into :class:`~repro.cost.model.CostModel`.
    """
    rng = np.random.default_rng(seed)
    a_sp = _random_csr(rng, size, size, density)
    b_sp = _random_csr(rng, size, size, density)
    a_d = DenseMatrix(rng.random((size, size)), copy=False)
    b_d = DenseMatrix(rng.random((size, size)), copy=False)
    volume = float(size) ** 3

    # dense x dense -> dense: pure BLAS flops.
    t_ddd = _time(lambda: gemm.ddd_gemm(a_d, b_d), repeats=repeats)
    dense_flop = t_ddd / volume

    # sparse x dense -> dense: flops = nnz(A) * n.
    t_spdd = _time(lambda: gemm.spdd_gemm(a_sp, b_d), repeats=repeats)
    spd_flop = t_spdd / max(1.0, a_sp.nnz * float(size))

    # dense x sparse -> dense: flops = m * nnz(B).
    t_dspd = _time(lambda: gemm.dspd_gemm(a_d, b_sp), repeats=repeats)
    dsp_flop = t_dspd / max(1.0, float(size) * b_sp.nnz)

    # sparse x sparse -> sparse: expansion + sort dominate.
    expansion = volume * a_sp.density * b_sp.density
    t_spspsp = _time(lambda: gemm.spspsp_gemm(a_sp, b_sp), repeats=repeats)
    # Split measured time between expand and sort terms at the default ratio.
    base = DEFAULT_COEFFICIENTS
    default_total = base.sparse_expand * expansion + base.sparse_sort * expansion * max(
        1.0, math.log2(max(2.0, expansion))
    )
    scale = t_spspsp / default_total if default_total > 0 else 1.0
    sparse_expand = base.sparse_expand * scale
    sparse_sort = base.sparse_sort * scale

    # dense write throughput: accumulate a block into an array.
    block = rng.random((size, size))
    target = np.zeros_like(block)

    def _dense_write() -> None:
        target2 = target
        target2 += block

    t_write = _time(_dense_write, repeats=repeats)
    dense_write = t_write / block.size

    # dense scan throughput: non-zero extraction.
    t_scan = _time(lambda: np.nonzero(block), repeats=repeats)
    dense_scan = t_scan / block.size

    # sparse write: triple merge into CSR.
    rows_c, cols_c, vals_c = (
        rng.integers(0, size, size * size // 4),
        rng.integers(0, size, size * size // 4),
        rng.random(size * size // 4),
    )
    t_merge = _time(
        lambda: CSRMatrix.from_arrays_unsorted(size, size, rows_c, cols_c, vals_c),
        repeats=repeats,
    )
    sparse_write = t_merge / len(vals_c)

    # conversion throughput: CSR -> dense.
    t_conv = _time(a_sp.to_dense, repeats=repeats)
    convert_element = t_conv / max(1, a_sp.nnz)

    return replace(
        DEFAULT_COEFFICIENTS,
        dense_flop=dense_flop,
        spd_flop=spd_flop,
        dsp_flop=dsp_flop,
        sparse_expand=sparse_expand,
        sparse_sort=sparse_sort,
        dense_write=dense_write,
        dense_scan=dense_scan,
        sparse_write=sparse_write,
        convert_element=convert_element,
    )


#: Kernel-name prefix -> the coefficient(s) dominating that kernel family.
#: Kernel names are ``{a}{b}{c}_gemm`` with storage codes ``sp``/``d``,
#: so the A/B prefix identifies the compute term of the cost model.
_KERNEL_COEFFICIENTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("spsp", ("sparse_expand", "sparse_sort")),
    ("spd", ("spd_flop",)),
    ("dsp", ("dsp_flop",)),
    ("dd", ("dense_flop",)),
)


def refine_from_observation(
    observation: Observation,
    coefficients: CostCoefficients | None = None,
    *,
    min_samples: int = 8,
    max_scale: float = 16.0,
) -> CostCoefficients:
    """Refine cost coefficients from a run's measured-vs-predicted costs.

    Closes the loop between the cost-accuracy tracker and the model: for
    every kernel family with at least ``min_samples`` recorded tile
    products, the family's dominant compute coefficient is multiplied by
    the geometric-mean measured/predicted ratio, so the next run's
    predictions center on the observed timings.  Scale corrections are
    clamped to ``[1/max_scale, max_scale]`` — a wildly skewed ratio
    means noise (tiny tiles, timer resolution), not a miscalibrated
    machine constant.

    ``observation`` is a :class:`~repro.observe.Observation` (only its
    ``cost_accuracy`` tracker is consulted).
    """
    base = coefficients or DEFAULT_COEFFICIENTS
    ratios = observation.cost_accuracy.ratio_by_kernel()
    counts = {
        kernel: accuracy.count
        for kernel, accuracy in observation.cost_accuracy.summary().items()
    }
    updates: dict[str, float] = {}
    for kernel, ratio in ratios.items():
        if counts.get(kernel, 0) < min_samples or not math.isfinite(ratio):
            continue
        scale = min(max_scale, max(1.0 / max_scale, ratio))
        for prefix, names in _KERNEL_COEFFICIENTS:
            if kernel.startswith(prefix):
                for name in names:
                    # Average scales when several kernels share a term
                    # (e.g. spspd and spspsp both refine the sparse pair).
                    previous = updates.get(name)
                    updates[name] = (
                        scale if previous is None else (previous + scale) / 2.0
                    )
                break
    if not updates:
        return base
    return replace(
        base,
        **{name: getattr(base, name) * scale for name, scale in updates.items()},
    )


def describe(coefficients: CostCoefficients) -> str:
    """Human-readable one-line-per-coefficient dump."""
    lines = [
        f"  {name:>16}: {value:.3e} s/unit"
        for name, value in vars(coefficients).items()
    ]
    return "\n".join(["CostCoefficients:"] + lines)


__all__ = ["calibrate", "describe", "refine_from_observation"]
