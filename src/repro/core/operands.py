"""Operand coercion helpers shared by the execution engine and ATMULT.

ATMULT accepts "plain matrix structures such as dense arrays or sparse
CSR matrices" next to AT Matrices; these helpers provide the uniform
view the engine plans against.  They live in their own module (rather
than :mod:`repro.core.atmult`) so :mod:`repro.engine` can import them
without a circular dependency on the operator front-ends.

Observability: every wrap of a plain operand bumps the
``operand.wraps.sparse`` / ``operand.wraps.dense`` counters of the active
session — the solver-hoisting regression tests count these to prove the
wrappers are built once per solve, not once per iteration.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..density.estimate import coarsen
from ..density.map import DensityMap
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind
from ..observe import session as observe_session
from .atmatrix import ATMatrix, tile_density_map
from .tile import Tile

MatrixOperand = ATMatrix | CSRMatrix | DenseMatrix


def as_at_matrix(operand: MatrixOperand, config: SystemConfig) -> ATMatrix:
    """View a plain operand as a single-tile AT Matrix (zero partitioning).

    This is how ATMULT supports "plain matrix structures such as dense
    arrays or sparse CSR matrices" as independent operand types.
    """
    if isinstance(operand, ATMatrix):
        return operand
    kind = StorageKind.SPARSE if isinstance(operand, CSRMatrix) else StorageKind.DENSE
    observe_session.counter(f"operand.wraps.{kind.value}").inc()
    tile = Tile(0, 0, operand.rows, operand.cols, kind, operand)
    return ATMatrix(operand.rows, operand.cols, config, [tile])


def operand_density_map(
    operand: MatrixOperand, config: SystemConfig, *, structural: bool = False
) -> DensityMap:
    """Block-density map of any operand type at ``config.b_atomic``.

    An AT Matrix partitioned under a *different* granularity has its
    cached map brought to the requested block size: coarsened when the
    requested size is a multiple of the matrix's own, recomputed from the
    tile content otherwise.

    ``structural=True`` requests the view the planner consumes — dense
    payloads contribute their fingerprinted (two-decimal quantized)
    density uniformly over their extent, so the plan stays a pure
    function of its cache key (a CSR pattern is fingerprinted exactly,
    so the sparse path is unchanged).
    """
    block = config.b_atomic
    assert block is not None
    if isinstance(operand, ATMatrix):
        own = operand.density_map(structural=structural)
        if own.block == block:
            return own
        if block % own.block == 0:
            return coarsen(own, block // own.block)
        return tile_density_map(
            operand.tiles, operand.rows, operand.cols, block,
            structural=structural,
        )
    if isinstance(operand, CSRMatrix):
        coo_rows = _csr_row_ids(operand)
        return DensityMap.from_coordinates(
            operand.rows, operand.cols, coo_rows, operand.indices, block
        )
    if structural:
        grid_shape = (-(-operand.rows // block), -(-operand.cols // block))
        return DensityMap(
            operand.rows,
            operand.cols,
            block,
            np.full(grid_shape, round(operand.density, 2)),
        )
    return DensityMap.from_dense(operand.array, block)


def _csr_row_ids(matrix: CSRMatrix) -> np.ndarray:
    return np.repeat(np.arange(matrix.rows, dtype=np.int64), matrix.row_nnz())
