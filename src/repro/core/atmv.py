"""ATMV: matrix-vector multiplication over AT Matrices.

The tile-granular analogue of ATMULT for the vector case: every tile
contributes ``y[tile rows] += tile @ x[tile cols]`` through its
representation's best kernel (CSR row kernel or BLAS gemv).  Because a
vector operand has no representation choice, there is no optimizer pass;
the win comes purely from the heterogeneous tile storage — dense regions
hit the dense gemv path.

Also provides :func:`power_iteration`, the iterative-workload driver the
examples and benches use (dominant eigenvector, PageRank-style loops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.csr import CSRMatrix
from ..kernels.spmv import csr_spmv, dense_spmv
from .atmatrix import ATMatrix


def atmv(matrix: ATMatrix, vector: np.ndarray) -> np.ndarray:
    """``y = A @ x`` over the adaptive tiles."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != matrix.cols:
        raise ShapeError(f"vector length {len(vector)} != cols {matrix.cols}")
    out = np.zeros(matrix.rows, dtype=np.float64)
    for tile in matrix.tiles:
        segment = vector[tile.col0 : tile.col1]
        if isinstance(tile.data, CSRMatrix):
            out[tile.row0 : tile.row1] += csr_spmv(tile.data, segment)
        else:
            out[tile.row0 : tile.row1] += dense_spmv(tile.data, segment)
    return out


def atmv_transposed(matrix: ATMatrix, vector: np.ndarray) -> np.ndarray:
    """``y = A.T @ x`` without materializing the transpose.

    Each tile contributes ``y[tile cols] += tile.T @ x[tile rows]``;
    for CSR tiles this is the column-scatter form of the row kernel.
    """
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if len(vector) != matrix.rows:
        raise ShapeError(f"vector length {len(vector)} != rows {matrix.rows}")
    out = np.zeros(matrix.cols, dtype=np.float64)
    for tile in matrix.tiles:
        segment = vector[tile.row0 : tile.row1]
        if isinstance(tile.data, CSRMatrix):
            data = tile.data
            if data.nnz:
                weights = np.repeat(segment, data.row_nnz()) * data.values
                out[tile.col0 : tile.col1] += np.bincount(
                    data.indices, weights=weights, minlength=data.cols
                )
        else:
            out[tile.col0 : tile.col1] += tile.data.array.T @ segment
    return out


@dataclass(frozen=True)
class PowerIterationResult:
    """Outcome of :func:`power_iteration`."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool


def power_iteration(
    matrix: ATMatrix,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
    seed: int = 0,
) -> PowerIterationResult:
    """Dominant eigenpair of a square AT Matrix by power iteration.

    Every step is one :func:`atmv`; convergence is measured by the
    change of the Rayleigh quotient.
    """
    if matrix.rows != matrix.cols:
        raise ShapeError(f"power iteration needs a square matrix, got {matrix.shape}")
    rng = np.random.default_rng(seed)
    vector = rng.random(matrix.rows)
    vector /= np.linalg.norm(vector)
    eigenvalue = 0.0
    for iteration in range(1, max_iterations + 1):
        product = atmv(matrix, vector)
        norm = np.linalg.norm(product)
        if norm == 0.0:
            return PowerIterationResult(0.0, vector, iteration, True)
        vector = product / norm
        rayleigh = float(vector @ atmv(matrix, vector))
        if abs(rayleigh - eigenvalue) <= tolerance * max(1.0, abs(rayleigh)):
            return PowerIterationResult(rayleigh, vector, iteration, True)
        eigenvalue = rayleigh
    return PowerIterationResult(eigenvalue, vector, max_iterations, False)
