"""ATMULT: the tile-granular, cost-optimized multiplication operator.

Implements paper Algorithm 2 for ``C' = C + A x B`` where each operand is
independently a plain matrix (dense array or CSR) or an AT Matrix:

1. estimate the result's block-density map by probability propagation;
2. derive the effective write density threshold from the static
   ``rho0_W`` and the water-level method under the memory limit;
3. iterate tile-row/tile-column pairs; allocate each target tile dense or
   sparse according to its estimated final density;
4. for every matching inner tile pair, compute the reference windows and
   let the dynamic optimizer pick (and JIT-convert to) the cheapest input
   representations before dispatching the kernel.

Since the engine redesign, steps 1-3 plus the per-product kernel
decisions are the *planning* half (:func:`repro.engine.plan.build_plan`)
and the kernel dispatch is the *execution* half
(:func:`repro.engine.executor.execute_plan`); this module is the
operator front-end gluing them together.  Pass
``options=MultiplyOptions(plan_cache=PlanCache())`` (or drive the call
through a :class:`repro.Session`) and repeated multiplications over the
same operand topology skip estimation, partitioning and optimization
entirely.

Note on the threshold combination: Alg. 2 line 3 of the paper prints
``min{rho0_W, waterlevel(...)}``; since lowering the threshold *increases*
memory for sub-half densities, honoring the memory SLA requires the
*stricter* (larger) of the two thresholds, so this implementation combines
them with ``max``.  With an unbounded memory limit the water level drops
to 0 and the static ``rho0_W`` decides alone, which reproduces the
paper's described behavior in both regimes.

Observability: pass ``observer=MultiplyOptions(observer=...)`` (or run
inside ``repro.observe()``) to record estimate/water-level/pair/optimize/
kernel spans, the metric catalogue of docs/OBSERVABILITY.md, and
per-product predicted-vs-measured cost samples.  With no active session
every hook is a strict no-op.
"""

from __future__ import annotations

import logging
from typing import Any

from .. import _deprecations
from ..config import SystemConfig
from ..cost.model import CostModel
from ..engine.api import resolve_plan
from ..engine.cache import PlanCache
from ..engine.executor import _payload_kind, _seed_accumulator, execute_plan
from ..engine.options import UNSET, MultiplyOptions, coerce_options
from ..engine.plan import ExecutionPlan
from ..errors import ShapeError
from ..formats.dense import DenseMatrix
from ..observe import Observation
from ..observe import session as observe_session
from ..resilience.retry import RetryPolicy
from .atmatrix import ATMatrix
from .operands import MatrixOperand, _csr_row_ids, as_at_matrix, operand_density_map
from .report import MultiplyReport

# Pre-engine call sites imported these from here; their homes are now
# repro.core.operands and repro.engine.executor.
__all__ = [
    "MatrixOperand",
    "as_at_matrix",
    "atmult",
    "enforce_memory_limit",
    "multiply",
    "operand_density_map",
    "_csr_row_ids",
    "_payload_kind",
    "_seed_accumulator",
]

logger = logging.getLogger("repro.atmult")


def atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    c: MatrixOperand | None = None,
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    plan_cache: PlanCache | None = None,
    memory_limit_bytes: float | None = UNSET,
    dynamic_conversion: bool = UNSET,
    use_estimation: bool = UNSET,
    resilience: RetryPolicy | None = UNSET,
    observer: Observation | None = UNSET,
) -> tuple[ATMatrix, MultiplyReport]:
    """Multiply ``C' = C + A x B`` with tile-granular optimization.

    Parameters
    ----------
    a, b, c:
        Operands; each may be an :class:`ATMatrix`, :class:`CSRMatrix`
        or :class:`DenseMatrix`.  ``c`` is an optional matrix added into
        the result.
    options:
        A :class:`~repro.engine.options.MultiplyOptions` consolidating
        the execution knobs (memory limit, ablation flags, resilience,
        observer, plan cache).  This is the preferred way to configure
        the call.
    config:
        System configuration; defaults to the library default.
    cost_model:
        Cost oracle for the optimizer; a default model is created if
        omitted.
    plan_cache:
        A :class:`~repro.engine.cache.PlanCache`; when set (here or in
        ``options``), planning is skipped whenever a cached plan matches
        the operand topologies and configuration.
    memory_limit_bytes, dynamic_conversion, use_estimation, resilience, observer:
        **Deprecated** — the legacy keyword set, still honored (one
        consolidated :class:`DeprecationWarning` per call).  Pass the
        same fields on ``options`` instead; explicitly supplied legacy
        values override the corresponding ``options`` fields.

    Returns
    -------
    (result, report):
        The product as an :class:`ATMatrix` plus the phase report.
    """
    opts = coerce_options(
        options,
        where="atmult",
        config=config,
        cost_model=cost_model,
        plan_cache=plan_cache,
        memory_limit_bytes=memory_limit_bytes,
        dynamic_conversion=dynamic_conversion,
        use_estimation=use_estimation,
        resilience=resilience,
        observer=observer,
    )
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if c is not None and c.shape != (a.rows, b.cols):
        raise ShapeError(f"C shape {c.shape} != result shape {(a.rows, b.cols)}")
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()
    with observe_session.resolve(opts.observer) as obs:
        at_a = as_at_matrix(a, resolved_config)
        at_b = as_at_matrix(b, resolved_config)
        at_c = as_at_matrix(c, resolved_config) if c is not None else None
        plan, fresh = resolve_plan(
            at_a,
            at_b,
            config=resolved_config,
            cost_model=resolved_model,
            options=opts,
            obs=obs,
        )
        result, report = execute_plan(
            plan,
            at_a,
            at_b,
            at_c,
            config=resolved_config,
            cost_model=resolved_model,
            resilience=opts.resilience,
            obs=obs,
            check_fingerprints=False,  # resolve_plan keyed/built on these operands
            checkpoint=opts.checkpoint,
            checkpoint_flush_pairs=opts.checkpoint_flush_pairs,
            cancel=opts.cancel,
        )
        assert isinstance(report, MultiplyReport)
        if fresh:
            _fold_plan_phases(report, plan)
    logger.debug(
        "atmult %sx%s @ %sx%s -> nnz=%d in %.3fs "
        "(estimate %.1f%%, optimize %.1f%%, %d conversions, kernels %s, "
        "plan %s)",
        a.rows, a.cols, b.rows, b.cols, result.nnz, report.total_seconds,
        100 * report.estimate_fraction, 100 * report.optimize_fraction,
        report.conversions, dict(report.kernel_counts),
        "fresh" if fresh else "cached",
    )
    return result, report


def _fold_plan_phases(report: MultiplyReport, plan: ExecutionPlan) -> None:
    """Attribute a freshly built plan's phase durations to this report.

    Cached replays skip this — their reports show (near) zero estimate
    and decision time, which is the whole point of plan reuse.
    """
    if plan.use_estimation:
        report.add_phase("estimate", plan.estimate_seconds)
    report.add_phase("optimize", plan.optimize_seconds)


def enforce_memory_limit(result: ATMatrix, memory_limit_bytes: float) -> int:
    """Demote dense result tiles to CSR until the matrix fits the limit.

    The water-level threshold acts on *estimated* densities, so the
    materialized result can overshoot the SLA by the estimation error.
    This repair pass converts dense tiles to sparse in ascending density
    order (each such conversion shrinks a tile with density < S_d/S_sp)
    until the limit holds.  Returns the number of demoted tiles; raises
    :class:`MemoryLimitError` when even the all-sparse layout does not
    fit.
    """
    from ..errors import MemoryLimitError
    from ..formats.convert import dense_to_csr

    total = result.memory_bytes()
    if total <= memory_limit_bytes:
        return 0
    demotable = sorted(
        (
            tile
            for tile in result.tiles
            if isinstance(tile.data, DenseMatrix)
        ),
        key=lambda tile: tile.density,
    )
    demoted = 0
    for tile in demotable:
        if total <= memory_limit_bytes:
            break
        sparse_payload = dense_to_csr(tile.data)
        if sparse_payload.memory_bytes() >= tile.memory_bytes():
            continue  # denser than S_d/S_sp: demotion would not shrink it
        total += sparse_payload.memory_bytes() - tile.memory_bytes()
        result.replace_tile(tile, tile.with_payload(sparse_payload))
        demoted += 1
    if total > memory_limit_bytes:
        raise MemoryLimitError(
            f"result needs {total:.0f} B even all-sparse; limit is "
            f"{memory_limit_bytes:.0f} B"
        )
    return demoted


def multiply(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    return_report: bool = True,
    **kwargs: Any,
) -> tuple[ATMatrix, MultiplyReport] | ATMatrix:
    """Convenience wrapper around :func:`atmult`.

    Returns ``(result, report)`` like every other multiply entry point.
    ``return_report=False`` restores the pre-redesign result-only shape
    and is **deprecated**.

    Accepts the full :func:`atmult` keyword set (``options``, ``config``,
    ``cost_model``, ``plan_cache`` plus the deprecated legacy knobs).
    """
    result, report = atmult(a, b, **kwargs)
    if not return_report:
        _deprecations.warn_once(
            "multiply:return_report",
            "multiply(return_report=False) is deprecated; the default now "
            "returns (result, report) like atmult",
        )
        return result
    return result, report
