"""ATMULT: the tile-granular, cost-optimized multiplication operator.

Implements paper Algorithm 2 for ``C' = C + A x B`` where each operand is
independently a plain matrix (dense array or CSR) or an AT Matrix:

1. estimate the result's block-density map by probability propagation;
2. derive the effective write density threshold from the static
   ``rho0_W`` and the water-level method under the memory limit;
3. iterate tile-row/tile-column pairs; allocate each target tile dense or
   sparse according to its estimated final density;
4. for every matching inner tile pair, compute the reference windows and
   let the dynamic optimizer pick (and JIT-convert to) the cheapest input
   representations before dispatching the kernel.

Note on the threshold combination: Alg. 2 line 3 of the paper prints
``min{rho0_W, waterlevel(...)}``; since lowering the threshold *increases*
memory for sub-half densities, honoring the memory SLA requires the
*stricter* (larger) of the two thresholds, so this implementation combines
them with ``max``.  With an unbounded memory limit the water level drops
to 0 and the static ``rho0_W`` decides alone, which reproduces the
paper's described behavior in both regimes.

Observability: pass ``observer=`` (or run inside ``repro.observe()``) to
record estimate/water-level/pair/optimize/kernel spans, the metric
catalogue of docs/OBSERVABILITY.md, and per-product predicted-vs-measured
cost samples.  With no active session every hook is a strict no-op.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from ..config import DEFAULT_CONFIG, SystemConfig
from ..cost.model import CostModel
from ..density.estimate import coarsen, estimate_product_density
from ..density.map import DensityMap
from ..density.water_level import water_level_threshold
from ..errors import MemoryLimitError, ShapeError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kernels.accumulator import DenseAccumulator, make_accumulator
from ..kernels.registry import run_tile_product
from ..kernels.window import Window
from ..kinds import StorageKind, kernel_name
from ..observe import Observation
from ..observe import session as observe_session
from ..resilience.degrade import DegradationState
from ..resilience.faults import fire_hooks, task_scope
from ..resilience.guard import reference_tile_product, validate_tile
from ..resilience.retry import ResilientPairRunner, RetryPolicy
from ..topology.trace import TaskRecord
from .atmatrix import ATMatrix
from .optimizer import DynamicOptimizer
from .report import MultiplyReport
from .tile import Tile

logger = logging.getLogger("repro.atmult")

MatrixOperand = ATMatrix | CSRMatrix | DenseMatrix

_span = observe_session.tracer_span


@dataclass
class _PairStats:
    """Per-attempt bookkeeping, merged into the report only on success."""

    optimize_seconds: float = 0.0
    multiply_seconds: float = 0.0
    kernel_counts: dict[str, int] = field(default_factory=dict)
    tasks: list[TaskRecord] = field(default_factory=list)


class _SeqPairResult(NamedTuple):
    tile: Tile | None
    stats: _PairStats


def as_at_matrix(operand: MatrixOperand, config: SystemConfig) -> ATMatrix:
    """View a plain operand as a single-tile AT Matrix (zero partitioning).

    This is how ATMULT supports "plain matrix structures such as dense
    arrays or sparse CSR matrices" as independent operand types.
    """
    if isinstance(operand, ATMatrix):
        return operand
    kind = StorageKind.SPARSE if isinstance(operand, CSRMatrix) else StorageKind.DENSE
    tile = Tile(0, 0, operand.rows, operand.cols, kind, operand)
    return ATMatrix(operand.rows, operand.cols, config, [tile])


def operand_density_map(operand: MatrixOperand, config: SystemConfig) -> DensityMap:
    """Block-density map of any operand type at ``config.b_atomic``.

    An AT Matrix partitioned under a *different* granularity has its
    cached map brought to the requested block size: coarsened when the
    requested size is a multiple of the matrix's own, recomputed from the
    flattened content otherwise.
    """
    block = config.b_atomic
    assert block is not None
    if isinstance(operand, ATMatrix):
        own = operand.density_map()
        if own.block == block:
            return own
        if block % own.block == 0:
            return coarsen(own, block // own.block)
        coo = operand.to_coo()
        return DensityMap.from_coordinates(
            operand.rows, operand.cols, coo.row_ids, coo.col_ids, block
        )
    if isinstance(operand, CSRMatrix):
        coo_rows = _csr_row_ids(operand)
        return DensityMap.from_coordinates(
            operand.rows, operand.cols, coo_rows, operand.indices, block
        )
    return DensityMap.from_dense(operand.array, block)


def _csr_row_ids(matrix: CSRMatrix) -> np.ndarray:
    return np.repeat(np.arange(matrix.rows, dtype=np.int64), matrix.row_nnz())


def atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    c: MatrixOperand | None = None,
    *,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    memory_limit_bytes: float | None = None,
    dynamic_conversion: bool = True,
    use_estimation: bool = True,
    resilience: RetryPolicy | None = None,
    observer: Observation | None = None,
) -> tuple[ATMatrix, MultiplyReport]:
    """Multiply ``C' = C + A x B`` with tile-granular optimization.

    Parameters
    ----------
    a, b, c:
        Operands; each may be an :class:`ATMatrix`, :class:`CSRMatrix`
        or :class:`DenseMatrix`.  ``c`` is an optional matrix added into
        the result.
    config:
        System configuration; defaults to the library default.
    cost_model:
        Cost oracle for the optimizer; a default model is created if
        omitted.
    memory_limit_bytes:
        Memory SLA for the output matrix, enforced through the
        water-level method.  ``None`` disables the limit.
    dynamic_conversion:
        Enable the just-in-time input conversions (ablation step 6).
    use_estimation:
        Enable density estimation and dense target tiles (ablation
        step 3+); when off, all target tiles are sparse.
    resilience:
        A :class:`~repro.resilience.RetryPolicy` enabling bounded
        per-pair retries, result validation with reference-kernel
        fallback, and graceful degradation under memory pressure.
        ``None`` keeps the fail-fast behavior.  Exhausted pairs raise
        :class:`~repro.errors.RetryExhaustedError`; outcomes land in
        ``report.failure``.
    observer:
        An :class:`~repro.observe.Observation` to record spans, metrics
        and cost-accuracy samples into; it is activated as the ambient
        session for the duration of the call.  ``None`` records into
        the already-active session, if any.

    Returns
    -------
    (result, report):
        The product as an :class:`ATMatrix` plus the phase report.
    """
    config = config or DEFAULT_CONFIG
    cost_model = cost_model or CostModel()
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if c is not None and c.shape != (a.rows, b.cols):
        raise ShapeError(f"C shape {c.shape} != result shape {(a.rows, b.cols)}")
    with observe_session.resolve(observer) as obs:
        return _atmult(
            a,
            b,
            c,
            config=config,
            cost_model=cost_model,
            memory_limit_bytes=memory_limit_bytes,
            dynamic_conversion=dynamic_conversion,
            use_estimation=use_estimation,
            resilience=resilience,
            obs=obs,
        )


def _atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    c: MatrixOperand | None,
    *,
    config: SystemConfig,
    cost_model: CostModel,
    memory_limit_bytes: float | None,
    dynamic_conversion: bool,
    use_estimation: bool,
    resilience: RetryPolicy | None,
    obs: Observation | None,
) -> tuple[ATMatrix, MultiplyReport]:
    report = MultiplyReport(observation=obs)

    at_a = as_at_matrix(a, config)
    at_b = as_at_matrix(b, config)
    at_c = as_at_matrix(c, config) if c is not None else None

    # -- phase 1: density estimation (Alg. 2 line 2) ----------------------
    estimate: DensityMap | None = None
    if use_estimation:
        start = time.perf_counter()
        with _span(obs, "estimate"):
            map_a = operand_density_map(at_a, config)
            map_b = operand_density_map(at_b, config)
            estimate = estimate_product_density(map_a, map_b)
        report.estimate_seconds = time.perf_counter() - start

    # -- phase 2: write threshold via the water level (line 3) --------------
    start = time.perf_counter()
    with _span(obs, "water_level"):
        if estimate is not None:
            level = water_level_threshold(estimate, memory_limit_bytes, config)
            report.water_level = level
            write_threshold = max(cost_model.write_threshold, level.threshold)
        else:
            write_threshold = float("inf")  # no estimation: sparse targets only
    report.write_threshold = write_threshold
    optimizer = DynamicOptimizer(cost_model, enabled=dynamic_conversion)
    report.optimize_seconds += time.perf_counter() - start
    if obs is not None:
        obs.metrics.gauge("water_level.threshold").set(
            write_threshold if np.isfinite(write_threshold) else -1.0
        )
        if memory_limit_bytes is not None:
            obs.metrics.gauge("memory.limit_bytes").set(memory_limit_bytes)

    # -- phase 3: tile loop (lines 4-10) ---------------------------------------
    row_cuts = at_a.row_cuts()
    col_cuts = at_b.col_cuts()
    degradation = (
        DegradationState(estimate, memory_limit_bytes, config, write_threshold)
        if resilience is not None
        else None
    )
    runner = (
        ResilientPairRunner(resilience, report.failure, degradation)
        if resilience is not None
        else None
    )

    def compute_pair(
        ti: int, tj: int, force_sparse: bool, use_reference: bool = False
    ) -> _SeqPairResult:
        """One full pair computation (one attempt), stats kept local so a
        retried attempt cannot double-count into the report."""
        stats = _PairStats()
        attrs = (
            {"ti": ti, "tj": tj, "force_sparse": force_sparse}
            if obs is not None
            else None
        )
        with _span(obs, "pair", "pair", attrs):
            fire_hooks("pair", (ti, tj))
            r0, r1 = row_cuts[ti], row_cuts[ti + 1]
            c0, c1 = col_cuts[tj], col_cuts[tj + 1]
            a_strip = at_a.tiles_overlapping(r0, r1, 0, at_a.cols)
            team_node = a_strip[0].numa_node if a_strip else 0
            b_strip = at_b.tiles_overlapping(0, at_b.rows, c0, c1)

            rho_c = (
                estimate.region_density(r0, r1, c0, c1)
                if estimate is not None
                else 0.0
            )
            threshold = (
                degradation.threshold if degradation is not None else write_threshold
            )
            c_kind = (
                StorageKind.SPARSE
                if force_sparse or rho_c < threshold
                else StorageKind.DENSE
            )
            accumulator = make_accumulator(c_kind, r1 - r0, c1 - c0)

            if at_c is not None:
                _seed_accumulator(accumulator, at_c, r0, r1, c0, c1)

            wrote_any = accumulator.writes > 0
            for a_tile in a_strip:
                for b_tile in b_strip:
                    k0 = max(a_tile.col0, b_tile.row0)
                    k1 = min(a_tile.col1, b_tile.row1)
                    if k0 >= k1:
                        continue
                    wa = Window(
                        max(r0, a_tile.row0) - a_tile.row0,
                        min(r1, a_tile.row1) - a_tile.row0,
                        k0 - a_tile.col0,
                        k1 - a_tile.col0,
                    )
                    wb = Window(
                        k0 - b_tile.row0,
                        k1 - b_tile.row0,
                        max(c0, b_tile.col0) - b_tile.col0,
                        min(c1, b_tile.col1) - b_tile.col0,
                    )
                    target_row = max(r0, a_tile.row0) - r0
                    target_col = max(c0, b_tile.col0) - c0
                    start = time.perf_counter()
                    if use_reference:
                        payload_a, payload_b = a_tile.data, b_tile.data
                        opt_elapsed = time.perf_counter() - start
                        start = time.perf_counter()
                        reference_tile_product(
                            payload_a, wa, payload_b, wb, accumulator,
                            target_row, target_col,
                        )
                    else:
                        with _span(obs, "optimize", "optimize"):
                            payload_a, payload_b = optimizer.choose(
                                a_tile, b_tile, c_kind, wa.rows, wa.cols, wb.cols,
                                rho_c,
                            )
                        opt_elapsed = time.perf_counter() - start
                        start = time.perf_counter()
                        run_tile_product(
                            payload_a, wa, payload_b, wb, accumulator,
                            target_row, target_col,
                        )
                    mult_elapsed = time.perf_counter() - start
                    stats.multiply_seconds += mult_elapsed
                    stats.optimize_seconds += opt_elapsed

                    kind_a = _payload_kind(payload_a)
                    kind_b = _payload_kind(payload_b)
                    name = kernel_name(kind_a, kind_b, c_kind)
                    stats.kernel_counts[name] = stats.kernel_counts.get(name, 0) + 1
                    stats.tasks.append(
                        TaskRecord(
                            pair=(ti, tj),
                            team_node=team_node,
                            seconds=opt_elapsed + mult_elapsed,
                            bytes_by_node={
                                a_tile.numa_node: a_tile.memory_bytes(),
                                b_tile.numa_node: b_tile.memory_bytes(),
                            },
                        )
                    )
                    if obs is not None and not use_reference:
                        _record_product(
                            obs, cost_model, name, kind_a, kind_b, c_kind,
                            wa, wb, a_tile, b_tile, rho_c, mult_elapsed,
                        )
                    wrote_any = True

            start = time.perf_counter()
            tile: Tile | None = None
            if wrote_any:
                payload = accumulator.finalize()
                if payload.nnz or isinstance(accumulator, DenseAccumulator):
                    candidate = Tile(
                        r0,
                        c0,
                        r1 - r0,
                        c1 - c0,
                        c_kind,
                        payload,
                        numa_node=team_node,
                    )
                    if candidate.nnz:
                        tile = candidate
            stats.multiply_seconds += time.perf_counter() - start
            if obs is not None:
                obs.metrics.counter("accumulator.writes").inc(accumulator.writes)
                for node, nbytes in (
                    (t.numa_node, t.memory_bytes()) for t in (*a_strip, *b_strip)
                ):
                    obs.metrics.counter(f"numa.bytes.node{node}").inc(nbytes)
            if (
                degradation is not None
                and not force_sparse
                and tile is not None
                and tile.kind is StorageKind.DENSE
                and degradation.over_budget(tile.memory_bytes())
            ):
                raise MemoryLimitError(
                    f"pair {(ti, tj)} dense tile of {tile.memory_bytes()} B "
                    f"would exceed the memory budget"
                )
            return _SeqPairResult(tile, stats)

    def validate_pair(ti: int, tj: int, pair_result: _SeqPairResult) -> None:
        if pair_result.tile is None:
            return
        r0, r1 = row_cuts[ti], row_cuts[ti + 1]
        c0, c1 = col_cuts[tj], col_cuts[tj + 1]
        rho_c = estimate.region_density(r0, r1, c0, c1) if estimate is not None else None
        validate_tile(
            pair_result.tile.data, r1 - r0, c1 - c0, rho_c, pair=(ti, tj)
        )

    result_tiles: list[Tile] = []
    for ti in range(len(row_cuts) - 1):
        for tj in range(len(col_cuts) - 1):
            pair = (ti, tj)
            if runner is None:
                with task_scope(pair, 1):
                    pair_result = compute_pair(ti, tj, False)
            else:
                pair_result = runner.run(
                    pair,
                    lambda force_sparse, ti=ti, tj=tj: compute_pair(
                        ti, tj, force_sparse
                    ),
                    validate=lambda res, ti=ti, tj=tj: validate_pair(ti, tj, res),
                    fallback=lambda force_sparse, ti=ti, tj=tj: compute_pair(
                        ti, tj, force_sparse, use_reference=True
                    ),
                )
            stats = pair_result.stats
            report.optimize_seconds += stats.optimize_seconds
            report.multiply_seconds += stats.multiply_seconds
            report.merge_kernel_counts(stats.kernel_counts)
            report.tasks.extend(stats.tasks)
            if pair_result.tile is not None:
                result_tiles.append(pair_result.tile)
                if degradation is not None:
                    degradation.note_completed(
                        row_cuts[ti], row_cuts[ti + 1],
                        col_cuts[tj], col_cuts[tj + 1],
                        pair_result.tile.memory_bytes(),
                    )

    report.conversions = optimizer.stats.conversions
    result = ATMatrix(a.rows, b.cols, config, result_tiles)
    logger.debug(
        "atmult %sx%s @ %sx%s -> nnz=%d in %.3fs "
        "(estimate %.1f%%, optimize %.1f%%, %d conversions, kernels %s)",
        a.rows, a.cols, b.rows, b.cols, result.nnz, report.total_seconds,
        100 * report.estimate_fraction, 100 * report.optimize_fraction,
        report.conversions, dict(report.kernel_counts),
    )
    if memory_limit_bytes is not None and not np.isinf(memory_limit_bytes):
        start = time.perf_counter()
        with _span(obs, "memory_limit_enforce"):
            enforce_memory_limit(result, memory_limit_bytes)
        report.optimize_seconds += time.perf_counter() - start
    return result, report


def _record_product(
    obs: Observation,
    cost_model: CostModel,
    name: str,
    kind_a: StorageKind,
    kind_b: StorageKind,
    c_kind: StorageKind,
    wa: Window,
    wb: Window,
    a_tile: Tile,
    b_tile: Tile,
    rho_c: float,
    measured_seconds: float,
) -> None:
    """Record one tile product's metrics and cost-accuracy sample."""
    obs.metrics.histogram(f"kernel.seconds.{name}").observe(measured_seconds)
    predicted = cost_model.product_cost(
        kind_a, kind_b, c_kind,
        wa.rows, wa.cols, wb.cols,
        a_tile.density, b_tile.density, rho_c,
    )
    obs.cost_accuracy.record(name, predicted, measured_seconds)


def _payload_kind(payload) -> StorageKind:
    return StorageKind.SPARSE if isinstance(payload, CSRMatrix) else StorageKind.DENSE


def _seed_accumulator(accumulator, at_c: ATMatrix, r0, r1, c0, c1) -> None:
    """Add the prior C content of a region into a fresh accumulator."""
    for tile in at_c.tiles_overlapping(r0, r1, c0, c1):
        row_lo = max(r0, tile.row0)
        row_hi = min(r1, tile.row1)
        col_lo = max(c0, tile.col0)
        col_hi = min(c1, tile.col1)
        if isinstance(tile.data, DenseMatrix):
            view = tile.data.window_view(
                row_lo - tile.row0, row_hi - tile.row0,
                col_lo - tile.col0, col_hi - tile.col0,
            )
            accumulator.add_dense(row_lo - r0, col_lo - c0, view)
        else:
            rows, cols, values = tile.data.window_mask(
                row_lo - tile.row0, row_hi - tile.row0,
                col_lo - tile.col0, col_hi - tile.col0,
            )
            accumulator.add_triples(row_lo - r0, col_lo - c0, rows, cols, values)


def enforce_memory_limit(result: ATMatrix, memory_limit_bytes: float) -> int:
    """Demote dense result tiles to CSR until the matrix fits the limit.

    The water-level threshold acts on *estimated* densities, so the
    materialized result can overshoot the SLA by the estimation error.
    This repair pass converts dense tiles to sparse in ascending density
    order (each such conversion shrinks a tile with density < S_d/S_sp)
    until the limit holds.  Returns the number of demoted tiles; raises
    :class:`MemoryLimitError` when even the all-sparse layout does not
    fit.
    """
    from ..errors import MemoryLimitError
    from ..formats.convert import dense_to_csr

    total = result.memory_bytes()
    if total <= memory_limit_bytes:
        return 0
    demotable = sorted(
        (
            tile
            for tile in result.tiles
            if isinstance(tile.data, DenseMatrix)
        ),
        key=lambda tile: tile.density,
    )
    demoted = 0
    for tile in demotable:
        if total <= memory_limit_bytes:
            break
        sparse_payload = dense_to_csr(tile.data)
        if sparse_payload.memory_bytes() >= tile.memory_bytes():
            continue  # denser than S_d/S_sp: demotion would not shrink it
        total += sparse_payload.memory_bytes() - tile.memory_bytes()
        result.replace_tile(tile, tile.with_payload(sparse_payload))
        demoted += 1
    if total > memory_limit_bytes:
        raise MemoryLimitError(
            f"result needs {total:.0f} B even all-sparse; limit is "
            f"{memory_limit_bytes:.0f} B"
        )
    return demoted


def multiply(
    a: MatrixOperand, b: MatrixOperand, **kwargs
) -> ATMatrix:
    """Convenience wrapper around :func:`atmult` returning only the result.

    Accepts the full :func:`atmult` keyword set (``config``,
    ``cost_model``, ``memory_limit_bytes``, ``dynamic_conversion``,
    ``use_estimation``, ``resilience``, ``observer``).
    """
    result, _ = atmult(a, b, **kwargs)
    return result
