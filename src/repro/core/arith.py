"""Element-wise arithmetic on AT Matrices.

Multiplication is the paper's focus, but its companion system SLACID [8]
integrates sparse matrices into a DBMS where addition and scaling are
everyday operations (e.g. accumulating update deltas).  ``add`` merges
the operands' contents and re-partitions, because the sum's topology can
differ from either operand's; ``scale`` is a pure per-tile payload
operation that preserves the existing tiling (scaling never changes the
non-zero pattern).
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from .atmatrix import ATMatrix
from .builder import build_at_matrix
from .tile import Tile


def add(
    a: ATMatrix,
    b: ATMatrix,
    *,
    alpha: float = 1.0,
    beta: float = 1.0,
    config: SystemConfig | None = None,
    read_threshold: float = 0.25,
) -> ATMatrix:
    """``alpha * A + beta * B`` as a freshly partitioned AT Matrix.

    The result is rebuilt through the quadtree partitioner because the
    sum's density topology (and hence its optimal tiling) generally
    matches neither operand.
    """
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    coo_a = a.to_coo()
    coo_b = b.to_coo()
    merged = COOMatrix(
        a.rows,
        a.cols,
        np.concatenate([coo_a.row_ids, coo_b.row_ids]),
        np.concatenate([coo_a.col_ids, coo_b.col_ids]),
        np.concatenate([alpha * coo_a.values, beta * coo_b.values]),
        check=False,
    ).sum_duplicates()
    return build_at_matrix(
        merged, config or a.config, read_threshold=read_threshold
    )


def scale(matrix: ATMatrix, factor: float) -> ATMatrix:
    """``factor * A`` with the tiling preserved (pattern is unchanged)."""
    tiles = []
    for tile in matrix.tiles:
        if isinstance(tile.data, CSRMatrix):
            payload: CSRMatrix | DenseMatrix = tile.data.scale(factor)
        else:
            payload = DenseMatrix(tile.data.array * factor, copy=False)
        tiles.append(
            Tile(
                tile.row0,
                tile.col0,
                tile.rows,
                tile.cols,
                tile.kind,
                payload,
                numa_node=tile.numa_node,
            )
        )
    return ATMatrix(matrix.rows, matrix.cols, matrix.config, tiles)
