"""The Adaptive Tile Matrix (AT MATRIX) container.

An :class:`ATMatrix` is the heterogeneous tiled representation of paper
section II: a directory of variable-size tiles (dense arrays or CSR),
plus an atomic-block-granularity index that maps any block coordinate to
its covering tile.  Regions without a tile are implicitly zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..density.map import DensityMap
from ..errors import FormatError, ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind
from ..zorder.zspace import ZSpace
from .tile import Tile


@dataclass
class ATMatrix:
    """A matrix stored as adaptive, heterogeneous tiles.

    Attributes
    ----------
    rows, cols:
        Element dimensions of the matrix.
    config:
        The :class:`SystemConfig` the matrix was partitioned under (fixes
        ``b_atomic`` and the tile-size bounds).
    tiles:
        The materialized tiles; positions are quadtree-aligned and
        mutually disjoint.
    """

    rows: int
    cols: int
    config: SystemConfig
    tiles: list[Tile] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ShapeError(f"dimensions must be positive, got {self.shape}")
        self._index: np.ndarray | None = None
        self._density_map: DensityMap | None = None
        self._structural_density_map: DensityMap | None = None
        self._structure_fp: str | None = None

    # -- basic properties -------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def nnz(self) -> int:
        return sum(tile.nnz for tile in self.tiles)

    @property
    def density(self) -> float:
        return self.nnz / (self.rows * self.cols)

    @property
    def zspace(self) -> ZSpace:
        assert self.config.b_atomic is not None
        return ZSpace(self.rows, self.cols, self.config.b_atomic)

    def memory_bytes(self) -> int:
        """Total paper-model footprint of all tile payloads."""
        return sum(tile.memory_bytes() for tile in self.tiles)

    def num_tiles(self, kind: StorageKind | None = None) -> int:
        """Number of tiles, optionally restricted to one storage kind."""
        if kind is None:
            return len(self.tiles)
        return sum(1 for tile in self.tiles if tile.kind is kind)

    def memory_breakdown(self) -> dict[str, int]:
        """Payload bytes split by storage kind (paper-model accounting)."""
        breakdown = {kind.value: 0 for kind in StorageKind}
        for tile in self.tiles:
            breakdown[tile.kind.value] += tile.memory_bytes()
        return breakdown

    # -- tile index ------------------------------------------------------------
    def _block_index(self) -> np.ndarray:
        """Block-grid array mapping each atomic block to its tile id (-1: none)."""
        if self._index is None:
            zspace = self.zspace
            index = np.full((zspace.grid_rows, zspace.grid_cols), -1, dtype=np.int64)
            b = zspace.b_atomic
            for tile_id, tile in enumerate(self.tiles):
                br0, bc0 = tile.row0 // b, tile.col0 // b
                br1 = -(-tile.row1 // b)
                bc1 = -(-tile.col1 // b)
                region = index[br0:br1, bc0:bc1]
                if (region != -1).any():
                    raise FormatError(f"tiles overlap at blocks [{br0}:{br1}, {bc0}:{bc1}]")
                region[:] = tile_id
            self._index = index
        return self._index

    def invalidate_index(self) -> None:
        """Drop cached derived state (call after mutating ``tiles``)."""
        self._index = None
        self._density_map = None
        self._structural_density_map = None
        self._structure_fp = None

    def tile_at(self, row: int, col: int) -> Tile | None:
        """The tile covering element ``(row, col)``, if any."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ShapeError(f"element ({row}, {col}) outside {self.shape}")
        b = self.zspace.b_atomic
        tile_id = self._block_index()[row // b, col // b]
        return self.tiles[tile_id] if tile_id >= 0 else None

    def tiles_overlapping(
        self, row0: int, row1: int, col0: int, col1: int
    ) -> list[Tile]:
        """All tiles intersecting the half-open element region."""
        if not (0 <= row0 <= row1 <= self.rows and 0 <= col0 <= col1 <= self.cols):
            raise ShapeError(
                f"region [{row0}:{row1}, {col0}:{col1}] outside {self.shape}"
            )
        if row0 == row1 or col0 == col1:
            return []
        b = self.zspace.b_atomic
        index = self._block_index()
        ids = np.unique(index[row0 // b : -(-row1 // b), col0 // b : -(-col1 // b)])
        return [self.tiles[i] for i in ids if i >= 0]

    # -- partition boundaries (used by ATMULT) -----------------------------------
    def row_cuts(self) -> list[int]:
        """Sorted distinct tile-row boundaries, always including 0 and ``rows``."""
        cuts = {0, self.rows}
        for tile in self.tiles:
            cuts.add(tile.row0)
            if tile.row1 < self.rows:
                cuts.add(tile.row1)
        return sorted(cuts)

    def col_cuts(self) -> list[int]:
        """Sorted distinct tile-column boundaries, including 0 and ``cols``."""
        cuts = {0, self.cols}
        for tile in self.tiles:
            cuts.add(tile.col0)
            if tile.col1 < self.cols:
                cuts.add(tile.col1)
        return sorted(cuts)

    # -- whole-matrix views ---------------------------------------------------
    def density_map(self, *, structural: bool = False) -> DensityMap:
        """Block-granular density map of the stored data.

        Computed tile-locally (no whole-matrix flattening) and cached as
        matrix metadata — the estimator's inputs are statistics the matrix
        carries, like SpMachO's density maps.

        ``structural=True`` is the view the planner consumes: dense
        tiles contribute their fingerprinted (two-decimal quantized)
        density spread uniformly over their extent, so the resulting
        estimate — and hence the cached plan — is a pure function of
        the plan key (see :mod:`repro.engine.fingerprint`).
        """
        cached = self._structural_density_map if structural else self._density_map
        if cached is not None:
            return cached
        computed = tile_density_map(
            self.tiles, self.rows, self.cols, self.zspace.b_atomic,
            structural=structural,
        )
        if structural:
            self._structural_density_map = computed
        else:
            self._density_map = computed
        return computed

    def to_coo(self) -> COOMatrix:
        """Flatten all tiles back into a single COO table."""
        rows_runs: list[np.ndarray] = []
        cols_runs: list[np.ndarray] = []
        vals_runs: list[np.ndarray] = []
        for tile in self.tiles:
            if isinstance(tile.data, CSRMatrix):
                row_ids = np.repeat(
                    np.arange(tile.rows, dtype=np.int64), tile.data.row_nnz()
                )
                col_ids = tile.data.indices
                values = tile.data.values
            else:
                row_ids, col_ids = np.nonzero(tile.data.array)
                values = tile.data.array[row_ids, col_ids]
            rows_runs.append(row_ids + tile.row0)
            cols_runs.append(col_ids + tile.col0)
            vals_runs.append(values)
        if not vals_runs:
            return COOMatrix.empty(self.rows, self.cols)
        return COOMatrix(
            self.rows,
            self.cols,
            np.concatenate(rows_runs),
            np.concatenate(cols_runs),
            np.concatenate(vals_runs),
            check=False,
        )

    def to_csr(self) -> CSRMatrix:
        """Flatten to a plain CSR matrix."""
        coo = self.to_coo()
        return CSRMatrix.from_arrays_unsorted(
            self.rows, self.cols, coo.row_ids, coo.col_ids, coo.values,
            sum_duplicates=False,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a 2-D numpy array."""
        out = np.zeros(self.shape, dtype=np.float64)
        for tile in self.tiles:
            if isinstance(tile.data, DenseMatrix):
                out[tile.row0 : tile.row1, tile.col0 : tile.col1] = tile.data.array
            else:
                block = tile.data.to_dense()
                out[tile.row0 : tile.row1, tile.col0 : tile.col1] = block
        return out

    def submatrix(self, row0: int, row1: int, col0: int, col1: int) -> ATMatrix:
        """The half-open region as a new AT Matrix (tiles clipped).

        Tiles fully inside the region share their payloads; boundary
        tiles are extracted through their windowed accessors.  The
        result keeps this matrix's configuration; re-partition with
        :func:`~repro.core.retile.retile` if the clipped topology calls
        for a different tiling.
        """
        if not (0 <= row0 < row1 <= self.rows and 0 <= col0 < col1 <= self.cols):
            raise ShapeError(
                f"region [{row0}:{row1}, {col0}:{col1}] invalid for {self.shape}"
            )
        b = self.zspace.b_atomic
        if row0 % b or col0 % b:
            # Unaligned origin: clipped tiles would not map cleanly onto
            # the block grid, so rebuild through the partitioner instead.
            from .builder import build_at_matrix

            window = self.to_coo().extract_window(row0, row1, col0, col1)
            return build_at_matrix(window, self.config)
        tiles: list[Tile] = []
        for tile in self.tiles_overlapping(row0, row1, col0, col1):
            lo_r, hi_r = max(row0, tile.row0), min(row1, tile.row1)
            lo_c, hi_c = max(col0, tile.col0), min(col1, tile.col1)
            if (lo_r, hi_r, lo_c, hi_c) == tile.extent:
                payload = tile.data
            else:
                payload = tile.data.extract_window(
                    lo_r - tile.row0, hi_r - tile.row0,
                    lo_c - tile.col0, hi_c - tile.col0,
                )
                if payload.nnz == 0 and isinstance(payload, CSRMatrix):
                    continue
            tiles.append(
                Tile(
                    lo_r - row0,
                    lo_c - col0,
                    hi_r - lo_r,
                    hi_c - lo_c,
                    tile.kind,
                    payload,
                    numa_node=tile.numa_node,
                )
            )
        return ATMatrix(row1 - row0, col1 - col0, self.config, tiles)

    def allclose(self, other: ATMatrix | np.ndarray, *, atol: float = 1e-12) -> bool:
        """Numerical equality against another matrix or dense array."""
        if isinstance(other, ATMatrix):
            if self.shape != other.shape:
                return False
            other = other.to_dense()
        other = np.asarray(other)
        if other.shape != self.shape:
            return False
        return bool(np.allclose(self.to_dense(), other, atol=atol))

    def transpose(self) -> ATMatrix:
        """The transposed matrix as a new AT Matrix.

        Every tile is transposed in place of its mirrored position; the
        quadtree alignment is preserved because positions and extents
        swap symmetrically.
        """
        tiles = [
            Tile(
                tile.col0,
                tile.row0,
                tile.cols,
                tile.rows,
                tile.kind,
                tile.data.transpose(),
                numa_node=tile.numa_node,
            )
            for tile in self.tiles
        ]
        return ATMatrix(self.cols, self.rows, self.config, tiles)

    def replace_tile(self, old: Tile, new: Tile) -> None:
        """Swap one tile object for another at the same position."""
        if (old.row0, old.col0, old.rows, old.cols) != (
            new.row0,
            new.col0,
            new.rows,
            new.cols,
        ):
            raise FormatError("replacement tile must occupy the same region")
        for i, tile in enumerate(self.tiles):
            if tile is old:
                self.tiles[i] = new
                self.invalidate_index()
                return
        raise FormatError("tile to replace is not part of this matrix")

    def __matmul__(self, other: ATMatrix | CSRMatrix | DenseMatrix) -> ATMatrix:
        """``A @ B`` runs ATMULT under this matrix's configuration."""
        from .atmult import atmult

        result, _ = atmult(self, other, config=self.config)
        return result

    def __getitem__(
        self, key: tuple[int | slice, int | slice]
    ) -> float | ATMatrix:
        """Element access ``at[i, j]`` and region access ``at[r0:r1, c0:c1]``.

        Element reads resolve through the tile index (dense tiles O(1),
        CSR tiles by binary search); slice pairs return a
        :meth:`submatrix`.  Slice steps are not supported.
        """
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError("expected at[row, col] or at[r0:r1, c0:c1]")
        row_key, col_key = key
        if isinstance(row_key, slice) and isinstance(col_key, slice):
            if row_key.step not in (None, 1) or col_key.step not in (None, 1):
                raise TypeError("slice steps are not supported")
            row0, row1, _ = row_key.indices(self.rows)
            col0, col1, _ = col_key.indices(self.cols)
            return self.submatrix(row0, row1, col0, col1)
        if isinstance(row_key, (int, np.integer)) and isinstance(
            col_key, (int, np.integer)
        ):
            row, col = int(row_key), int(col_key)
            if row < 0:
                row += self.rows
            if col < 0:
                col += self.cols
            tile = self.tile_at(row, col)
            if tile is None:
                return 0.0
            local_row = row - tile.row0
            local_col = col - tile.col0
            if isinstance(tile.data, DenseMatrix):
                return float(tile.data.array[local_row, local_col])
            cols, vals = tile.data.row_slice(local_row)
            position = np.searchsorted(cols, local_col)
            if position < len(cols) and cols[position] == local_col:
                return float(vals[position])
            return 0.0
        raise TypeError("mixed int/slice indexing is not supported")

    def __repr__(self) -> str:
        dense = self.num_tiles(StorageKind.DENSE)
        sparse = self.num_tiles(StorageKind.SPARSE)
        return (
            f"ATMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"tiles={len(self.tiles)} [{dense}d/{sparse}sp])"
        )


def _block_overlap(lo: int, hi: int, block: int) -> np.ndarray:
    """Element overlap of ``[lo, hi)`` with each block it touches."""
    edges = np.arange(lo // block, -(-hi // block) + 1, dtype=np.int64) * block
    return (np.minimum(edges[1:], hi) - np.maximum(edges[:-1], lo)).astype(
        np.float64
    )


def tile_density_map(
    tiles: list[Tile],
    rows: int,
    cols: int,
    block: int,
    *,
    structural: bool = False,
) -> DensityMap:
    """Density map of a tile set at an arbitrary block granularity.

    With ``structural=True`` dense tiles contribute their quantized
    density uniformly over their extent instead of their exact non-zero
    pattern (see :meth:`ATMatrix.density_map`).
    """
    grid_rows = -(-rows // block)
    grid_cols = -(-cols // block)
    counts = np.zeros((grid_rows, grid_cols), dtype=np.float64)
    for tile in tiles:
        if isinstance(tile.data, CSRMatrix):
            row_ids = np.repeat(
                np.arange(tile.rows, dtype=np.int64), tile.data.row_nnz()
            )
            col_ids = tile.data.indices
        elif structural:
            # A dense tile is fingerprinted by extent + quantized density,
            # so the structural map spreads that density uniformly over
            # the extent (per-block variation is value detail the plan
            # key does not capture).
            counts[
                tile.row0 // block : -(-tile.row1 // block),
                tile.col0 // block : -(-tile.col1 // block),
            ] += tile.structural_density * np.outer(
                _block_overlap(tile.row0, tile.row1, block),
                _block_overlap(tile.col0, tile.col1, block),
            )
            continue
        else:
            row_ids, col_ids = np.nonzero(tile.data.array)
        np.add.at(
            counts,
            ((row_ids + tile.row0) // block, (col_ids + tile.col0) // block),
            1.0,
        )
    areas = DensityMap._areas(rows, cols, block)
    return DensityMap(rows, cols, block, counts / areas)
