"""Thread-parallel ATMULT: the paper's two-level execution for real.

Paper section III-F: pairs ``(ti, tj)`` of A tile-rows and B tile-columns
form independent task sets; all tile products of one pair run on the same
worker team, different pairs run on different teams concurrently.  This
module executes that scheme with a thread pool — one worker per simulated
socket — on top of the same kernels and optimizer ATMULT uses.

Two facts make this sound in Python:

* different pairs write *different* target accumulators, so pair tasks
  share no mutable state except the optimizer's conversion cache (guarded
  by a lock);
* the heavy numpy/BLAS kernels release the GIL, so dense-dominated
  workloads overlap on multicore hosts (on a single-core host the result
  is identical, just serialized).

Failure semantics: a pair task that raises no longer kills the whole
``ThreadPoolExecutor.map``.  Without a resilience policy, per-pair
exceptions are captured, busy-time statistics are preserved, and one
aggregated :class:`~repro.errors.TaskFailedError` is raised after the
pool drains (carrying ``pair_errors`` and the partially populated
report).  With ``resilience=RetryPolicy(...)``, each pair is retried in
isolation, validated by the result guard, and degraded to sparse under
memory pressure — see :mod:`repro.resilience`.

Observability: pass ``observer=`` (or run inside ``repro.observe()``) and
the pair spans land on their worker threads — the Chrome trace export
then shows one lane per ``team`` thread with nested pair/optimize/kernel
spans, which is the paper's Fig. 9 execution picture as a timeline.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..config import DEFAULT_CONFIG, SystemConfig
from ..cost.model import CostModel
from ..density.map import DensityMap
from ..density.water_level import water_level_threshold
from ..errors import MemoryLimitError, ShapeError, TaskFailedError
from ..kernels.accumulator import make_accumulator
from ..kernels.registry import run_tile_product
from ..kernels.window import Window
from ..kinds import StorageKind
from ..observe import Observation
from ..observe import session as observe_session
from ..resilience.degrade import DegradationState
from ..resilience.faults import fire_hooks, task_scope
from ..resilience.guard import reference_tile_product, validate_tile
from ..resilience.report import FailureReport, aggregate_message
from ..resilience.retry import ResilientPairRunner, RetryPolicy
from ..topology.system import SystemTopology
from .atmatrix import ATMatrix
from .atmult import MatrixOperand, as_at_matrix, operand_density_map
from .optimizer import DynamicOptimizer
from .report import ParallelReport
from .tile import Tile

_span = observe_session.tracer_span


class _LockedOptimizer(DynamicOptimizer):
    """DynamicOptimizer with locks around the shared mutable state."""

    def __init__(self, cost_model: CostModel, *, enabled: bool = True) -> None:
        super().__init__(cost_model, enabled=enabled)
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def _payload_as(self, tile: Tile, kind: StorageKind):
        if kind is tile.kind:
            return tile.data
        with self._lock:
            return super()._payload_as(tile, kind)

    def _record_kernel(self, name: str) -> None:
        with self._stats_lock:
            super()._record_kernel(name)


class _PairResult:
    __slots__ = ("tile", "products")

    def __init__(self, tile: Tile | None, products: int) -> None:
        self.tile = tile
        self.products = products


def parallel_atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    topology: SystemTopology,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    memory_limit_bytes: float | None = None,
    dynamic_conversion: bool = True,
    use_estimation: bool = True,
    resilience: RetryPolicy | None = None,
    observer: Observation | None = None,
) -> tuple[ATMatrix, ParallelReport]:
    """Multiply ``C = A x B`` with one worker team per socket.

    Semantically identical to :func:`~repro.core.atmult.atmult` and
    accepts the same keyword set (``topology`` replaces the implicit
    sequential execution; ``c`` seeding is not supported in parallel —
    see docs/API.md).  The tile-row/tile-column pairs are dispatched to
    a thread pool of ``topology.sockets`` workers instead of a
    sequential loop.  With a ``resilience`` policy, flaky pairs are
    retried in isolation, finished tiles are validated, and memory
    pressure degrades the write threshold instead of failing the run.
    With ``use_estimation=False`` the density estimation phase is
    skipped and every target tile is sparse (ablation step 3).
    """
    config = config or DEFAULT_CONFIG
    cost_model = cost_model or CostModel()
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    with observe_session.resolve(observer) as obs:
        return _parallel_atmult(
            a,
            b,
            topology=topology,
            config=config,
            cost_model=cost_model,
            memory_limit_bytes=memory_limit_bytes,
            dynamic_conversion=dynamic_conversion,
            use_estimation=use_estimation,
            resilience=resilience,
            obs=obs,
        )


def _parallel_atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    topology: SystemTopology,
    config: SystemConfig,
    cost_model: CostModel,
    memory_limit_bytes: float | None,
    dynamic_conversion: bool,
    use_estimation: bool,
    resilience: RetryPolicy | None,
    obs: Observation | None,
) -> tuple[ATMatrix, ParallelReport]:
    at_a = as_at_matrix(a, config)
    at_b = as_at_matrix(b, config)

    failure = FailureReport()
    report = ParallelReport(
        workers=topology.sockets, failure=failure, observation=obs
    )

    estimate: DensityMap | None = None
    if use_estimation:
        from ..density.estimate import estimate_product_density

        start = time.perf_counter()
        with _span(obs, "estimate"):
            estimate = estimate_product_density(
                operand_density_map(at_a, config), operand_density_map(at_b, config)
            )
        report.add_phase("estimate", time.perf_counter() - start)

    start = time.perf_counter()
    with _span(obs, "water_level"):
        if estimate is not None:
            level = water_level_threshold(estimate, memory_limit_bytes, config)
            write_threshold = max(cost_model.write_threshold, level.threshold)
        else:
            write_threshold = float("inf")  # no estimation: sparse targets only
    optimizer = _LockedOptimizer(cost_model, enabled=dynamic_conversion)
    report.add_phase("optimize", time.perf_counter() - start)
    if obs is not None:
        obs.metrics.gauge("workers").set(topology.sockets)

    row_cuts = at_a.row_cuts()
    col_cuts = at_b.col_cuts()
    busy_lock = threading.Lock()

    degradation = (
        DegradationState(estimate, memory_limit_bytes, config, write_threshold)
        if resilience is not None
        else None
    )
    runner = (
        ResilientPairRunner(resilience, failure, degradation)
        if resilience is not None
        else None
    )

    def compute_pair(
        ti: int, tj: int, force_sparse: bool, use_reference: bool = False
    ) -> _PairResult:
        """One full pair computation (one attempt); records busy time."""
        start = time.perf_counter()
        attrs = (
            {"ti": ti, "tj": tj, "force_sparse": force_sparse}
            if obs is not None
            else None
        )
        try:
            with _span(obs, "pair", "pair", attrs):
                fire_hooks("pair", (ti, tj))
                r0, r1 = row_cuts[ti], row_cuts[ti + 1]
                c0, c1 = col_cuts[tj], col_cuts[tj + 1]
                a_strip = at_a.tiles_overlapping(r0, r1, 0, at_a.cols)
                b_strip = at_b.tiles_overlapping(0, at_b.rows, c0, c1)
                rho_c = (
                    estimate.region_density(r0, r1, c0, c1)
                    if estimate is not None
                    else 0.0
                )
                threshold = (
                    degradation.threshold
                    if degradation is not None
                    else write_threshold
                )
                c_kind = (
                    StorageKind.SPARSE
                    if force_sparse or rho_c < threshold
                    else StorageKind.DENSE
                )
                accumulator = make_accumulator(c_kind, r1 - r0, c1 - c0)
                products = 0
                for a_tile in a_strip:
                    for b_tile in b_strip:
                        k0 = max(a_tile.col0, b_tile.row0)
                        k1 = min(a_tile.col1, b_tile.row1)
                        if k0 >= k1:
                            continue
                        wa = Window(
                            max(r0, a_tile.row0) - a_tile.row0,
                            min(r1, a_tile.row1) - a_tile.row0,
                            k0 - a_tile.col0,
                            k1 - a_tile.col0,
                        )
                        wb = Window(
                            k0 - b_tile.row0,
                            k1 - b_tile.row0,
                            max(c0, b_tile.col0) - b_tile.col0,
                            min(c1, b_tile.col1) - b_tile.col0,
                        )
                        target = (
                            max(r0, a_tile.row0) - r0,
                            max(c0, b_tile.col0) - c0,
                        )
                        if use_reference:
                            reference_tile_product(
                                a_tile.data, wa, b_tile.data, wb, accumulator,
                                *target,
                            )
                        else:
                            product_start = time.perf_counter()
                            with _span(obs, "optimize", "optimize"):
                                payload_a, payload_b = optimizer.choose(
                                    a_tile, b_tile, c_kind,
                                    wa.rows, wa.cols, wb.cols, rho_c,
                                )
                            kernel_start = time.perf_counter()
                            run_tile_product(
                                payload_a, wa, payload_b, wb, accumulator,
                                *target,
                            )
                            if obs is not None:
                                _record_product(
                                    obs, cost_model, payload_a, payload_b,
                                    c_kind, wa, wb, a_tile, b_tile, rho_c,
                                    kernel_start - product_start,
                                    time.perf_counter() - kernel_start,
                                )
                        products += 1
                if obs is not None:
                    obs.metrics.counter("accumulator.writes").inc(
                        accumulator.writes
                    )
                    for t in (*a_strip, *b_strip):
                        obs.metrics.counter(
                            f"numa.bytes.node{t.numa_node}"
                        ).inc(t.memory_bytes())
                if not products:
                    return _PairResult(None, 0)
                payload = accumulator.finalize()
                if not payload.nnz and c_kind is StorageKind.SPARSE:
                    return _PairResult(None, products)
                tile = Tile(r0, c0, r1 - r0, c1 - c0, c_kind, payload)
                if not tile.nnz:
                    return _PairResult(None, products)
                if (
                    degradation is not None
                    and not force_sparse
                    and c_kind is StorageKind.DENSE
                    and degradation.over_budget(tile.memory_bytes())
                ):
                    raise MemoryLimitError(
                        f"pair {(ti, tj)} dense tile of {tile.memory_bytes()} B "
                        f"would exceed the memory budget"
                    )
                return _PairResult(tile, products)
        finally:
            elapsed = time.perf_counter() - start
            name = threading.current_thread().name
            with busy_lock:
                report.worker_busy_seconds[name] = (
                    report.worker_busy_seconds.get(name, 0.0) + elapsed
                )
            if obs is not None:
                obs.metrics.counter(f"worker.busy_seconds.{name}").inc(elapsed)

    def validate_pair(ti: int, tj: int, result: _PairResult) -> None:
        if result.tile is None:
            return
        r0, r1 = row_cuts[ti], row_cuts[ti + 1]
        c0, c1 = col_cuts[tj], col_cuts[tj + 1]
        validate_tile(
            result.tile.data,
            r1 - r0,
            c1 - c0,
            estimate.region_density(r0, r1, c0, c1) if estimate is not None else None,
            pair=(ti, tj),
        )

    def run_pair(ti: int, tj: int) -> Tile | None:
        pair = (ti, tj)
        try:
            if runner is None:
                with task_scope(pair, 1):
                    result = compute_pair(ti, tj, False)
            else:
                result = runner.run(
                    pair,
                    lambda force_sparse: compute_pair(ti, tj, force_sparse),
                    validate=lambda res: validate_pair(ti, tj, res),
                    fallback=lambda force_sparse: compute_pair(
                        ti, tj, force_sparse, use_reference=True
                    ),
                )
        except Exception as error:  # noqa: BLE001 — aggregated after the pool drains
            with busy_lock:
                failure.record_error(pair, error)
            return None
        with busy_lock:
            report.products += result.products
        if degradation is not None and result.tile is not None:
            r0, r1 = row_cuts[ti], row_cuts[ti + 1]
            c0, c1 = col_cuts[tj], col_cuts[tj + 1]
            degradation.note_completed(r0, r1, c0, c1, result.tile.memory_bytes())
        return result.tile

    pairs = [
        (ti, tj)
        for ti in range(len(row_cuts) - 1)
        for tj in range(len(col_cuts) - 1)
    ]
    report.pairs = len(pairs)
    if runner is None:
        failure.attempts = len(pairs)
    start = time.perf_counter()
    with _span(obs, "pair_loop", attrs={"pairs": len(pairs)} if obs else None):
        with ThreadPoolExecutor(
            max_workers=topology.sockets, thread_name_prefix="team"
        ) as pool:
            tiles = [tile for tile in pool.map(lambda p: run_pair(*p), pairs) if tile]
    report.wall_seconds = time.perf_counter() - start
    report.conversions = optimizer.stats.conversions
    report.merge_kernel_counts(optimizer.stats.kernel_counts)
    if failure.pair_errors:
        raise TaskFailedError(
            aggregate_message(failure.pair_errors, len(pairs)),
            pair_errors=failure.pair_errors,
            report=report,
        )
    result = ATMatrix(a.rows, b.cols, config, tiles)
    if memory_limit_bytes is not None:
        from .atmult import enforce_memory_limit

        start = time.perf_counter()
        with _span(obs, "memory_limit_enforce"):
            enforce_memory_limit(result, memory_limit_bytes)
        report.add_phase("optimize", time.perf_counter() - start)
    return result, report


def _record_product(
    obs: Observation,
    cost_model: CostModel,
    payload_a,
    payload_b,
    c_kind: StorageKind,
    wa: Window,
    wb: Window,
    a_tile: Tile,
    b_tile: Tile,
    rho_c: float,
    optimize_seconds: float,
    measured_seconds: float,
) -> None:
    """Record one tile product's metrics and cost-accuracy sample."""
    from .atmult import _payload_kind
    from ..kinds import kernel_name

    kind_a = _payload_kind(payload_a)
    kind_b = _payload_kind(payload_b)
    name = kernel_name(kind_a, kind_b, c_kind)
    obs.metrics.histogram(f"kernel.seconds.{name}").observe(measured_seconds)
    obs.metrics.histogram("optimizer.decision_seconds").observe(optimize_seconds)
    predicted = cost_model.product_cost(
        kind_a, kind_b, c_kind,
        wa.rows, wa.cols, wb.cols,
        a_tile.density, b_tile.density, rho_c,
    )
    obs.cost_accuracy.record(name, predicted, measured_seconds)
