"""Parallel ATMULT: the paper's two-level execution for real.

Paper section III-F: pairs ``(ti, tj)`` of A tile-rows and B tile-columns
form independent task sets; all tile products of one pair run on the same
worker team, different pairs run on different teams concurrently.  This
module executes that scheme on top of the same engine the sequential
operator uses: the plan is resolved once
(:func:`repro.engine.api.resolve_plan`, possibly from the plan cache,
and *shared* with the sequential path — the plan key deliberately
excludes the execution mode) and the planned pairs are dispatched by
:func:`repro.engine.executor.execute_plan` to one of two backends,
selected by ``MultiplyOptions.execution``:

* ``"threads"`` (default) — a thread pool, one worker per simulated
  socket;
* ``"processes"`` — the supervised multiprocess shard executor
  (:mod:`repro.resilience.supervisor`): one OS process per simulated
  socket, heartbeat liveness, crash detection and pair reassignment.
  Falls back to threads (with a :class:`RuntimeWarning`) when the
  platform cannot run ``multiprocessing``.

Two facts make this sound in Python:

* different pairs write *different* target accumulators, so pair tasks
  share no mutable state except the engine's conversion cache (guarded
  by a lock);
* the heavy numpy/BLAS kernels release the GIL, so dense-dominated
  workloads overlap on multicore hosts (on a single-core host the result
  is identical, just serialized).

Failure semantics: a pair task that raises no longer kills the whole
``ThreadPoolExecutor.map``.  Without a resilience policy, per-pair
exceptions are captured, busy-time statistics are preserved, and one
aggregated :class:`~repro.errors.TaskFailedError` is raised after the
pool drains (carrying ``pair_errors`` and the partially populated
report).  With ``resilience=RetryPolicy(...)``, each pair is retried in
isolation, validated by the result guard, and degraded to sparse under
memory pressure — see :mod:`repro.resilience`.

Observability: pass ``observer=`` (or run inside ``repro.observe()``) and
the pair spans land on their worker threads — the Chrome trace export
then shows one lane per ``team`` thread with nested pair/kernel spans,
which is the paper's Fig. 9 execution picture as a timeline.
"""

from __future__ import annotations

import warnings

from ..config import SystemConfig
from ..cost.model import CostModel
from ..engine.api import resolve_plan
from ..engine.cache import PlanCache
from ..engine.executor import execute_plan
from ..engine.options import UNSET, MultiplyOptions, coerce_options
from ..errors import ShapeError
from ..observe import Observation
from ..observe import session as observe_session
from ..resilience.retry import RetryPolicy
from ..topology.system import SystemTopology
from .atmatrix import ATMatrix
from .operands import MatrixOperand, as_at_matrix
from .report import ParallelReport

__all__ = ["parallel_atmult"]


def parallel_atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    topology: SystemTopology,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    plan_cache: PlanCache | None = None,
    memory_limit_bytes: float | None = UNSET,
    dynamic_conversion: bool = UNSET,
    use_estimation: bool = UNSET,
    resilience: RetryPolicy | None = UNSET,
    observer: Observation | None = UNSET,
    workers: int | None = UNSET,
) -> tuple[ATMatrix, ParallelReport]:
    """Multiply ``C = A x B`` with one worker team per socket.

    Semantically identical to :func:`~repro.core.atmult.atmult` and
    accepts the same keyword surface (``topology`` replaces the implicit
    sequential execution; ``c`` seeding is not supported in parallel —
    see docs/API.md).  The tile-row/tile-column pairs are dispatched to
    a thread pool of ``topology.sockets`` workers (overridable via
    ``options.workers``) instead of a sequential loop.  With a
    ``resilience`` policy, flaky pairs are retried in isolation,
    finished tiles are validated, and memory pressure degrades the
    write threshold instead of failing the run.  With
    ``use_estimation=False`` the density estimation phase is skipped and
    every target tile is sparse (ablation step 3).

    The legacy ``memory_limit_bytes``/``dynamic_conversion``/
    ``use_estimation``/``resilience``/``observer``/``workers`` keywords
    are **deprecated** in favor of ``options=MultiplyOptions(...)`` (one
    consolidated :class:`DeprecationWarning` per call).
    """
    opts = coerce_options(
        options,
        where="parallel_atmult",
        config=config,
        cost_model=cost_model,
        plan_cache=plan_cache,
        memory_limit_bytes=memory_limit_bytes,
        dynamic_conversion=dynamic_conversion,
        use_estimation=use_estimation,
        resilience=resilience,
        observer=observer,
        workers=workers,
    )
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()
    worker_count = opts.workers if opts.workers is not None else topology.sockets
    execution = opts.execution
    if execution == "processes":
        # The supervisor is the only module allowed to know whether the
        # platform can run it; degrade to the thread backend otherwise.
        from ..resilience.supervisor import processes_available

        if not processes_available():  # pragma: no cover - platform-specific
            warnings.warn(
                "multiprocessing is unavailable on this platform; "
                "execution='processes' falls back to threads",
                RuntimeWarning,
                stacklevel=2,
            )
            execution = "threads"
    with observe_session.resolve(opts.observer) as obs:
        at_a = as_at_matrix(a, resolved_config)
        at_b = as_at_matrix(b, resolved_config)
        plan, fresh = resolve_plan(
            at_a,
            at_b,
            config=resolved_config,
            cost_model=resolved_model,
            options=opts,
            obs=obs,
        )
        result, report = execute_plan(
            plan,
            at_a,
            at_b,
            config=resolved_config,
            cost_model=resolved_model,
            resilience=opts.resilience,
            obs=obs,
            parallel=True,
            workers=worker_count,
            execution=execution,
            heartbeat_interval=opts.heartbeat_interval_seconds,
            pair_deadline_seconds=opts.pair_deadline_seconds,
            check_fingerprints=False,  # resolve_plan keyed/built on these operands
            checkpoint=opts.checkpoint,
            checkpoint_flush_pairs=opts.checkpoint_flush_pairs,
            cancel=opts.cancel,
            startup_grace_seconds=opts.startup_grace_seconds,
        )
        assert isinstance(report, ParallelReport)
        if fresh:
            if plan.use_estimation:
                report.add_phase("estimate", plan.estimate_seconds)
            report.add_phase("optimize", plan.optimize_seconds)
    return result, report
