"""Thread-parallel ATMULT: the paper's two-level execution for real.

Paper section III-F: pairs ``(ti, tj)`` of A tile-rows and B tile-columns
form independent task sets; all tile products of one pair run on the same
worker team, different pairs run on different teams concurrently.  This
module executes that scheme with a thread pool — one worker per simulated
socket — on top of the same kernels and optimizer ATMULT uses.

Two facts make this sound in Python:

* different pairs write *different* target accumulators, so pair tasks
  share no mutable state except the optimizer's conversion cache (guarded
  by a lock);
* the heavy numpy/BLAS kernels release the GIL, so dense-dominated
  workloads overlap on multicore hosts (on a single-core host the result
  is identical, just serialized).

Failure semantics: a pair task that raises no longer kills the whole
``ThreadPoolExecutor.map``.  Without a resilience policy, per-pair
exceptions are captured, busy-time statistics are preserved, and one
aggregated :class:`~repro.errors.TaskFailedError` is raised after the
pool drains (carrying ``pair_errors`` and the partially populated
report).  With ``resilience=RetryPolicy(...)``, each pair is retried in
isolation, validated by the result guard, and degraded to sparse under
memory pressure — see :mod:`repro.resilience`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import NamedTuple

from ..config import DEFAULT_CONFIG, SystemConfig
from ..cost.model import CostModel
from ..density.water_level import water_level_threshold
from ..errors import MemoryLimitError, ShapeError, TaskFailedError
from ..kernels.accumulator import make_accumulator
from ..kernels.registry import run_tile_product
from ..kernels.window import Window
from ..kinds import StorageKind
from ..resilience.degrade import DegradationState
from ..resilience.faults import fire_hooks, task_scope
from ..resilience.guard import reference_tile_product, validate_tile
from ..resilience.report import FailureReport, aggregate_message
from ..resilience.retry import ResilientPairRunner, RetryPolicy
from ..topology.system import SystemTopology
from .atmatrix import ATMatrix
from .atmult import MatrixOperand, as_at_matrix, operand_density_map
from .optimizer import DynamicOptimizer
from .tile import Tile


@dataclass
class ParallelReport:
    """Outcome statistics of one parallel ATMULT run."""

    wall_seconds: float = 0.0
    pairs: int = 0
    products: int = 0
    conversions: int = 0
    workers: int = 1
    #: busy seconds accumulated per worker thread
    worker_busy_seconds: dict[str, float] = field(default_factory=dict)
    #: structured resilience accounting (always present; empty on clean runs)
    failure: FailureReport = field(default_factory=FailureReport)

    @property
    def parallel_efficiency(self) -> float:
        """Total busy time over (workers x wall time)."""
        if not self.worker_busy_seconds or self.wall_seconds == 0.0:
            return 1.0
        busy = sum(self.worker_busy_seconds.values())
        return busy / (self.workers * self.wall_seconds)


class _LockedOptimizer(DynamicOptimizer):
    """DynamicOptimizer with a lock around the shared conversion cache."""

    def __init__(self, cost_model: CostModel, *, enabled: bool = True) -> None:
        super().__init__(cost_model, enabled=enabled)
        self._lock = threading.Lock()

    def _payload_as(self, tile: Tile, kind: StorageKind):
        if kind is tile.kind:
            return tile.data
        with self._lock:
            return super()._payload_as(tile, kind)


class _PairResult(NamedTuple):
    tile: Tile | None
    products: int


def parallel_atmult(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    topology: SystemTopology,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    memory_limit_bytes: float | None = None,
    dynamic_conversion: bool = True,
    resilience: RetryPolicy | None = None,
) -> tuple[ATMatrix, ParallelReport]:
    """Multiply ``C = A x B`` with one worker team per socket.

    Semantically identical to :func:`~repro.core.atmult.atmult`; the
    tile-row/tile-column pairs are dispatched to a thread pool of
    ``topology.sockets`` workers instead of a sequential loop.  With a
    ``resilience`` policy, flaky pairs are retried in isolation,
    finished tiles are validated, and memory pressure degrades the
    write threshold instead of failing the run.
    """
    config = config or DEFAULT_CONFIG
    cost_model = cost_model or CostModel()
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")

    at_a = as_at_matrix(a, config)
    at_b = as_at_matrix(b, config)

    from ..density.estimate import estimate_product_density

    estimate = estimate_product_density(
        operand_density_map(at_a, config), operand_density_map(at_b, config)
    )
    level = water_level_threshold(estimate, memory_limit_bytes, config)
    write_threshold = max(cost_model.write_threshold, level.threshold)
    optimizer = _LockedOptimizer(cost_model, enabled=dynamic_conversion)

    row_cuts = at_a.row_cuts()
    col_cuts = at_b.col_cuts()
    failure = FailureReport()
    report = ParallelReport(workers=topology.sockets, failure=failure)
    busy_lock = threading.Lock()

    degradation = (
        DegradationState(estimate, memory_limit_bytes, config, write_threshold)
        if resilience is not None
        else None
    )
    runner = (
        ResilientPairRunner(resilience, failure, degradation)
        if resilience is not None
        else None
    )

    def compute_pair(
        ti: int, tj: int, force_sparse: bool, use_reference: bool = False
    ) -> _PairResult:
        """One full pair computation (one attempt); records busy time."""
        start = time.perf_counter()
        try:
            fire_hooks("pair", (ti, tj))
            r0, r1 = row_cuts[ti], row_cuts[ti + 1]
            c0, c1 = col_cuts[tj], col_cuts[tj + 1]
            a_strip = at_a.tiles_overlapping(r0, r1, 0, at_a.cols)
            b_strip = at_b.tiles_overlapping(0, at_b.rows, c0, c1)
            rho_c = estimate.region_density(r0, r1, c0, c1)
            threshold = (
                degradation.threshold if degradation is not None else write_threshold
            )
            c_kind = (
                StorageKind.SPARSE
                if force_sparse or rho_c < threshold
                else StorageKind.DENSE
            )
            accumulator = make_accumulator(c_kind, r1 - r0, c1 - c0)
            products = 0
            for a_tile in a_strip:
                for b_tile in b_strip:
                    k0 = max(a_tile.col0, b_tile.row0)
                    k1 = min(a_tile.col1, b_tile.row1)
                    if k0 >= k1:
                        continue
                    wa = Window(
                        max(r0, a_tile.row0) - a_tile.row0,
                        min(r1, a_tile.row1) - a_tile.row0,
                        k0 - a_tile.col0,
                        k1 - a_tile.col0,
                    )
                    wb = Window(
                        k0 - b_tile.row0,
                        k1 - b_tile.row0,
                        max(c0, b_tile.col0) - b_tile.col0,
                        min(c1, b_tile.col1) - b_tile.col0,
                    )
                    target = (max(r0, a_tile.row0) - r0, max(c0, b_tile.col0) - c0)
                    if use_reference:
                        reference_tile_product(
                            a_tile.data, wa, b_tile.data, wb, accumulator, *target
                        )
                    else:
                        payload_a, payload_b = optimizer.choose(
                            a_tile, b_tile, c_kind, wa.rows, wa.cols, wb.cols, rho_c
                        )
                        run_tile_product(
                            payload_a, wa, payload_b, wb, accumulator, *target
                        )
                    products += 1
            if not products:
                return _PairResult(None, 0)
            payload = accumulator.finalize()
            if not payload.nnz and c_kind is StorageKind.SPARSE:
                return _PairResult(None, products)
            tile = Tile(r0, c0, r1 - r0, c1 - c0, c_kind, payload)
            if not tile.nnz:
                return _PairResult(None, products)
            if (
                degradation is not None
                and not force_sparse
                and c_kind is StorageKind.DENSE
                and degradation.over_budget(tile.memory_bytes())
            ):
                raise MemoryLimitError(
                    f"pair {(ti, tj)} dense tile of {tile.memory_bytes()} B "
                    f"would exceed the memory budget"
                )
            return _PairResult(tile, products)
        finally:
            elapsed = time.perf_counter() - start
            name = threading.current_thread().name
            with busy_lock:
                report.worker_busy_seconds[name] = (
                    report.worker_busy_seconds.get(name, 0.0) + elapsed
                )

    def validate_pair(ti: int, tj: int, result: _PairResult) -> None:
        if result.tile is None:
            return
        r0, r1 = row_cuts[ti], row_cuts[ti + 1]
        c0, c1 = col_cuts[tj], col_cuts[tj + 1]
        validate_tile(
            result.tile.data,
            r1 - r0,
            c1 - c0,
            estimate.region_density(r0, r1, c0, c1),
            pair=(ti, tj),
        )

    def run_pair(ti: int, tj: int) -> Tile | None:
        pair = (ti, tj)
        try:
            if runner is None:
                with task_scope(pair, 1):
                    result = compute_pair(ti, tj, False)
            else:
                result = runner.run(
                    pair,
                    lambda force_sparse: compute_pair(ti, tj, force_sparse),
                    validate=lambda res: validate_pair(ti, tj, res),
                    fallback=lambda force_sparse: compute_pair(
                        ti, tj, force_sparse, use_reference=True
                    ),
                )
        except Exception as error:  # noqa: BLE001 — aggregated after the pool drains
            with busy_lock:
                failure.record_error(pair, error)
            return None
        with busy_lock:
            report.products += result.products
        if degradation is not None and result.tile is not None:
            r0, r1 = row_cuts[ti], row_cuts[ti + 1]
            c0, c1 = col_cuts[tj], col_cuts[tj + 1]
            degradation.note_completed(r0, r1, c0, c1, result.tile.memory_bytes())
        return result.tile

    pairs = [
        (ti, tj)
        for ti in range(len(row_cuts) - 1)
        for tj in range(len(col_cuts) - 1)
    ]
    report.pairs = len(pairs)
    if runner is None:
        failure.attempts = len(pairs)
    start = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=topology.sockets, thread_name_prefix="team"
    ) as pool:
        tiles = [tile for tile in pool.map(lambda p: run_pair(*p), pairs) if tile]
    report.wall_seconds = time.perf_counter() - start
    report.conversions = optimizer.stats.conversions
    if failure.pair_errors:
        raise TaskFailedError(
            aggregate_message(failure.pair_errors, len(pairs)),
            pair_errors=failure.pair_errors,
            report=report,
        )
    result = ATMatrix(a.rows, b.cols, config, tiles)
    if memory_limit_bytes is not None:
        from .atmult import enforce_memory_limit

        enforce_memory_limit(result, memory_limit_bytes)
    return result, report
