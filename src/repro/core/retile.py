"""Pre-multiplication re-tiling (the paper's future-work optimization).

Paper section IV-C observes that ATMULT loses on the hypersparse R7 in
the sparse x dense case because "the overhead results from the implicit
slicing of A in the multiplication, due to referenced submatrix
multiplications caused by the actual partitioning of B.  Such situations
could be avoided by a dynamic re-tiling of the left-hand matrix as a
part of a pre-multiplication optimization, which, however, is left for
future work."

This module implements that optimization: :func:`align_to_operand`
splits the tiles of ``A`` at the row cuts of ``B`` (the inner-dimension
boundaries), so every tile product in the subsequent ATMULT covers full
tile windows instead of binary-searched column ranges.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from ..config import SystemConfig
from ..formats.csr import CSRMatrix
from ..kinds import StorageKind
from .atmatrix import ATMatrix
from .tile import Tile


def split_tiles_at_cols(matrix: ATMatrix, cuts: list[int]) -> ATMatrix:
    """A copy of ``matrix`` whose tiles do not straddle the given column
    boundaries.

    ``cuts`` are column positions (matrix coordinates).  Tiles that span
    a cut are split into adjacent tiles with extracted payloads; tiles
    already contained between two cuts are shared, not copied.
    """
    interior = sorted({c for c in cuts if 0 < c < matrix.cols})
    new_tiles: list[Tile] = []
    for tile in matrix.tiles:
        lo = bisect_right(interior, tile.col0)
        hi = bisect_left(interior, tile.col1)
        inner = interior[lo:hi]
        if not inner:
            new_tiles.append(tile)
            continue
        boundaries = [tile.col0] + inner + [tile.col1]
        for col0, col1 in zip(boundaries[:-1], boundaries[1:], strict=True):
            if isinstance(tile.data, CSRMatrix):
                payload = tile.data.extract_window(
                    0, tile.rows, col0 - tile.col0, col1 - tile.col0
                )
                kind = StorageKind.SPARSE
            else:
                payload = tile.data.extract_window(
                    0, tile.rows, col0 - tile.col0, col1 - tile.col0
                )
                kind = StorageKind.DENSE
            if payload.nnz == 0 and kind is StorageKind.SPARSE:
                continue  # empty slices need no tile
            new_tiles.append(
                Tile(
                    tile.row0,
                    col0,
                    tile.rows,
                    col1 - col0,
                    kind,
                    payload,
                    numa_node=tile.numa_node,
                )
            )
    return ATMatrix(matrix.rows, matrix.cols, matrix.config, new_tiles)


def align_to_operand(a: ATMatrix, b: ATMatrix) -> ATMatrix:
    """Re-tile ``A`` so its column boundaries match ``B``'s row cuts.

    The returned matrix multiplies against ``B`` without any referenced
    column slicing on the inner dimension — the paper's proposed
    pre-multiplication optimization for cases like R7 x dense.
    """
    return split_tiles_at_cols(a, b.row_cuts())


def retile(
    matrix: ATMatrix,
    config: SystemConfig | None = None,
    *,
    read_threshold: float = 0.25,
) -> ATMatrix:
    """Fully re-partition a matrix under a (possibly different) config.

    Runs the complete builder pipeline on the flattened content; useful
    after many accumulative writes have degraded an output matrix's
    layout, or to move a matrix between machines with different cache
    geometry.
    """
    from .builder import build_at_matrix

    return build_at_matrix(
        matrix.to_coo(), config or matrix.config, read_threshold=read_threshold
    )
