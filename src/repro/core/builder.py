"""Builder pipeline: raw COO staging table -> AT Matrix.

Implements the full partitioning process of paper section II-C with its
four components — loading (staging), Z-curve reordering, identification
(Alg. 1 recursion) and tile materialization — and records per-component
wall-clock durations, which Fig. 7 of the paper reports relative to one
sparse multiplication.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import DEFAULT_CONFIG, SystemConfig
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind
from ..observe import session as observe_session
from ..zorder.morton import morton_encode
from ..zorder.zspace import ZSpace, block_counts
from .atmatrix import ATMatrix
from .partition import QuadtreePartitioner, TileSpec
from .tile import Tile

logger = logging.getLogger("repro.partition")


@dataclass
class BuildReport:
    """Per-component durations of one partitioning run (seconds)."""

    sort_seconds: float = 0.0
    block_count_seconds: float = 0.0
    recursion_seconds: float = 0.0
    materialize_seconds: float = 0.0
    tiles: int = 0

    @property
    def total_seconds(self) -> float:
        return (
            self.sort_seconds
            + self.block_count_seconds
            + self.recursion_seconds
            + self.materialize_seconds
        )

    def as_dict(self) -> dict[str, float]:
        """Component durations keyed by the paper's Fig. 7 labels."""
        return {
            "z_sort": self.sort_seconds,
            "zblockcnts": self.block_count_seconds,
            "recursive_partitioning": self.recursion_seconds,
            "materialization": self.materialize_seconds,
        }


@dataclass
class ATMatrixBuilder:
    """Converts staged matrices into AT Matrices under a system config."""

    config: SystemConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    read_threshold: float = 0.25

    def build(self, staged: COOMatrix) -> ATMatrix:
        """Partition a staged COO matrix into an AT Matrix."""
        matrix, _ = self.build_with_report(staged)
        return matrix

    def build_with_report(self, staged: COOMatrix) -> tuple[ATMatrix, BuildReport]:
        """Partition and return the per-component timing report."""
        report = BuildReport()
        assert self.config.b_atomic is not None
        zspace = ZSpace(staged.rows, staged.cols, self.config.b_atomic)

        start = time.perf_counter()
        with observe_session.maybe_span("partition.z_sort", "partition"):
            zordered = staged.z_ordered()
        report.sort_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with observe_session.maybe_span("partition.block_counts", "partition"):
            zcounts = block_counts(zordered.row_ids, zordered.col_ids, zspace)
        report.block_count_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with observe_session.maybe_span("partition.recursion", "partition"):
            partitioner = QuadtreePartitioner(
                self.config, read_threshold=self.read_threshold
            )
            specs = partitioner.partition(zcounts, zspace)
        report.recursion_seconds = time.perf_counter() - start

        start = time.perf_counter()
        with observe_session.maybe_span("partition.materialize", "partition"):
            tiles = _materialize_tiles(zordered, zspace, specs)
        report.materialize_seconds = time.perf_counter() - start
        report.tiles = len(tiles)
        obs = observe_session.current()
        if obs is not None:
            obs.metrics.counter("partition.tiles").inc(len(tiles))
            obs.metrics.counter("partition.nnz").inc(staged.nnz)
            dense_tiles = sum(
                1 for tile in tiles if tile.kind is StorageKind.DENSE
            )
            obs.metrics.counter("partition.dense_tiles").inc(dense_tiles)

        logger.debug(
            "partitioned %dx%d (nnz=%d) into %d tiles in %.3fs "
            "(sort %.3fs, counts %.3fs, recursion %.3fs, materialize %.3fs)",
            staged.rows, staged.cols, staged.nnz, len(tiles),
            report.total_seconds, report.sort_seconds,
            report.block_count_seconds, report.recursion_seconds,
            report.materialize_seconds,
        )
        return ATMatrix(staged.rows, staged.cols, self.config, tiles), report


def _materialize_tiles(
    zordered: COOMatrix, zspace: ZSpace, specs: list[TileSpec]
) -> list[Tile]:
    """Copy Z-sorted staging data into the physical tile payloads.

    Because the staging table is Z-sorted and every tile is a quadtree
    quadrant, each tile's elements form one contiguous run; the run is
    located with two binary searches on the element Z-codes.
    """
    if not specs:
        return []
    zvalues = morton_encode(zordered.row_ids, zordered.col_ids)
    tiles: list[Tile] = []
    b = zspace.b_atomic
    for spec in specs:
        row0, row1, col0, col1 = spec.element_bounds(zspace)
        rows = row1 - row0
        cols = col1 - col0
        # Element Z-code range of this quadrant: the quadrant covering
        # size_blocks**2 blocks spans (size_blocks * b)**2 element codes.
        z_lo = int(morton_encode(np.array([row0]), np.array([col0]))[0])
        span = (spec.size_blocks * b) ** 2
        lo = int(np.searchsorted(zvalues, z_lo, side="left"))
        hi = int(np.searchsorted(zvalues, z_lo + span, side="left"))
        tile_rows = zordered.row_ids[lo:hi] - row0
        tile_cols = zordered.col_ids[lo:hi] - col0
        tile_vals = zordered.values[lo:hi]
        if spec.kind is StorageKind.DENSE:
            array = np.zeros((rows, cols), dtype=np.float64)
            np.add.at(array, (tile_rows, tile_cols), tile_vals)
            payload: CSRMatrix | DenseMatrix = DenseMatrix(array, copy=False)
        else:
            payload = CSRMatrix.from_arrays_unsorted(
                rows, cols, tile_rows, tile_cols, tile_vals
            )
        tiles.append(Tile(row0, col0, rows, cols, spec.kind, payload))
    return tiles


def build_at_matrix(
    staged: COOMatrix,
    config: SystemConfig | None = None,
    *,
    read_threshold: float = 0.25,
) -> ATMatrix:
    """One-call convenience wrapper: staged COO -> AT Matrix."""
    builder = ATMatrixBuilder(config or DEFAULT_CONFIG, read_threshold)
    return builder.build(staged)
