"""The dynamic multiplication optimizer (paper Alg. 2, line 9).

Before each tile product the optimizer asks the cost model for the
cheapest input-representation pair, charging any representation change
its one-off conversion cost.  Conversions are cached per source tile so a
tile converted for one product is reused by every later product in the
same ATMULT invocation — the paper's worst case is therefore one
conversion per tile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cost.model import CostModel
from ..formats.convert import csr_to_dense, dense_to_csr
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind, kernel_name
from ..observe import session as observe_session
from .tile import Tile, TilePayload


@dataclass
class OptimizerStats:
    """Conversion bookkeeping of one ATMULT run."""

    decisions: int = 0
    conversions: int = 0
    conversion_seconds: float = 0.0
    decision_seconds: float = 0.0
    #: per-kernel count of *decisions* — every attempt counts, including
    #: products later retried, so this can exceed the report's counts
    kernel_counts: dict[str, int] = field(default_factory=dict)

    def record_kernel(self, name: str) -> None:
        self.kernel_counts[name] = self.kernel_counts.get(name, 0) + 1


class DynamicOptimizer:
    """Per-product kernel selection with cached just-in-time conversions."""

    def __init__(self, cost_model: CostModel, *, enabled: bool = True) -> None:
        self.cost_model = cost_model
        self.enabled = enabled
        self.stats = OptimizerStats()
        self._converted: dict[int, TilePayload] = {}
        self._decision_cache: dict[tuple, tuple[StorageKind, StorageKind]] = {}

    def choose(
        self,
        a_tile: Tile,
        b_tile: Tile,
        c_kind: StorageKind,
        m: int,
        k: int,
        n: int,
        rho_c: float,
    ) -> tuple[TilePayload, TilePayload]:
        """Payloads to multiply (possibly converted copies).

        ``m, k, n`` are the dimensions of the *windowed* product; operand
        densities are taken from the full tiles (the optimizer's estimate
        of the windowed part).
        """
        if not self.enabled:
            self._record_kernel(kernel_name(a_tile.kind, b_tile.kind, c_kind))
            return a_tile.data, b_tile.data
        start = time.perf_counter()
        # Quantized memoization: densities are bucketed to 2 significant
        # decimals — far finer than any cost-crossover the model exhibits —
        # so repeated products over similar tiles skip the 4-way search.
        key = (
            a_tile.kind,
            b_tile.kind,
            c_kind,
            m,
            k,
            n,
            round(a_tile.density, 2),
            round(b_tile.density, 2),
            round(rho_c, 2),
        )
        cached = self._decision_cache.get(key)
        if cached is None:
            kind_a, kind_b, _cost = self.cost_model.cheapest_input_kinds(
                a_tile.kind,
                b_tile.kind,
                c_kind,
                m,
                k,
                n,
                a_tile.density,
                b_tile.density,
                rho_c,
            )
            self._decision_cache[key] = (kind_a, kind_b)
        else:
            kind_a, kind_b = cached
        self.stats.decisions += 1
        self.stats.decision_seconds += time.perf_counter() - start
        self._record_kernel(kernel_name(kind_a, kind_b, c_kind))
        payload_a = self._payload_as(a_tile, kind_a)
        payload_b = self._payload_as(b_tile, kind_b)
        return payload_a, payload_b

    def _record_kernel(self, name: str) -> None:
        """Count one kernel decision (overridden with a lock in parallel)."""
        self.stats.record_kernel(name)

    def _payload_as(self, tile: Tile, kind: StorageKind) -> TilePayload:
        if kind is tile.kind:
            return tile.data
        cached = self._converted.get(id(tile))
        if cached is not None:
            return cached
        start = time.perf_counter()
        if kind is StorageKind.DENSE:
            assert isinstance(tile.data, CSRMatrix)
            converted: TilePayload = csr_to_dense(tile.data)
        else:
            assert isinstance(tile.data, DenseMatrix)
            converted = dense_to_csr(tile.data)
        elapsed = time.perf_counter() - start
        self.stats.conversions += 1
        self.stats.conversion_seconds += elapsed
        observe_session.counter("optimizer.conversions").inc()
        observe_session.histogram("optimizer.conversion_seconds").observe(elapsed)
        self._converted[id(tile)] = converted
        return converted
