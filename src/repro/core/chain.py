"""Cost-based sparse matrix chain multiplication.

The paper's predecessor work SpMachO [9] optimizes *expressions* of
sparse matrix products; the paper itself notes that "the predefinition
of matrix storage types ... has a negative impact on the performance,
e.g. as observed for sparse matrix chain multiplications [9]".  This
module brings that capability to AT Matrices: given a chain
``A1 @ A2 @ ... @ An``, it propagates density-map estimates through every
possible parenthesization with the classic interval dynamic program, but
scores each split with the *kernel cost model* applied to the estimated
operand densities instead of the dense flop count ``m*k*n``.

The returned plan is executed with ATMULT, so every intermediate product
is itself an adaptive tile matrix with cost-optimized kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import pairwise
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observe import Observation
    from ..resilience.retry import RetryPolicy

from .. import _deprecations
from ..config import DEFAULT_CONFIG, SystemConfig
from ..cost.model import CostModel
from ..density.estimate import estimate_product_density
from ..density.map import DensityMap
from ..engine.cache import PlanCache
from ..engine.options import UNSET, MultiplyOptions, coerce_options
from ..errors import ShapeError
from ..kinds import StorageKind
from ..observe import session as observe_session
from .atmatrix import ATMatrix
from .atmult import MatrixOperand, atmult, operand_density_map
from .operands import as_at_matrix
from .report import BaseReport, MultiplyReport


@dataclass(frozen=True)
class ChainPlan:
    """An optimized parenthesization of a matrix chain.

    ``splits[i][j]`` holds the split point of the optimal plan for the
    sub-chain ``i..j`` (inclusive); ``cost`` is the model's predicted
    seconds for the whole chain; ``order`` lists the multiplications in
    execution order as ``(i, k, j)`` triples meaning
    ``result(i..j) = result(i..k) @ result(k+1..j)``.
    """

    cost: float
    splits: tuple[tuple[int, ...], ...]
    order: tuple[tuple[int, int, int], ...]

    def parenthesization(self, names: list[str] | None = None) -> str:
        """Human-readable parenthesization, e.g. ``((A B) C)``."""
        n = len(self.splits)
        names = names or [f"A{i + 1}" for i in range(n)]

        def render(i: int, j: int) -> str:
            if i == j:
                return names[i]
            k = self.splits[i][j]
            return f"({render(i, k)} {render(k + 1, j)})"

        return render(0, n - 1)


def _predicted_product_cost(
    model: CostModel, a: DensityMap, b: DensityMap, estimate: DensityMap
) -> float:
    """Whole-product cost from aggregate densities (optimizer's view)."""
    rho_a = a.overall_density()
    rho_b = b.overall_density()
    rho_c = estimate.overall_density()
    best = min(
        model.product_cost(ka, kb, kc, a.rows, a.cols, b.cols, rho_a, rho_b, rho_c)
        for ka in StorageKind
        for kb in StorageKind
        for kc in StorageKind
    )
    return best


def plan_chain(
    operands: list[MatrixOperand],
    *,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    structural: bool = False,
) -> ChainPlan:
    """Find the cheapest parenthesization of ``A1 @ A2 @ ... @ An``.

    Uses the interval DP over the chain with density-map propagation:
    the density estimate of every sub-chain result feeds both the cost
    of the enclosing products and their own estimates — mirroring how a
    relational optimizer propagates cardinalities through join trees.

    ``structural=True`` scores the DP on the planner's structural
    density view (dense payloads contribute their fingerprint-quantized
    density), making the returned plan a pure function of the operands'
    structure fingerprints — what the fused chain cache requires.
    """
    config = config or DEFAULT_CONFIG
    cost_model = cost_model or CostModel()
    n = len(operands)
    if n == 0:
        raise ShapeError(
            "empty matrix chain: need at least one operand, got 0"
        )
    for position, (left, right) in enumerate(pairwise(operands)):
        if left.cols != right.rows:
            raise ShapeError(
                f"chain dimension mismatch at operand {position}: "
                f"{left.shape} then {right.shape}"
            )

    maps: list[list[DensityMap | None]] = [[None] * n for _ in range(n)]
    costs = [[0.0] * n for _ in range(n)]
    splits = [[0] * n for _ in range(n)]
    for i, operand in enumerate(operands):
        maps[i][i] = operand_density_map(operand, config, structural=structural)

    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            best_cost = None
            best_split = i
            best_map = None
            for k in range(i, j):
                left = maps[i][k]
                right = maps[k + 1][j]
                assert left is not None and right is not None
                estimate = estimate_product_density(left, right)
                cost = (
                    costs[i][k]
                    + costs[k + 1][j]
                    + _predicted_product_cost(cost_model, left, right, estimate)
                )
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_split = k
                    best_map = estimate
            assert best_cost is not None and best_map is not None
            costs[i][j] = best_cost
            splits[i][j] = best_split
            maps[i][j] = best_map

    order: list[tuple[int, int, int]] = []

    def emit(i: int, j: int) -> None:
        if i == j:
            return
        k = splits[i][j]
        emit(i, k)
        emit(k + 1, j)
        order.append((i, k, j))

    emit(0, n - 1)
    return ChainPlan(
        cost=costs[0][n - 1],
        splits=tuple(tuple(row) for row in splits),
        order=tuple(order),
    )


@dataclass
class ChainReport(BaseReport):
    """Aggregate report of one chain execution.

    Extends :class:`~repro.core.report.BaseReport` with the executed
    :class:`ChainPlan` (``.plan``) and the per-step
    :class:`~repro.core.report.MultiplyReport` list (``.steps``); the
    base phase/kernel/conversion counters hold the sums over all steps.
    For compatibility with the pre-redesign ``(result, plan)`` return
    shape, the plan's ``cost``/``splits``/``order`` and
    :meth:`parenthesization` are exposed directly on the report.
    """

    plan: ChainPlan | None = None
    steps: list[MultiplyReport] = field(default_factory=list)
    #: whether the chain replayed as one fused interleaved execution
    fused: bool = False
    #: whether the whole fused plan came from one ``PlanCache`` hit
    plan_cache_hit: bool = False
    #: intermediate tiles released eagerly during fused execution
    intermediates_freed: int = 0
    #: peak bytes of intermediate tiles resident during fused execution
    peak_intermediate_bytes: int = 0

    def _plan(self) -> ChainPlan:
        assert self.plan is not None
        return self.plan

    @property
    def cost(self) -> float:
        return self._plan().cost

    @property
    def splits(self) -> tuple[tuple[int, ...], ...]:
        return self._plan().splits

    @property
    def order(self) -> tuple[tuple[int, int, int], ...]:
        return self._plan().order

    def parenthesization(self, names: list[str] | None = None) -> str:
        return self._plan().parenthesization(names)

    def merge_step(self, step: MultiplyReport) -> None:
        """Fold one multiplication's report into the aggregate."""
        self.steps.append(step)
        for name, seconds in step.phase_seconds.items():
            self.add_phase(name, seconds)
        self.merge_kernel_counts(step.kernel_counts)
        self.conversions += step.conversions


def multiply_chain(
    operands: list[MatrixOperand],
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    plan_cache: PlanCache | None = None,
    memory_limit_bytes: float | None = UNSET,
    dynamic_conversion: bool = UNSET,
    use_estimation: bool = UNSET,
    resilience: RetryPolicy | None = UNSET,
    observer: Observation | None = UNSET,
    return_report: bool = True,
) -> tuple[ATMatrix, "ChainReport | ChainPlan"]:
    """Plan and execute a matrix chain with ATMULT.

    Returns ``(product, report)`` where the :class:`ChainReport` carries
    the executed :class:`ChainPlan` (``report.plan``, with ``order``/
    ``parenthesization()`` available directly on the report) plus the
    aggregated phase and kernel statistics of every step.  Each
    intermediate is an AT Matrix, so later products in the chain keep
    benefiting from the tile-granular optimization; with a plan cache in
    ``options`` every step's plan is reused across repeated chain runs.

    With a plan cache (and no resilience/checkpoint/memory-limit
    context), the chain routes through the engine's fused chain planner:
    the first run records a whole-chain
    :class:`~repro.engine.plan.FusedChainPlan` and every later run of
    the same chain replays it from one cache hit with cross-hop
    interleaved execution (``report.fused`` / ``report.plan_cache_hit``
    say which path ran).

    ``return_report=False`` restores the pre-redesign
    ``(product, ChainPlan)`` shape and is **deprecated** (documented
    2.0 removal); the legacy execution keywords (``memory_limit_bytes``
    etc.) and the ``config=``/``cost_model=``/``plan_cache=`` context
    parameters are likewise deprecated in favor of
    ``options=MultiplyOptions(...)`` or :class:`~repro.engine.session.Session`.
    """
    supplied_context = [
        name
        for name, value in (
            ("config", config),
            ("cost_model", cost_model),
            ("plan_cache", plan_cache),
        )
        if value is not None
    ]
    if supplied_context:
        names = ", ".join(supplied_context)
        _deprecations.warn_once(
            f"multiply_chain:context:{names}",
            f"multiply_chain(): the {names} parameter(s) are deprecated; "
            "fold them into options=MultiplyOptions(...) or use "
            "Session.multiply_chain",
        )
    opts = coerce_options(
        options,
        where="multiply_chain",
        config=config,
        cost_model=cost_model,
        plan_cache=plan_cache,
        memory_limit_bytes=memory_limit_bytes,
        dynamic_conversion=dynamic_conversion,
        use_estimation=use_estimation,
        resilience=resilience,
        observer=observer,
    )
    if not return_report:
        _deprecations.warn_once(
            "multiply_chain:return_report",
            "multiply_chain(return_report=False) is deprecated; the default "
            "now returns (result, ChainReport) — the report exposes the "
            "ChainPlan as report.plan",
        )
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()

    fusable = (
        len(operands) >= 2
        and opts.plan_cache is not None
        and opts.resilience is None
        and opts.checkpoint is None
        and opts.memory_limit_bytes is None
    )
    if fusable:
        from ..engine.api import run_chain

        with observe_session.resolve(opts.observer) as obs:
            product, report, _fused = run_chain(operands, options=opts, obs=obs)
        return (product, report) if return_report else (product, report._plan())

    with observe_session.resolve(opts.observer) as obs:
        report = ChainReport(observation=obs)
        with observe_session.tracer_span(obs, "chain_plan"):
            plan = plan_chain(
                operands, config=resolved_config, cost_model=resolved_model
            )
        report.plan = plan
        if len(operands) == 1:
            single = as_at_matrix(operands[0], resolved_config)
            return (single, report) if return_report else (single, plan)

        results: dict[tuple[int, int], MatrixOperand] = {
            (i, i): operand for i, operand in enumerate(operands)
        }
        product: ATMatrix | None = None
        for i, k, j in plan.order:
            left = results[(i, k)]
            right = results[(k + 1, j)]
            product, step_report = atmult(left, right, options=opts)
            report.merge_step(step_report)
            results[(i, j)] = product
        assert product is not None
        return (product, report) if return_report else (product, plan)
