"""The paper's primary contribution: AT MATRIX and the ATMULT operator."""

from .tile import Tile
from .atmatrix import ATMatrix
from .partition import QuadtreePartitioner, TileSpec
from .builder import ATMatrixBuilder, BuildReport, build_at_matrix
from .fixed import fixed_grid_at_matrix
from .optimizer import DynamicOptimizer, OptimizerStats
from .report import BaseReport, MultiplyReport, ParallelReport
from .atmult import atmult, enforce_memory_limit, multiply
from .chain import ChainPlan, ChainReport, multiply_chain, plan_chain
from .operands import MatrixOperand, as_at_matrix, operand_density_map
from .retile import align_to_operand, retile, split_tiles_at_cols
from .arith import add, scale
from .atmv import PowerIterationResult, atmv, atmv_transposed, power_iteration
from .parallel import parallel_atmult

__all__ = [
    "BaseReport",
    "Tile",
    "ATMatrix",
    "QuadtreePartitioner",
    "TileSpec",
    "ATMatrixBuilder",
    "BuildReport",
    "build_at_matrix",
    "fixed_grid_at_matrix",
    "DynamicOptimizer",
    "OptimizerStats",
    "MultiplyReport",
    "atmult",
    "multiply",
    "enforce_memory_limit",
    "MatrixOperand",
    "as_at_matrix",
    "operand_density_map",
    "ChainPlan",
    "ChainReport",
    "plan_chain",
    "multiply_chain",
    "align_to_operand",
    "retile",
    "split_tiles_at_cols",
    "add",
    "scale",
    "atmv",
    "atmv_transposed",
    "power_iteration",
    "PowerIterationResult",
    "parallel_atmult",
    "ParallelReport",
]
