"""Matrix tiles: the physical units of the AT Matrix.

A tile is the bounding box of a physical representation covering a
quadtree-aligned region of the matrix (paper section II-B).  Tiles are
square in *block* space (their edge is a power-of-two multiple of
``b_atomic``) but may be clipped by the real matrix bounds, so the stored
payload can be rectangular.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FormatError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind

TilePayload = CSRMatrix | DenseMatrix


@dataclass
class Tile:
    """One materialized tile of an AT Matrix.

    Attributes
    ----------
    row0, col0:
        Element offset of the tile's upper-left corner in the matrix.
    rows, cols:
        Clipped element extent of the tile.
    kind:
        Physical representation (:class:`StorageKind`).
    data:
        The payload, a :class:`CSRMatrix` or :class:`DenseMatrix` whose
        shape equals ``(rows, cols)``.
    numa_node:
        Simulated memory node the payload lives on (set during the
        round-robin tile-row distribution, paper section III-F).
    """

    row0: int
    col0: int
    rows: int
    cols: int
    kind: StorageKind
    data: TilePayload
    numa_node: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise FormatError(f"tile extent must be positive, got {self.extent}")
        if self.data.shape != (self.rows, self.cols):
            raise FormatError(
                f"payload shape {self.data.shape} != tile extent {(self.rows, self.cols)}"
            )
        expected = (
            StorageKind.SPARSE if isinstance(self.data, CSRMatrix) else StorageKind.DENSE
        )
        if self.kind is not expected:
            raise FormatError(f"kind {self.kind} inconsistent with payload {type(self.data)}")

    # -- geometry ---------------------------------------------------------
    @property
    def row1(self) -> int:
        return self.row0 + self.rows

    @property
    def col1(self) -> int:
        return self.col0 + self.cols

    @property
    def extent(self) -> tuple[int, int, int, int]:
        """``(row0, row1, col0, col1)`` half-open element bounds."""
        return self.row0, self.row1, self.col0, self.col1

    def overlaps(self, row0: int, row1: int, col0: int, col1: int) -> bool:
        """Whether the tile intersects the half-open element region."""
        return self.row0 < row1 and row0 < self.row1 and self.col0 < col1 and col0 < self.col1

    # -- payload statistics -------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.data.nnz

    @property
    def density(self) -> float:
        return self.nnz / (self.rows * self.cols)

    @property
    def structural_density(self) -> float:
        """Density exactly as the payload's structure fingerprint captures it.

        A CSR pattern is fingerprinted exactly, so the sparse density is
        the real one; a dense payload is fingerprinted over shape plus
        its density quantized to two decimals, so the planner sees that
        quantized value.  Every planning decision must consume this
        instead of :attr:`density` — plan content has to be a pure
        function of the plan key, or a cached plan would silently carry
        decisions made for values the replay operands no longer hold
        (the classic failure: a solver's all-zero start vector planning
        sparse kernels for every later, fully-populated iterate).
        """
        if self.kind is StorageKind.DENSE:
            return round(self.density, 2)
        return self.density

    def memory_bytes(self) -> int:
        """Paper-model footprint of the payload."""
        return self.data.memory_bytes()

    def with_payload(self, data: TilePayload) -> Tile:
        """A tile at the same position with a different representation."""
        kind = StorageKind.SPARSE if isinstance(data, CSRMatrix) else StorageKind.DENSE
        return Tile(self.row0, self.col0, self.rows, self.cols, kind, data, self.numa_node)

    def __repr__(self) -> str:
        return (
            f"Tile([{self.row0}:{self.row1}, {self.col0}:{self.col1}], "
            f"{self.kind.code}, nnz={self.nnz})"
        )
