"""The shared, instrumentation-backed execution report.

The paper's evaluation (Figs. 8b, 9c-d, 10) attributes runtime to
estimation, optimization, conversions and individual kernels.  Before
this module, :class:`MultiplyReport` and :class:`ParallelReport` grew
those breakdowns independently and diverged; now both extend one
:class:`BaseReport` with a canonical shape:

* ``phase_seconds`` — named phase durations (``"estimate"``,
  ``"optimize"``, ``"multiply"``); ``total_seconds`` is their sum;
* ``kernel_counts`` — per-kernel dispatch counts;
* ``conversions`` — just-in-time representation conversions;
* ``failure`` — the resilience accounting
  (:class:`~repro.resilience.report.FailureReport`);
* ``observation`` — the attached
  :class:`~repro.observe.Observation` when the run was traced, else
  ``None``.

The pre-redesign attribute names (``estimate_seconds``,
``optimize_seconds``, ``multiply_seconds``, ``wall_seconds``) remain
available as property aliases over ``phase_seconds`` — they are
**deprecated** in favor of ``phase_seconds``/``total_seconds`` and warn
once per attribute through :mod:`repro._deprecations`; new code and new
phases should use the dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .. import _deprecations
from ..density.water_level import WaterLevelResult
from ..observe import Observation
from ..resilience.report import FailureReport
from ..topology.trace import TaskRecord

#: Canonical phase names shared by the sequential and parallel operators.
PHASE_ESTIMATE = "estimate"
PHASE_OPTIMIZE = "optimize"
PHASE_MULTIPLY = "multiply"


@dataclass
class BaseReport:
    """Common shape of every execution report the library returns."""

    #: per-phase wall seconds, keyed by canonical phase name
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: dispatch count per kernel name (e.g. ``"spspd_gemm"``)
    kernel_counts: dict[str, int] = field(default_factory=dict)
    #: just-in-time tile representation conversions performed
    conversions: int = 0
    #: pairs actually executed this run (excludes checkpoint-resumed pairs)
    pairs_executed: int = 0
    #: checkpoint journal flushes performed during the run
    checkpoint_flushes: int = 0
    #: structured resilience accounting (always present; empty on clean runs)
    failure: FailureReport = field(default_factory=FailureReport)
    #: the observation session the run recorded into (``None`` untraced)
    observation: Observation | None = None

    # -- canonical accessors ---------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Sum of all phase durations."""
        return sum(self.phase_seconds.values())

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into the named phase.

        Only the orchestrating thread writes phases; worker threads
        report their timings through ``busy_hook``/``merge_outcome``
        under the executor's ``busy_lock``.
        """
        self.phase_seconds[name] = (  # repro-lint: disable=RPR012
            self.phase_seconds.get(name, 0.0) + seconds
        )

    def phase(self, name: str) -> float:
        """Duration of one phase (0.0 when the phase never ran)."""
        return self.phase_seconds.get(name, 0.0)

    def phase_fraction(self, name: str) -> float:
        """Share of ``total_seconds`` spent in the named phase."""
        total = self.total_seconds
        return self.phase(name) / total if total else 0.0

    def count_kernel(self, name: str, count: int = 1) -> None:
        # Threaded pair execution merges its per-attempt kernel counts
        # through run_pair_captured under the executor's busy_lock; the
        # sequential/supervisor paths are single-writer.
        self.kernel_counts[name] = (  # repro-lint: disable=RPR012
            self.kernel_counts.get(name, 0) + count
        )

    def merge_kernel_counts(self, counts: dict[str, int]) -> None:
        for name, count in counts.items():
            self.count_kernel(name, count)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable summary (subclasses extend this)."""
        return {
            "phase_seconds": dict(self.phase_seconds),
            "total_seconds": self.total_seconds,
            "kernel_counts": dict(self.kernel_counts),
            "conversions": self.conversions,
            "pairs_executed": self.pairs_executed,
            "pairs_resumed": self.failure.pairs_resumed,
            "checkpoint_flushes": self.checkpoint_flushes,
            "failure": self.failure.summary(),
            "observed": self.observation is not None,
        }

    # -- deprecated aliases ----------------------------------------------
    # Old code read/wrote these as plain dataclass fields; they now view
    # phase_seconds (so both spellings stay consistent forever) and warn
    # once per attribute through the shared deprecation funnel.
    def _alias_warning(self, name: str, phase: str) -> None:
        _deprecations.warn_once(
            f"BaseReport.{name}",
            f"report.{name} is deprecated; use "
            f'report.phase_seconds["{phase}"] / report.add_phase(...) instead',
            stacklevel=4,
        )

    @property
    def estimate_seconds(self) -> float:
        """Deprecated alias of ``phase_seconds["estimate"]``."""
        self._alias_warning("estimate_seconds", PHASE_ESTIMATE)
        return self.phase(PHASE_ESTIMATE)

    @estimate_seconds.setter
    def estimate_seconds(self, value: float) -> None:
        self._alias_warning("estimate_seconds", PHASE_ESTIMATE)
        self.phase_seconds[PHASE_ESTIMATE] = value

    @property
    def optimize_seconds(self) -> float:
        """Deprecated alias of ``phase_seconds["optimize"]``."""
        self._alias_warning("optimize_seconds", PHASE_OPTIMIZE)
        return self.phase(PHASE_OPTIMIZE)

    @optimize_seconds.setter
    def optimize_seconds(self, value: float) -> None:
        self._alias_warning("optimize_seconds", PHASE_OPTIMIZE)
        self.phase_seconds[PHASE_OPTIMIZE] = value

    @property
    def multiply_seconds(self) -> float:
        """Deprecated alias of ``phase_seconds["multiply"]``."""
        self._alias_warning("multiply_seconds", PHASE_MULTIPLY)
        return self.phase(PHASE_MULTIPLY)

    @multiply_seconds.setter
    def multiply_seconds(self, value: float) -> None:
        self._alias_warning("multiply_seconds", PHASE_MULTIPLY)
        self.phase_seconds[PHASE_MULTIPLY] = value

    @property
    def estimate_fraction(self) -> float:
        """Share of total runtime spent estimating densities."""
        return self.phase_fraction(PHASE_ESTIMATE)

    @property
    def optimize_fraction(self) -> float:
        """Share of total runtime spent optimizing (incl. conversions)."""
        return self.phase_fraction(PHASE_OPTIMIZE)


@dataclass
class MultiplyReport(BaseReport):
    """Report of one sequential ATMULT run.

    The three canonical phases mirror the paper's runtime breakdown
    (Figs. 8b, 9c, 9d): density estimation, dynamic optimization
    (decisions, water level and just-in-time conversions), and the tile
    multiplications proper.
    """

    write_threshold: float = 0.0
    water_level: WaterLevelResult | None = None
    tasks: list[TaskRecord] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        payload = super().as_dict()
        payload["write_threshold"] = self.write_threshold
        payload["tasks"] = len(self.tasks)
        return payload


@dataclass
class ParallelReport(BaseReport):
    """Report of one parallel ATMULT run.

    ``phase_seconds["multiply"]`` holds the pair-loop wall time (the
    pre-redesign ``wall_seconds``); per-worker busy time additionally
    lands in ``worker_busy_seconds`` for the efficiency metric.
    """

    pairs: int = 0
    products: int = 0
    workers: int = 1
    #: busy seconds accumulated per worker thread
    worker_busy_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        """Deprecated alias of ``phase_seconds["multiply"]``."""
        self._alias_warning("wall_seconds", PHASE_MULTIPLY)
        return self.phase(PHASE_MULTIPLY)

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self._alias_warning("wall_seconds", PHASE_MULTIPLY)
        self.phase_seconds[PHASE_MULTIPLY] = value

    @property
    def parallel_efficiency(self) -> float:
        """Total busy time over (workers x pair-loop wall time)."""
        wall = self.phase(PHASE_MULTIPLY)
        if not self.worker_busy_seconds or wall == 0.0:
            return 1.0
        busy = sum(self.worker_busy_seconds.values())
        return busy / (self.workers * wall)

    def as_dict(self) -> dict[str, Any]:
        payload = super().as_dict()
        payload["pairs"] = self.pairs
        payload["products"] = self.products
        payload["workers"] = self.workers
        payload["worker_busy_seconds"] = dict(self.worker_busy_seconds)
        payload["parallel_efficiency"] = self.parallel_efficiency
        return payload
