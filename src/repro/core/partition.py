"""Recursive quadtree partitioning (paper Algorithm 1).

The partitioner recurses over the Z-ordered atomic-block count array
(``ZBlockCnts``).  On the way back up it *melts* four homogeneous child
quadrants — same density type, melted tile still within the maximum-size
criteria of Eqs. (1)/(2) — into a four-times-larger logical block, and
*materializes* tiles whenever heterogeneity or a size bound stops the
melting.  Out-of-bounds Z-cells (padding) are ignored.

The output is a list of :class:`TileSpec` — tile positions/sizes in block
space plus the decided storage kind — which the builder then materializes
from the Z-sorted staging data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import PartitionError
from ..kinds import StorageKind
from ..zorder.morton import morton_decode_scalar
from ..zorder.zspace import OUT_OF_BOUNDS, ZSpace


class _Status(enum.Enum):
    OUT_OF_BOUNDS = "out_of_bounds"
    FORWARD = "forward"
    MATERIALIZED = "materialized"


@dataclass(frozen=True)
class TileSpec:
    """A tile decided by the partitioner, in block-space coordinates.

    ``block_row0``/``block_col0`` locate the tile on the atomic-block
    grid; ``size_blocks`` is its (power-of-two) edge length in blocks.
    """

    block_row0: int
    block_col0: int
    size_blocks: int
    nnz: int
    kind: StorageKind

    def element_bounds(self, zspace: ZSpace) -> tuple[int, int, int, int]:
        """Clipped half-open element bounds ``(row0, row1, col0, col1)``."""
        b = zspace.b_atomic
        row0 = self.block_row0 * b
        col0 = self.block_col0 * b
        row1 = min(zspace.rows, row0 + self.size_blocks * b)
        col1 = min(zspace.cols, col0 + self.size_blocks * b)
        return row0, row1, col0, col1


@dataclass(frozen=True)
class _NodeResult:
    status: _Status
    nnz: int = 0
    area: int = 0  # real (clipped) element cells covered


class QuadtreePartitioner:
    """Runs paper Alg. 1 over a Z-ordered block-count array."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        read_threshold: float = 0.25,
    ) -> None:
        self.config = config
        self.read_threshold = read_threshold

    # -- public API ----------------------------------------------------------
    def partition(self, zcounts: np.ndarray, zspace: ZSpace) -> list[TileSpec]:
        """Partition a matrix given its Z-ordered block counts.

        Returns tile specs for every non-empty region.  Empty (all-zero)
        regions produce no tile at all — absence of a tile means absence
        of data.
        """
        if len(zcounts) != zspace.num_cells:
            raise PartitionError(
                f"ZBlockCnts length {len(zcounts)} != Z-space size {zspace.num_cells}"
            )
        self._zspace = zspace
        self._tiles: list[TileSpec] = []
        # Prefix sums let the recursion resolve any quadrant's total
        # count and out-of-bounds population in O(1), so fully empty or
        # fully padded quadrants are pruned without descending — the
        # recursion cost scales with the *occupied* blocks, not with the
        # padded Z-space size (important for hypersparse matrices).
        counts_clipped = np.where(zcounts == OUT_OF_BOUNDS, 0, zcounts)
        self._count_prefix = np.concatenate([[0], np.cumsum(counts_clipped)])
        self._oob_prefix = np.concatenate(
            [[0], np.cumsum(zcounts == OUT_OF_BOUNDS)]
        )
        root = self._recurse(zcounts, 0, zspace.num_cells)
        if root.status is _Status.FORWARD:
            # The whole matrix melted into a single tile (the hypersparse
            # case of section II-B2: no substructure worth adding).
            self._materialize(0, zspace.num_cells, root)
        return self._tiles

    # -- recursion ---------------------------------------------------------
    def _recurse(self, zcounts: np.ndarray, z_start: int, size: int) -> _NodeResult:
        if size == 1:
            count = int(zcounts[z_start])
            if count == OUT_OF_BOUNDS:
                return _NodeResult(_Status.OUT_OF_BOUNDS)
            block_row, block_col = morton_decode_scalar(z_start)
            area = self._zspace.block_area(block_row, block_col)
            return _NodeResult(_Status.FORWARD, count, area)

        total = int(
            self._count_prefix[z_start + size] - self._count_prefix[z_start]
        )
        oob = int(self._oob_prefix[z_start + size] - self._oob_prefix[z_start])
        if oob == size:
            return _NodeResult(_Status.OUT_OF_BOUNDS)
        if total == 0:
            # Empty quadrant: forward without descending.  This cannot
            # change the result — any melt the parent attempts is bound
            # by Eq. (2) at the *merged* density, which is at least as
            # strict as the bound the empty children would have hit.
            return _NodeResult(_Status.FORWARD, 0, self._quadrant_area(z_start, size))

        stride = size // 4
        children = [
            self._recurse(zcounts, z_start + i * stride, stride) for i in range(4)
        ]
        live = [c for c in children if c.status is not _Status.OUT_OF_BOUNDS]
        if not live:
            return _NodeResult(_Status.OUT_OF_BOUNDS)

        if all(c.status is _Status.FORWARD for c in live) and self._can_melt(
            live, size
        ):
            return _NodeResult(
                _Status.FORWARD,
                sum(c.nnz for c in live),
                sum(c.area for c in live),
            )

        # Heterogeneous (or too large): materialize the FORWARD children.
        for i, child in enumerate(children):
            if child.status is _Status.FORWARD:
                self._materialize(z_start + i * stride, stride, child)
        return _NodeResult(_Status.MATERIALIZED)

    def _quadrant_area(self, z_start: int, size: int) -> int:
        """Real (clipped) element cells covered by an aligned quadrant."""
        block_row, block_col = morton_decode_scalar(z_start)
        edge = int(round(size**0.5))
        b = self._zspace.b_atomic
        rows = max(
            0, min(self._zspace.rows, (block_row + edge) * b) - block_row * b
        )
        cols = max(
            0, min(self._zspace.cols, (block_col + edge) * b) - block_col * b
        )
        return rows * cols

    def _can_melt(self, live: list[_NodeResult], melted_cells: int) -> bool:
        """Homogeneity check: same type and melted tile within Eqs. (1)/(2)."""
        types = {self._density_type(c) for c in live}
        if len(types) != 1:
            return False
        total_nnz = sum(c.nnz for c in live)
        total_area = sum(c.area for c in live)
        if total_area == 0:
            return True
        density = total_nnz / total_area
        # Edge of the melted tile in elements (sqrt of the cell count).
        edge_blocks = int(round(melted_cells**0.5))
        edge_elements = edge_blocks * self._zspace.b_atomic
        if next(iter(types)) is StorageKind.DENSE:
            return edge_elements <= self.config.max_dense_tile_dim()
        return edge_elements <= self.config.max_sparse_tile_dim(density)

    def _density_type(self, node: _NodeResult) -> StorageKind:
        density = node.nnz / node.area if node.area else 0.0
        return (
            StorageKind.DENSE
            if density >= self.read_threshold
            else StorageKind.SPARSE
        )

    def _materialize(self, z_start: int, size: int, node: _NodeResult) -> None:
        if node.nnz == 0:
            return  # empty regions carry no tile
        edge_blocks = int(round(size**0.5))
        if edge_blocks * edge_blocks != size:
            raise PartitionError(f"non-square quadrant of {size} cells")
        block_row, block_col = morton_decode_scalar(z_start)
        density = node.nnz / node.area if node.area else 0.0
        kind = (
            StorageKind.DENSE
            if density >= self.read_threshold
            else StorageKind.SPARSE
        )
        self._tiles.append(
            TileSpec(block_row, block_col, edge_blocks, node.nnz, kind)
        )
