"""Fixed-size tilings, used by the Fig. 10 ablation levels.

The paper contrasts the adaptive tiling against "naive matrix tiling with
fixed block size, as it is done in some implementations" (section II-B).
:func:`fixed_grid_at_matrix` builds such a tiling: every occupied
``block x block`` grid cell becomes one tile, stored sparse, or dense if
``mixed`` is set and the cell's density reaches the read threshold.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kinds import StorageKind
from .atmatrix import ATMatrix
from .tile import Tile


def fixed_grid_at_matrix(
    staged: COOMatrix,
    config: SystemConfig,
    *,
    block: int | None = None,
    mixed: bool = False,
    read_threshold: float = 0.25,
) -> ATMatrix:
    """Tile a staged matrix on a fixed ``block`` grid (default ``b_atomic``).

    Empty grid cells produce no tile.  With ``mixed=False`` every tile is
    CSR (ablation steps 2-3); with ``mixed=True`` cells whose density
    reaches ``read_threshold`` are stored dense (step 4).
    """
    block = block or config.b_atomic
    assert block is not None
    grid_cols = -(-staged.cols // block)
    keys = (staged.row_ids // block) * grid_cols + (staged.col_ids // block)
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    row_sorted = staged.row_ids[order]
    col_sorted = staged.col_ids[order]
    val_sorted = staged.values[order]
    boundaries = np.empty(len(keys_sorted), dtype=bool)
    tiles: list[Tile] = []
    if len(keys_sorted):
        boundaries[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        ends = np.append(starts[1:], len(keys_sorted))
        for start, end in zip(starts, ends, strict=True):
            cell = int(keys_sorted[start])
            block_row, block_col = divmod(cell, grid_cols)
            row0 = block_row * block
            col0 = block_col * block
            rows = min(block, staged.rows - row0)
            cols = min(block, staged.cols - col0)
            tile_rows = row_sorted[start:end] - row0
            tile_cols = col_sorted[start:end] - col0
            tile_vals = val_sorted[start:end]
            density = (end - start) / (rows * cols)
            if mixed and density >= read_threshold:
                array = np.zeros((rows, cols), dtype=np.float64)
                np.add.at(array, (tile_rows, tile_cols), tile_vals)
                payload: CSRMatrix | DenseMatrix = DenseMatrix(array, copy=False)
                kind = StorageKind.DENSE
            else:
                payload = CSRMatrix.from_arrays_unsorted(
                    rows, cols, tile_rows, tile_cols, tile_vals
                )
                kind = StorageKind.SPARSE
            tiles.append(Tile(row0, col0, rows, cols, kind, payload))
    return ATMatrix(staged.rows, staged.cols, config, tiles)
