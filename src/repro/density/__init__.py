"""Block-density maps, result-density estimation, and the water-level method.

These components mirror the paper's use of database-style cardinality
estimation (section III-D): a :class:`DensityMap` is the 2-D histogram of
per-atomic-block densities, :func:`estimate_product_density` propagates
operand maps into a result-map estimate, and
:func:`~repro.density.water_level.water_level_threshold` turns an estimate
plus a memory limit into a write density threshold (section III-E).
"""

from .map import DensityMap
from .estimate import estimate_product_density
from .water_level import WaterLevelResult, water_level_threshold

__all__ = [
    "DensityMap",
    "estimate_product_density",
    "WaterLevelResult",
    "water_level_threshold",
]
