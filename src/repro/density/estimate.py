"""Result-density estimation by probability propagation.

Implements the "density map" estimator the paper adopts from SpMachO
(EDBT'15 [9], section 4.3): block densities are treated as independent
Bernoulli probabilities of a cell being populated.  For target block
``(I, J)`` the probability that a given cell stays zero is the product,
over every inner block ``K`` of width ``b_K``, of
``(1 - rhoA[I,K] * rhoB[K,J]) ** b_K``; hence

    rho_C[I,J] = 1 - prod_K (1 - rhoA[I,K] * rhoB[K,J]) ** b_K.

The computation runs in log space for numerical robustness and costs
``O(p * q * r)`` on the block grid — independent of the number of
non-zeros, which is why the paper measures its share of the total runtime
as negligible except for hypersparse, high-dimension matrices.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .map import DensityMap, _ceil_div


def estimate_product_density(a: DensityMap, b: DensityMap) -> DensityMap:
    """Estimate the block-density map of ``C = A @ B`` from operand maps.

    Operand maps must share the block size, and the inner element
    dimensions must match (``a.cols == b.rows``).
    """
    if a.block != b.block:
        raise ShapeError(f"block sizes differ: {a.block} vs {b.block}")
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    p, q = a.grid_shape
    q2, r = b.grid_shape
    assert q == q2, "grid shapes inconsistent with element shapes"
    # Width (in elements) of every inner block, clipped at the boundary.
    inner_widths = np.minimum(a.block, a.cols - np.arange(q) * a.block).astype(
        np.float64
    )
    log_zero_prob = np.zeros((p, r), dtype=np.float64)
    with np.errstate(divide="ignore"):
        for k in range(q):
            pair = np.clip(np.outer(a.grid[:, k], b.grid[k, :]), 0.0, 1.0)
            log_zero_prob += inner_widths[k] * np.log1p(-pair)
    estimate = -np.expm1(log_zero_prob)
    # Guard against tiny negative values from floating-point round-off.
    np.clip(estimate, 0.0, 1.0, out=estimate)
    return DensityMap(a.rows, b.cols, a.block, estimate)


def estimate_scalar_density(
    rho_a: float, rho_b: float, inner_dim: int
) -> float:
    """Whole-matrix density estimate for uniform operands.

    The single-block specialization ``1 - (1 - rho_a * rho_b) ** k`` used
    by the cost model when only aggregate densities are known.
    """
    if not (0.0 <= rho_a <= 1.0 and 0.0 <= rho_b <= 1.0):
        raise ShapeError("densities must lie in [0, 1]")
    if inner_dim < 0:
        raise ShapeError(f"inner dimension must be non-negative, got {inner_dim}")
    pair = rho_a * rho_b
    if pair >= 1.0:
        return 1.0
    with np.errstate(divide="ignore"):
        return float(-np.expm1(inner_dim * np.log1p(-pair)))


def estimated_result_nnz(a: DensityMap, b: DensityMap) -> float:
    """Estimated non-zero count of the product (area-weighted map sum)."""
    return estimate_product_density(a, b).estimated_nnz()


def coarsen(map_: DensityMap, factor: int) -> DensityMap:
    """Aggregate a density map to a ``factor`` times larger block size.

    Used when two operands were partitioned at different granularities and
    their maps must be brought to a common block size before estimation.
    """
    if factor <= 0:
        raise ShapeError(f"factor must be positive, got {factor}")
    if factor == 1:
        return map_
    new_block = map_.block * factor
    grid_rows = _ceil_div(map_.rows, new_block)
    grid_cols = _ceil_div(map_.cols, new_block)
    areas = map_.block_areas()
    weighted = map_.grid * areas
    nnz = np.zeros((grid_rows, grid_cols), dtype=np.float64)
    area_sum = np.zeros((grid_rows, grid_cols), dtype=np.float64)
    src_rows, src_cols = map_.grid_shape
    row_group = np.arange(src_rows) // factor
    col_group = np.arange(src_cols) // factor
    np.add.at(nnz, (row_group[:, None], col_group[None, :]), weighted)
    np.add.at(area_sum, (row_group[:, None], col_group[None, :]), areas)
    with np.errstate(invalid="ignore"):
        grid = np.where(area_sum > 0, nnz / area_sum, 0.0)
    return DensityMap(map_.rows, map_.cols, new_block, grid)
