"""Sampling-based result-size estimation.

An alternative to probability propagation: execute the Gustavson row
expansion for a uniform sample of A's rows and extrapolate.  This is
the join-sampling analogue of the paper's "cardinality estimation for
relational join processing" framing — more expensive than the density
map (it touches real data) but unbiased for the *flop* count and usually
tighter for the result size on skewed data, where the independence
assumption of probability propagation breaks down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..formats.csr import CSRMatrix


@dataclass(frozen=True)
class SampledEstimate:
    """Extrapolated result statistics from a row sample."""

    result_nnz: float
    flops: float
    sampled_rows: int
    total_rows: int

    @property
    def result_density(self) -> float:
        """Implied overall density (needs cols recorded by the caller)."""
        return self.result_nnz

    def scale(self) -> float:
        return self.total_rows / max(1, self.sampled_rows)


def sample_product_size(
    a: CSRMatrix,
    b: CSRMatrix,
    *,
    sample_rows: int = 64,
    seed: int = 0,
) -> SampledEstimate:
    """Estimate nnz(C) and flops of ``C = A @ B`` from sampled A rows.

    For each sampled row ``i``, the exact number of distinct result
    columns is computed by merging the column sets of the B rows indexed
    by A's row ``i`` — exactly what the real kernel would produce for
    that row.  Totals are extrapolated by the sampling fraction.
    """
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if sample_rows <= 0:
        raise ShapeError(f"sample_rows must be positive, got {sample_rows}")
    rng = np.random.default_rng(seed)
    count = min(sample_rows, a.rows)
    rows = (
        np.arange(a.rows)
        if count == a.rows
        else rng.choice(a.rows, size=count, replace=False)
    )
    b_row_nnz = b.row_nnz()
    total_result = 0
    total_flops = 0
    for row in rows:
        cols, _ = a.row_slice(int(row))
        if not len(cols):
            continue
        total_flops += int(b_row_nnz[cols].sum())
        segments = [b.row_slice(int(k))[0] for k in cols]
        if segments:
            merged = np.unique(np.concatenate(segments))
            total_result += len(merged)
    scale = a.rows / count
    return SampledEstimate(
        result_nnz=total_result * scale,
        flops=total_flops * scale,
        sampled_rows=count,
        total_rows=a.rows,
    )
