"""Block-granular density maps.

A :class:`DensityMap` holds, for every atomic ``b_atomic x b_atomic``
block of a matrix, the fraction of populated cells — the paper's "density
map" (e.g. Fig. 2c).  Boundary blocks are normalized by their *real*
(clipped) area so a full boundary block reports density 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError, ShapeError


@dataclass(frozen=True)
class DensityMap:
    """Per-block densities of a ``rows x cols`` matrix at a fixed block size."""

    rows: int
    cols: int
    block: int
    grid: np.ndarray  # (grid_rows, grid_cols) float64 densities in [0, 1]

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ShapeError(f"dimensions must be positive, got {self.shape}")
        if self.block <= 0:
            raise FormatError(f"block size must be positive, got {self.block}")
        expected = (_ceil_div(self.rows, self.block), _ceil_div(self.cols, self.block))
        if self.grid.shape != expected:
            raise FormatError(
                f"grid shape {self.grid.shape} does not match expected {expected}"
            )
        if self.grid.size and (self.grid.min() < 0.0 or self.grid.max() > 1.0 + 1e-12):
            raise FormatError("block densities must lie in [0, 1]")

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_coordinates(
        cls,
        rows: int,
        cols: int,
        row_ids: np.ndarray,
        col_ids: np.ndarray,
        block: int,
    ) -> DensityMap:
        """Count coordinates into blocks and normalize by clipped block area."""
        grid_rows = _ceil_div(rows, block)
        grid_cols = _ceil_div(cols, block)
        counts = np.zeros((grid_rows, grid_cols), dtype=np.float64)
        if len(row_ids):
            np.add.at(
                counts,
                (np.asarray(row_ids) // block, np.asarray(col_ids) // block),
                1.0,
            )
        return cls(rows, cols, block, counts / cls._areas(rows, cols, block))

    @classmethod
    def from_dense(cls, array: np.ndarray, block: int) -> DensityMap:
        """Density map of a 2-D numpy array (non-zeros by value)."""
        array = np.asarray(array)
        row_ids, col_ids = np.nonzero(array)
        return cls.from_coordinates(array.shape[0], array.shape[1], row_ids, col_ids, block)

    @classmethod
    def uniform(cls, rows: int, cols: int, block: int, density: float) -> DensityMap:
        """A map with the same density in every block."""
        grid = np.full(
            (_ceil_div(rows, block), _ceil_div(cols, block)), float(density)
        )
        return cls(rows, cols, block, grid)

    @staticmethod
    def _areas(rows: int, cols: int, block: int) -> np.ndarray:
        """Clipped cell counts of every block (for boundary normalization)."""
        row_sizes = np.minimum(
            block, rows - np.arange(_ceil_div(rows, block)) * block
        ).astype(np.float64)
        col_sizes = np.minimum(
            block, cols - np.arange(_ceil_div(cols, block)) * block
        ).astype(np.float64)
        return np.outer(row_sizes, col_sizes)

    # -- properties -------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.grid.shape

    def block_areas(self) -> np.ndarray:
        """Clipped cell count of every block."""
        return self._areas(self.rows, self.cols, self.block)

    def estimated_nnz(self) -> float:
        """Total non-zero count implied by the map."""
        return float((self.grid * self.block_areas()).sum())

    def overall_density(self) -> float:
        """Whole-matrix density implied by the map."""
        return self.estimated_nnz() / (self.rows * self.cols)

    def region_density(self, row0: int, row1: int, col0: int, col1: int) -> float:
        """Area-weighted mean density of an element region.

        Resolved at block granularity: a region that is not aligned to
        the block grid is measured over the covering blocks (density is
        only known per block — the paper's unit of granularity).
        """
        if not (0 <= row0 <= row1 <= self.rows and 0 <= col0 <= col1 <= self.cols):
            raise ShapeError(
                f"region [{row0}:{row1}, {col0}:{col1}] outside {self.shape}"
            )
        br0, bc0 = row0 // self.block, col0 // self.block
        br1 = _ceil_div(row1, self.block)
        bc1 = _ceil_div(col1, self.block)
        areas = self.block_areas()[br0:br1, bc0:bc1]
        total = areas.sum()
        if total == 0:
            return 0.0
        return float((self.grid[br0:br1, bc0:bc1] * areas).sum() / total)

    def __repr__(self) -> str:
        return (
            f"DensityMap(shape={self.shape}, block={self.block}, "
            f"grid={self.grid_shape}, rho={self.overall_density():.4g})"
        )


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
