"""The water-level method for memory-bounded write thresholds.

Paper section III-E / Fig. 5: given the estimated block-density map of the
result matrix and a total memory limit, find the write density threshold
``rho_D_W`` such that storing every block with density >= threshold as
dense (``S_d`` bytes/cell) and every other block as sparse
(``rho * S_sp`` bytes/cell) keeps the total within the limit.

The 2-D histogram view reduces to one dimension: sort blocks by density
descending and "lower the water level" — sweep a split point from the
densest block to the sparsest, tracking accumulated memory.  The chosen
level is the lowest one whose total memory still fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import MemoryLimitError
from .map import DensityMap


@dataclass(frozen=True)
class WaterLevelResult:
    """Outcome of the water-level sweep.

    Attributes
    ----------
    threshold:
        The write density threshold ``rho_D_W``; blocks with estimated
        density >= threshold may be stored dense.
    total_bytes:
        Estimated memory footprint at that threshold.
    dense_blocks:
        Number of blocks at or above the threshold.
    all_sparse_bytes / all_dense_bytes:
        Footprints of the two homogeneous extremes (for reporting).
    """

    threshold: float
    total_bytes: float
    dense_blocks: int
    all_sparse_bytes: float
    all_dense_bytes: float


def memory_at_threshold(
    estimate: DensityMap, threshold: float, config: SystemConfig
) -> float:
    """Estimated output bytes if blocks >= ``threshold`` are stored dense."""
    areas = estimate.block_areas()
    dense_mask = estimate.grid >= threshold
    dense_bytes = areas[dense_mask].sum() * config.dense_element_bytes
    sparse_bytes = (
        (estimate.grid[~dense_mask] * areas[~dense_mask]).sum()
        * config.sparse_element_bytes
    )
    return float(dense_bytes + sparse_bytes)


def water_level_threshold(
    estimate: DensityMap,
    memory_limit_bytes: float | None,
    config: SystemConfig,
) -> WaterLevelResult:
    """Lower the water level until the memory limit is met.

    Returns the lowest threshold whose projected footprint fits within
    ``memory_limit_bytes``.  With no limit (``None`` or ``inf``) the level
    drops to 0, i.e. every block may be dense.  Raises
    :class:`MemoryLimitError` when no level satisfies the limit — note
    that blocks denser than ``S_d / S_sp`` (0.5 in the default
    configuration) are *smaller* dense than sparse, so the minimal
    footprint is a mixed layout, not the all-sparse one.
    """
    areas = estimate.block_areas().ravel()
    densities = estimate.grid.ravel()
    order = np.argsort(densities)[::-1]  # densest first: water drops onto them
    densities = densities[order]
    areas = areas[order]

    sparse_bytes = densities * areas * config.sparse_element_bytes
    dense_bytes = areas * config.dense_element_bytes
    all_sparse = float(sparse_bytes.sum())
    all_dense = float(dense_bytes.sum())

    if memory_limit_bytes is None or np.isinf(memory_limit_bytes):
        return WaterLevelResult(0.0, all_dense, len(densities), all_sparse, all_dense)

    # totals[i]: memory when the i densest blocks are dense, the rest sparse.
    dense_prefix = np.concatenate([[0.0], np.cumsum(dense_bytes)])
    sparse_suffix = np.concatenate([np.cumsum(sparse_bytes[::-1])[::-1], [0.0]])
    totals = dense_prefix + sparse_suffix

    # A threshold can only separate *distinct* density values, so the level
    # may rest exactly at a value v (all blocks >= v dense) or above the
    # maximum (no dense block).  Sweep candidates from the lowest level up.
    distinct_counts = np.flatnonzero(
        np.concatenate([densities[:-1] != densities[1:], [True]])
    ) + 1  # prefix lengths ending at a tie boundary, ascending density order
    candidate_counts = list(distinct_counts[::-1]) + [0]
    for count in candidate_counts:
        if totals[count] <= memory_limit_bytes:
            if count == 0:
                threshold = (
                    float(np.nextafter(densities[0], np.inf)) if len(densities) else 1.0
                )
            else:
                threshold = float(densities[count - 1])
            return WaterLevelResult(
                threshold, float(totals[count]), int(count), all_sparse, all_dense
            )
    minimal = float(np.minimum(sparse_bytes, dense_bytes).sum())
    raise MemoryLimitError(
        f"no water level satisfies the memory limit {memory_limit_bytes:.0f} B"
        f" (minimal mixed footprint is {minimal:.0f} B)"
    )
