"""Storage kind enumeration shared by tiles, kernels and the cost model."""

from __future__ import annotations

from enum import Enum


class StorageKind(Enum):
    """Physical representation of a matrix (tile): CSR or dense array."""

    SPARSE = "sparse"
    DENSE = "dense"

    @property
    def code(self) -> str:
        """Short code used in kernel names: ``sp`` or ``d``."""
        return "sp" if self is StorageKind.SPARSE else "d"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StorageKind.{self.name}"


def kernel_name(a: StorageKind, b: StorageKind, c: StorageKind) -> str:
    """Paper-style kernel name, e.g. ``spspd_gemm`` for sparse x sparse -> dense."""
    return f"{a.code}{b.code}{c.code}_gemm"
