"""Span-based tracing for the execution stack.

A :class:`Tracer` records nested, named spans — one per phase, pair
task, optimizer decision or kernel dispatch — with wall-clock bounds
and the identity of the thread that ran them.  Nesting is tracked with
a per-thread span stack, so spans opened on different worker threads
build independent subtrees under the run's root phases, which is
exactly the shape the Chrome trace-event viewer (Perfetto, chrome
://tracing) renders as one lane per thread.

Design constraints, in order:

1. **Strict no-op when disabled.**  Instrumented call sites go through
   :data:`NULL_SPAN` / :func:`repro.observe.maybe_span` when no
   observation is active; the disabled path is one global read, one
   ``None`` check and a shared, allocation-free context manager.
2. **Thread safety.**  Finished spans land in a lock-guarded list; the
   open-span stack is ``threading.local``.
3. **Self-contained.**  No imports from the rest of ``repro`` so every
   layer (kernels, resilience, core) can instrument without cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any


class _NullSpan:
    """Shared, allocation-free stand-in for a span when tracing is off.

    A single module-level instance (:data:`NULL_SPAN`) is handed to
    every disabled call site, so ``with maybe_span(...):`` costs no
    allocation per kernel call.
    """

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, key: str, value: Any) -> None:
        return None


#: The singleton no-op span context (see :class:`_NullSpan`).
NULL_SPAN = _NullSpan()


@dataclass
class Span:
    """One finished (or still open) traced interval.

    ``start``/``end`` are :func:`time.perf_counter` readings relative to
    the tracer's epoch, in seconds.  ``thread_id``/``thread_name``
    identify the OS thread the span ran on; ``parent_id`` links the
    nesting structure (``None`` for thread-level roots).
    """

    span_id: int
    name: str
    category: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    thread_id: int = 0
    thread_name: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, key: str, value: Any) -> None:
        """Attach one key/value attribute to the span."""
        self.attrs[key] = value

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": dict(self.attrs),
        }


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._pop(self._span)

    def annotate(self, key: str, value: Any) -> None:
        self._span.annotate(key, value)


class Tracer:
    """Thread-safe recorder of nested spans.

    All timestamps are relative to the tracer's construction instant
    (``epoch_seconds`` holds the corresponding ``time.time()`` for
    absolute anchoring in exports).
    """

    def __init__(self) -> None:
        self.epoch_seconds = time.time()
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 0
        self._stack = threading.local()

    # -- recording --------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return time.perf_counter() - self._origin

    def span(
        self, name: str, category: str = "phase", attrs: dict[str, Any] | None = None
    ) -> _SpanContext:
        """Open a span for the duration of a ``with`` block.

        The span nests under whatever span is currently open on the
        calling thread.
        """
        thread = threading.current_thread()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id=span_id,
            name=name,
            category=category,
            start=self.now(),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            attrs=dict(attrs) if attrs else {},
        )
        return _SpanContext(self, span)

    def instant(
        self, name: str, category: str = "event", attrs: dict[str, Any] | None = None
    ) -> Span:
        """Record a zero-length marker span (e.g. a retry event)."""
        with self.span(name, category, attrs):
            pass
        with self._lock:
            return self._spans[-1]

    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "open", None)
        if stack is None:
            stack = []
            self._stack.open = stack
        if stack:
            span.parent_id = stack[-1].span_id
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.now()
        stack: list[Span] = self._stack.open
        # Tolerate mispaired exits (exceptions unwind in reverse order).
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        with self._lock:
            self._spans.append(span)

    # -- inspection -------------------------------------------------------
    def spans(self) -> list[Span]:
        """Snapshot of all *finished* spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def roots(self) -> list[Span]:
        """Finished spans with no parent (thread-level roots)."""
        return [span for span in self.spans() if span.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        """Finished direct children of ``span``, ordered by start time."""
        kids = [s for s in self.spans() if s.parent_id == span.span_id]
        return sorted(kids, key=lambda s: s.start)

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name."""
        return [span for span in self.spans() if span.name == name]

    def iter_tree(self, span: Span, depth: int = 0) -> Iterator[tuple[int, Span]]:
        """Depth-first traversal of a span's subtree as (depth, span)."""
        yield depth, span
        for child in self.children(span):
            yield from self.iter_tree(child, depth + 1)
