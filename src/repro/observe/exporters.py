"""Exporters: JSON, Chrome trace-event format, and a text summary.

Three consumers, three formats:

* :func:`to_json_dict` / :func:`write_json` — the full observation
  (spans + metrics + cost accuracy) as one JSON document, the format
  the round-trip tests and downstream tooling parse;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace
  Event Format understood by Perfetto and ``chrome://tracing``: one
  complete-event (``"ph": "X"``) per span with microsecond timestamps,
  one lane per thread, plus thread-name metadata events.  Span ids and
  parent ids ride along in ``args`` so the exact tree can be rebuilt
  from the file;
* :func:`to_text_summary` — a terminal-friendly digest (phase totals,
  kernel counts, resilience counters, cost-model residuals).
"""

from __future__ import annotations

import json
from typing import IO, Any

from ..ioutil import atomic_write
from .session import Observation
from .trace import Span, Tracer

#: pid used for all events; the library is single-process.
_PID = 1


def to_json_dict(observation: Observation) -> dict[str, Any]:
    """The whole observation as one JSON-serializable dict."""
    payload = observation.as_dict()
    payload["format"] = "repro-observation"
    payload["version"] = 1
    return payload


def write_json(observation: Observation, target: str | IO[str]) -> None:
    """Write the JSON export to a path or text stream."""
    _dump(to_json_dict(observation), target)


def to_chrome_trace(observation: Observation) -> dict[str, Any]:
    """The observation's spans in Chrome trace-event format.

    Returns the JSON-object flavor (``{"traceEvents": [...]}``) which
    both Perfetto and chrome://tracing load directly.
    """
    events: list[dict[str, Any]] = []
    threads: dict[int, str] = {}
    for span in observation.tracer.spans():
        threads.setdefault(span.thread_id, span.thread_name)
        args: dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,  # microseconds
                "dur": span.duration * 1e6,
                "pid": _PID,
                "tid": span.thread_id,
                "args": args,
            }
        )
    for tid, name in sorted(threads.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(observation: Observation, target: str | IO[str]) -> None:
    """Write the Chrome trace export to a path or text stream."""
    _dump(to_chrome_trace(observation), target)


def spans_from_chrome_trace(document: dict[str, Any]) -> list[Span]:
    """Rebuild :class:`Span` objects from a Chrome trace export.

    The inverse of :func:`to_chrome_trace` (attributes other than the
    structural ones land back in ``attrs``); used by the round-trip
    tests and handy for offline analysis of saved traces.
    """
    spans: list[Span] = []
    names = {
        event["tid"]: event["args"]["name"]
        for event in document.get("traceEvents", [])
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent_id")
        start = event["ts"] / 1e6
        spans.append(
            Span(
                span_id=span_id,
                name=event["name"],
                category=event.get("cat", ""),
                start=start,
                end=start + event["dur"] / 1e6,
                parent_id=parent_id,
                thread_id=event["tid"],
                thread_name=names.get(event["tid"], ""),
                attrs=args,
            )
        )
    spans.sort(key=lambda span: span.span_id)
    return spans


def to_text_summary(observation: Observation) -> str:
    """Terminal-friendly digest of one observation."""
    lines: list[str] = ["observation summary", "==================="]
    lines.append(_phase_section(observation.tracer))
    metric_dump = observation.metrics.as_dict()
    if metric_dump:
        lines.append("")
        lines.append("metrics:")
        for name, instrument in metric_dump.items():
            if instrument["type"] == "histogram":
                lines.append(
                    f"  {name}: n={instrument['count']} "
                    f"mean={instrument['mean']:.3e} "
                    f"min={instrument['min']} max={instrument['max']}"
                )
            else:
                lines.append(f"  {name}: {instrument['value']}")
    summary = observation.cost_accuracy.summary()
    if summary:
        lines.append("")
        lines.append("cost-model accuracy (measured/predicted):")
        for kernel, accuracy in summary.items():
            lines.append(
                f"  {kernel}: n={accuracy.count} "
                f"geo-ratio={accuracy.geometric_mean_ratio:.3f} "
                f"mean|rel residual|={accuracy.mean_abs_relative_residual:.3f}"
            )
    return "\n".join(lines)


def _phase_section(tracer: Tracer) -> str:
    totals: dict[str, tuple[int, float]] = {}
    for span in tracer.spans():
        count, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, seconds + span.duration)
    if not totals:
        return "spans: none recorded"
    width = max(len(name) for name in totals)
    rows = ["spans (total seconds, by name):"]
    for name, (count, seconds) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        rows.append(f"  {name:<{width}}  n={count:<6d} {seconds:10.6f}s")
    return "\n".join(rows)


def write_text_summary(observation: Observation, target: str | IO[str]) -> None:
    text = to_text_summary(observation) + "\n"
    if isinstance(target, str):
        with atomic_write(target, mode="w", encoding="utf-8") as stream:
            stream.write(text)
    else:
        target.write(text)


def _dump(payload: dict[str, Any], target: str | IO[str]) -> None:
    if isinstance(target, str):
        with atomic_write(target, mode="w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1)
    else:
        json.dump(payload, target, indent=1)
