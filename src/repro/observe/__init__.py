"""Unified observability: spans, metrics, and cost-model accuracy.

One layer instruments the whole execution stack — partitioning, ATMULT
phases, the parallel pair loop, kernel dispatches, just-in-time
conversions and the resilience hooks — behind a single opt-in session:

>>> from repro import observe, atmult
>>> with observe() as obs:                                   # doctest: +SKIP
...     result, report = atmult(a, b)
>>> obs is report.observation                                # doctest: +SKIP
True

Everything is strictly off by default: with no active session the hook
sites reduce to one global read and a ``None`` check, and the shared
null instruments allocate nothing per call.  Exports come in three
formats (JSON, Chrome trace events for Perfetto, plain text); the CLI
exposes them as ``--trace-out`` / ``--metrics-out``.

See docs/OBSERVABILITY.md for the span model and the metric catalogue.
"""

from .accuracy import CostAccuracyTracker, CostSample, KernelAccuracy
from .exporters import (
    spans_from_chrome_trace,
    to_chrome_trace,
    to_json_dict,
    to_text_summary,
    write_chrome_trace,
    write_json,
    write_text_summary,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from .session import (
    Observation,
    activate,
    counter,
    current,
    gauge,
    histogram,
    maybe_span,
    observe,
    resolve,
    tracer_span,
)
from .trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Observation",
    "observe",
    "activate",
    "current",
    "resolve",
    "maybe_span",
    "tracer_span",
    "counter",
    "gauge",
    "histogram",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "CostAccuracyTracker",
    "CostSample",
    "KernelAccuracy",
    "to_json_dict",
    "to_chrome_trace",
    "to_text_summary",
    "spans_from_chrome_trace",
    "write_json",
    "write_chrome_trace",
    "write_text_summary",
]
