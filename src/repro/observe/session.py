"""The observation session and its ambient (process-global) activation.

An :class:`Observation` bundles the three collectors — span tracer,
metrics registry and cost-accuracy tracker — behind one object that the
redesigned reports carry (``report.observation``) and the exporters
consume.

Activation mirrors :mod:`repro.resilience.faults`: one module-global
slot, so the disabled hot path in the kernels is a single attribute
read plus a ``None`` check.  Entry points accept an ``observer=``
keyword and activate it for the duration of the call, which makes the
instrumentation inside nested layers (kernel registry, resilience
runner, optimizer) visible without threading the object through every
signature.  Worker threads spawned inside an active region see the same
session because the slot is process-global, not a context variable —
the paper's two-level parallel execution hands pair tasks to a thread
pool, and a contextvar would silently detach those workers.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator
from typing import Any

from .accuracy import CostAccuracyTracker
from .metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _NullInstrument,
)
from .trace import NULL_SPAN, Tracer, _NullSpan, _SpanContext


class Observation:
    """One run's worth of spans, metrics and cost-accuracy samples."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.cost_accuracy = CostAccuracyTracker()

    def as_dict(self) -> dict[str, Any]:
        """Full serializable snapshot (the JSON exporter's payload)."""
        return {
            "epoch_seconds": self.tracer.epoch_seconds,
            "spans": [span.as_dict() for span in self.tracer.spans()],
            "metrics": self.metrics.as_dict(),
            "cost_accuracy": self.cost_accuracy.as_dict(),
        }


#: The active observation; ``None`` keeps every hook a no-op.
_ACTIVE: Observation | None = None


def current() -> Observation | None:
    """The active observation session, if any."""
    return _ACTIVE


def clear() -> None:
    """Drop the ambient session (forked-worker initialization).

    A forked worker process inherits the parent's process-global
    observation, whose collectors nobody will ever read in the child;
    supervised workers clear it so their hooks stay no-ops and ship
    statistics back to the supervisor through the shard protocol
    instead.
    """
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def activate(observation: Observation) -> Iterator[Observation]:
    """Install ``observation`` as the ambient session for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = observation
    try:
        yield observation
    finally:
        _ACTIVE = previous


@contextmanager
def observe() -> Iterator[Observation]:
    """Create and activate a fresh :class:`Observation`.

    >>> with observe() as obs:
    ...     ...  # run atmult / parallel_atmult / a benchmark
    >>> len(obs.tracer.spans()) >= 0
    True
    """
    with activate(Observation()) as observation:
        yield observation


@contextmanager
def resolve(observer: Observation | None) -> Iterator[Observation | None]:
    """Entry-point helper: yield the session to record into, if any.

    With an explicit ``observer`` the session is also *activated* so
    nested instrumentation (kernels, resilience, conversions) lands in
    it; with ``None`` the ambient session (possibly none) is yielded
    unchanged.
    """
    if observer is None or observer is _ACTIVE:
        yield _ACTIVE
    else:
        with activate(observer):
            yield observer


# -- allocation-free hooks for hot paths ---------------------------------

def tracer_span(
    observation: Observation | None,
    name: str,
    category: str = "phase",
    attrs: dict[str, Any] | None = None,
) -> _SpanContext | _NullSpan:
    """A span under ``observation``, or the shared no-op when ``None``.

    For call sites that already resolved the session once (the pair
    loops), saving the global read :func:`maybe_span` performs.
    """
    if observation is None:
        return NULL_SPAN
    return observation.tracer.span(name, category, attrs)


def maybe_span(
    name: str, category: str = "phase", attrs: dict[str, Any] | None = None
) -> _SpanContext | _NullSpan:
    """A span context under the active session, or the shared no-op."""
    obs = _ACTIVE
    if obs is None:
        return NULL_SPAN
    return obs.tracer.span(name, category, attrs)


def counter(name: str) -> Counter | _NullInstrument:
    """The named counter of the active session, or the shared no-op."""
    obs = _ACTIVE
    if obs is None:
        return NULL_COUNTER
    return obs.metrics.counter(name)


def gauge(name: str) -> Gauge | _NullInstrument:
    """The named gauge of the active session, or the shared no-op."""
    obs = _ACTIVE
    if obs is None:
        return NULL_GAUGE
    return obs.metrics.gauge(name)


def histogram(name: str) -> Histogram | _NullInstrument:
    """The named histogram of the active session, or the shared no-op."""
    obs = _ACTIVE
    if obs is None:
        return NULL_HISTOGRAM
    return obs.metrics.histogram(name)
