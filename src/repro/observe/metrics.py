"""Counters, gauges and histograms for the execution stack.

The :class:`MetricsRegistry` is a flat, thread-safe name -> instrument
map.  Names are dotted paths (``kernel.dispatch.spspsp_gemm``,
``resilience.retries``, ``numa.bytes.node0``); the full catalogue of
names the built-in instrumentation emits is documented in
docs/OBSERVABILITY.md.

Like the tracer, the registry is self-contained and cheap when unused:
disabled call sites receive the shared :data:`NULL_COUNTER` /
:data:`NULL_GAUGE` / :data:`NULL_HISTOGRAM` singletons whose methods do
nothing and allocate nothing.
"""

from __future__ import annotations

import math
import threading
from typing import Any


class Counter:
    """Monotonically increasing value (int or float increments)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar (thresholds, limits, pool sizes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary with log2 buckets.

    Tracks count/sum/min/max plus a sparse ``{exponent: count}`` bucket
    map where a sample ``v`` falls into bucket ``ceil(log2(v))``
    (bucket upper bounds are powers of two).  Good enough to read
    latency shapes out of an export without storing every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        exponent = math.ceil(math.log2(value)) if value > 0 else -1024
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "log2_buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class _NullInstrument:
    """Shared do-nothing instrument for the disabled path."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()


class MetricsRegistry:
    """Thread-safe, create-on-first-use instrument registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory(name)
                    self._instruments[name] = instrument
        if not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """Look up an instrument without creating it."""
        with self._lock:
            return self._instruments.get(name)

    def value(self, name: str, default: float = 0) -> float:
        """Convenience: current value of a counter/gauge (or ``default``)."""
        instrument = self.get(name)
        if instrument is None or isinstance(instrument, Histogram):
            return default
        return instrument.value if instrument.value is not None else default

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """Serializable snapshot of every instrument, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.as_dict() for name, instrument in items}
