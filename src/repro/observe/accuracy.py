"""Predicted-vs-measured cost tracking for the cost model.

Nagasaka et al. (PAPERS.md) make the case that per-kernel profiling is
what turns sparse-product tuning from guesswork into engineering; this
module closes the corresponding loop for the analytic cost model of
:mod:`repro.cost.model`.  Whenever observability is enabled, the pair
loops of ATMULT record one :class:`CostSample` per tile product — the
model's predicted seconds next to the measured kernel seconds — and
:class:`CostAccuracyTracker` aggregates them into per-kernel residual
statistics that :func:`repro.cost.calibrate.refine_from_observation`
and :func:`repro.tune.autotune` consume.

Conventions: the *ratio* of a sample is ``measured / predicted`` (1.0 =
perfect model, > 1 = model too optimistic); the *relative residual* is
``(measured - predicted) / predicted``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CostSample:
    """One tile product's predicted and measured execution cost."""

    kernel: str
    predicted_seconds: float
    measured_seconds: float

    @property
    def ratio(self) -> float:
        """measured / predicted (``inf`` for a zero prediction)."""
        if self.predicted_seconds <= 0.0:
            return math.inf
        return self.measured_seconds / self.predicted_seconds

    @property
    def relative_residual(self) -> float:
        """(measured - predicted) / predicted."""
        if self.predicted_seconds <= 0.0:
            return math.inf
        return (self.measured_seconds - self.predicted_seconds) / self.predicted_seconds


@dataclass
class KernelAccuracy:
    """Aggregate residual statistics for one kernel."""

    kernel: str
    count: int
    predicted_total: float
    measured_total: float
    mean_ratio: float
    geometric_mean_ratio: float
    mean_abs_relative_residual: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "predicted_seconds": self.predicted_total,
            "measured_seconds": self.measured_total,
            "mean_ratio": self.mean_ratio,
            "geometric_mean_ratio": self.geometric_mean_ratio,
            "mean_abs_relative_residual": self.mean_abs_relative_residual,
        }


class CostAccuracyTracker:
    """Thread-safe accumulator of :class:`CostSample` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: list[CostSample] = []

    def record(
        self, kernel: str, predicted_seconds: float, measured_seconds: float
    ) -> None:
        sample = CostSample(kernel, predicted_seconds, measured_seconds)
        with self._lock:
            self._samples.append(sample)

    def samples(self, kernel: str | None = None) -> list[CostSample]:
        """Snapshot of recorded samples, optionally for one kernel."""
        with self._lock:
            samples = list(self._samples)
        if kernel is not None:
            samples = [s for s in samples if s.kernel == kernel]
        return samples

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def kernels(self) -> list[str]:
        with self._lock:
            return sorted({s.kernel for s in self._samples})

    def summary(self) -> dict[str, KernelAccuracy]:
        """Per-kernel residual statistics, keyed by kernel name."""
        out: dict[str, KernelAccuracy] = {}
        for kernel in self.kernels():
            samples = self.samples(kernel)
            finite = [s for s in samples if math.isfinite(s.ratio)]
            if finite:
                mean_ratio = sum(s.ratio for s in finite) / len(finite)
                log_mean = sum(math.log(s.ratio) for s in finite if s.ratio > 0)
                positive = sum(1 for s in finite if s.ratio > 0)
                geo = math.exp(log_mean / positive) if positive else math.inf
                mean_abs = sum(abs(s.relative_residual) for s in finite) / len(finite)
            else:
                mean_ratio = geo = mean_abs = math.inf
            out[kernel] = KernelAccuracy(
                kernel=kernel,
                count=len(samples),
                predicted_total=sum(s.predicted_seconds for s in samples),
                measured_total=sum(s.measured_seconds for s in samples),
                mean_ratio=mean_ratio,
                geometric_mean_ratio=geo,
                mean_abs_relative_residual=mean_abs,
            )
        return out

    def ratio_by_kernel(self) -> dict[str, float]:
        """Geometric-mean measured/predicted ratio per kernel.

        The geometric mean is the right scale correction for a
        multiplicative model: rescaling the kernel's coefficients by it
        centers the log-residuals on zero.
        """
        return {
            kernel: accuracy.geometric_mean_ratio
            for kernel, accuracy in self.summary().items()
        }

    def as_dict(self) -> dict[str, Any]:
        """Serializable per-kernel summary plus raw sample arrays."""
        return {
            "summary": {k: a.as_dict() for k, a in self.summary().items()},
            "samples": [
                {
                    "kernel": s.kernel,
                    "predicted_seconds": s.predicted_seconds,
                    "measured_seconds": s.measured_seconds,
                }
                for s in self.samples()
            ],
        }
