"""Iterative linear solvers over AT Matrices.

"Solving linear systems" is the first application the paper's
introduction lists.  These solvers drive everything through
:func:`~repro.core.atmv.atmv`, so every iteration benefits from the
heterogeneous tile storage (dense regions go through BLAS gemv).

Provided methods:

* :func:`jacobi` — diagonal preconditioned fixed point; needs a
  diagonally dominant system.
* :func:`conjugate_gradient` — for symmetric positive definite systems.
* :func:`richardson` — plain damped fixed point (the building block the
  others refine; exposed mostly for teaching/tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.atmatrix import ATMatrix
from .core.atmv import atmv
from .errors import ReproError, ShapeError


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the tolerance in its budget."""


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool

    def raise_if_failed(self) -> "SolveResult":
        if not self.converged:
            raise ConvergenceError(
                f"no convergence after {self.iterations} iterations "
                f"(residual {self.residual_norm:.3e})"
            )
        return self


def _check_system(matrix: ATMatrix, rhs: np.ndarray) -> np.ndarray:
    if matrix.rows != matrix.cols:
        raise ShapeError(f"solver needs a square matrix, got {matrix.shape}")
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    if len(rhs) != matrix.rows:
        raise ShapeError(f"rhs length {len(rhs)} != dimension {matrix.rows}")
    return rhs


def richardson(
    matrix: ATMatrix,
    rhs: np.ndarray,
    *,
    omega: float = 0.1,
    tolerance: float = 1e-8,
    max_iterations: int = 1000,
    x0: np.ndarray | None = None,
) -> SolveResult:
    """Damped Richardson iteration ``x += omega * (b - A x)``."""
    rhs = _check_system(matrix, rhs)
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    norm_b = np.linalg.norm(rhs) or 1.0
    residual_norm = np.inf
    for iteration in range(1, max_iterations + 1):
        residual = rhs - atmv(matrix, x)
        residual_norm = float(np.linalg.norm(residual))
        if residual_norm <= tolerance * norm_b:
            return SolveResult(x, iteration - 1, residual_norm, True)
        x = x + omega * residual
    return SolveResult(x, max_iterations, residual_norm, False)


def jacobi(
    matrix: ATMatrix,
    rhs: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    x0: np.ndarray | None = None,
) -> SolveResult:
    """Jacobi iteration ``x = D^-1 (b - (A - D) x)``.

    Converges for strictly diagonally dominant systems; raises
    :class:`ShapeError` when the diagonal contains zeros.
    """
    rhs = _check_system(matrix, rhs)
    diagonal = matrix.to_csr().diagonal()
    if np.any(diagonal == 0.0):
        raise ShapeError("Jacobi requires a zero-free diagonal")
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    norm_b = np.linalg.norm(rhs) or 1.0
    residual_norm = np.inf
    for iteration in range(1, max_iterations + 1):
        ax = atmv(matrix, x)
        residual_norm = float(np.linalg.norm(rhs - ax))
        if residual_norm <= tolerance * norm_b:
            return SolveResult(x, iteration - 1, residual_norm, True)
        # x_{k+1} = x_k + D^-1 (b - A x_k)
        x = x + (rhs - ax) / diagonal
    return SolveResult(x, max_iterations, residual_norm, False)


def conjugate_gradient(
    matrix: ATMatrix,
    rhs: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_iterations: int | None = None,
    x0: np.ndarray | None = None,
) -> SolveResult:
    """Conjugate gradients for symmetric positive definite systems."""
    rhs = _check_system(matrix, rhs)
    n = matrix.rows
    budget = max_iterations if max_iterations is not None else 10 * n
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    residual = rhs - atmv(matrix, x)
    direction = residual.copy()
    rho = float(residual @ residual)
    norm_b = np.linalg.norm(rhs) or 1.0
    for iteration in range(1, budget + 1):
        if np.sqrt(rho) <= tolerance * norm_b:
            return SolveResult(x, iteration - 1, float(np.sqrt(rho)), True)
        a_direction = atmv(matrix, direction)
        curvature = float(direction @ a_direction)
        if curvature <= 0.0:
            # Not SPD (or numerically singular): stop honestly.
            return SolveResult(x, iteration - 1, float(np.sqrt(rho)), False)
        alpha = rho / curvature
        x = x + alpha * direction
        residual = residual - alpha * a_direction
        rho_next = float(residual @ residual)
        direction = residual + (rho_next / rho) * direction
        rho = rho_next
    return SolveResult(x, budget, float(np.sqrt(rho)), False)
