"""Iterative linear solvers over AT Matrices.

"Solving linear systems" is the first application the paper's
introduction lists.  These solvers accept any matrix operand (AT Matrix,
CSR or dense); the operand is wrapped **once** before the iteration loop
— the pre-redesign solvers rebuilt the wrapper every iteration, which
defeated plan reuse — and every iteration benefits from the
heterogeneous tile storage (dense regions go through BLAS gemv).

Two execution paths:

* plain (default): matrix-vector products run through the light
  :func:`~repro.core.atmv.atmv` tile loop;
* engine (``session=`` or ``options=``): products run ``A @ x`` through
  the engine with the caller's
  :class:`~repro.engine.options.MultiplyOptions`.  With a plan cache
  attached (a :class:`~repro.Session` always has one), the loop *pins*
  one fused matvec plan for the entire iteration: the first iteration
  records a :class:`~repro.engine.plan.FusedChainPlan`, the second
  retrieves it from the cache — one hit, after which the pinned plan
  replays directly without touching the cache or re-planning at all.

Provided methods:

* :func:`jacobi` — diagonal preconditioned fixed point; needs a
  diagonally dominant system.
* :func:`conjugate_gradient` — for symmetric positive definite systems.
* :func:`richardson` — plain damped fixed point (the building block the
  others refine; exposed mostly for teaching/tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from .config import DEFAULT_CONFIG
from .core.atmv import atmv
from .core.operands import MatrixOperand, as_at_matrix
from .engine.options import MultiplyOptions
from .errors import PlanMismatchError, ReproError, ShapeError
from .formats.dense import DenseMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core.atmatrix import ATMatrix
    from .engine.plan import FusedChainPlan
    from .engine.session import Session


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the tolerance in its budget."""


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool

    def raise_if_failed(self) -> SolveResult:
        if not self.converged:
            raise ConvergenceError(
                f"no convergence after {self.iterations} iterations "
                f"(residual {self.residual_norm:.3e})"
            )
        return self


def _check_system(matrix: MatrixOperand, rhs: np.ndarray) -> np.ndarray:
    if matrix.rows != matrix.cols:
        raise ShapeError(f"solver needs a square matrix, got {matrix.shape}")
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    if len(rhs) != matrix.rows:
        raise ShapeError(f"rhs length {len(rhs)} != dimension {matrix.rows}")
    return rhs


class _PinnedMatvec:
    """One fused matvec plan pinned across a whole solver loop.

    Each call multiplies ``A @ x`` with the vector riding as a dense
    ``n x 1`` operand — dense topology is fingerprinted by shape plus
    quantized density, and a solve's iterates are fully populated, so
    every iteration shares one chain identity.  The first call records
    the :class:`~repro.engine.plan.FusedChainPlan` (a cache miss + put),
    the second retrieves it (the loop's single cache hit) and pins it;
    every later call replays the pinned plan directly — no cache probe,
    no re-planning.  A :class:`~repro.errors.PlanMismatchError` (e.g. a
    degenerate iterate changing the intermediate topology) unpins and
    falls back to the cache-mediated path for that call.
    """

    def __init__(self, at: ATMatrix, options: MultiplyOptions) -> None:
        self._at = at
        self._options = options
        self._config = options.resolved_config()
        self._model = options.resolved_cost_model()
        self._pinned: FusedChainPlan | None = None
        self.pinned_replays = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        from .engine.api import run_chain
        from .engine.executor import execute_fused_chain
        from .observe import session as observe_session

        column = np.asarray(x, dtype=np.float64).reshape(-1, 1)
        dense = DenseMatrix(column, copy=False)
        with observe_session.resolve(self._options.observer) as obs:
            if self._pinned is not None:
                at_x = as_at_matrix(dense, self._config)
                try:
                    result, _ = execute_fused_chain(
                        self._pinned,
                        [self._at, at_x],
                        config=self._config,
                        cost_model=self._model,
                        obs=obs,
                    )
                except PlanMismatchError:
                    self._pinned = None
                else:
                    self.pinned_replays += 1
                    return result.to_dense().ravel()
            result, report, fused = run_chain(
                [self._at, dense], options=self._options, obs=obs
            )
            if report.plan_cache_hit and fused is not None:
                self._pinned = fused
        return result.to_dense().ravel()


def _matvec_driver(
    matrix: MatrixOperand,
    session: Session | None,
    options: MultiplyOptions | None,
) -> tuple["ATMatrix", Callable[[np.ndarray], np.ndarray]]:
    """Hoisted operand wrapping plus the per-iteration product kernel.

    The operand is wrapped with :func:`as_at_matrix` exactly once, here,
    before any iteration runs (the regression tests count
    ``operand.wraps.*`` metric increments to pin this down).  Without a
    session/options the product is the plain :func:`atmv` tile loop.
    With a plan cache (and no resilience/checkpoint/memory-limit
    context) the loop gets a :class:`_PinnedMatvec`; otherwise each
    product runs through plain :func:`~repro.core.atmult.atmult`.
    """
    opts = session.options if session is not None else options
    if opts is None:
        at = as_at_matrix(matrix, DEFAULT_CONFIG)
        return at, lambda x: atmv(at, x)

    at = as_at_matrix(matrix, opts.resolved_config())
    pinnable = (
        opts.plan_cache is not None
        and opts.resilience is None
        and opts.checkpoint is None
        and opts.memory_limit_bytes is None
    )
    if pinnable:
        return at, _PinnedMatvec(at, opts)
    from .core.atmult import atmult

    def matvec(x: np.ndarray) -> np.ndarray:
        column = np.asarray(x, dtype=np.float64).reshape(-1, 1)
        result, _ = atmult(at, DenseMatrix(column, copy=False), options=opts)
        return result.to_dense().ravel()

    return at, matvec


def richardson(
    matrix: MatrixOperand,
    rhs: np.ndarray,
    *,
    omega: float = 0.1,
    tolerance: float = 1e-8,
    max_iterations: int = 1000,
    x0: np.ndarray | None = None,
    session: Session | None = None,
    options: MultiplyOptions | None = None,
) -> SolveResult:
    """Damped Richardson iteration ``x += omega * (b - A x)``."""
    rhs = _check_system(matrix, rhs)
    _, matvec = _matvec_driver(matrix, session, options)
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    norm_b = np.linalg.norm(rhs) or 1.0
    residual_norm = np.inf
    for iteration in range(1, max_iterations + 1):
        residual = rhs - matvec(x)
        residual_norm = float(np.linalg.norm(residual))
        if residual_norm <= tolerance * norm_b:
            return SolveResult(x, iteration - 1, residual_norm, True)
        x = x + omega * residual
    return SolveResult(x, max_iterations, residual_norm, False)


def jacobi(
    matrix: MatrixOperand,
    rhs: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    x0: np.ndarray | None = None,
    session: Session | None = None,
    options: MultiplyOptions | None = None,
) -> SolveResult:
    """Jacobi iteration ``x = D^-1 (b - (A - D) x)``.

    Converges for strictly diagonally dominant systems; raises
    :class:`ShapeError` when the diagonal contains zeros.
    """
    rhs = _check_system(matrix, rhs)
    at, matvec = _matvec_driver(matrix, session, options)
    diagonal = at.to_csr().diagonal()
    if np.any(diagonal == 0.0):
        raise ShapeError("Jacobi requires a zero-free diagonal")
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    norm_b = np.linalg.norm(rhs) or 1.0
    residual_norm = np.inf
    for iteration in range(1, max_iterations + 1):
        ax = matvec(x)
        residual_norm = float(np.linalg.norm(rhs - ax))
        if residual_norm <= tolerance * norm_b:
            return SolveResult(x, iteration - 1, residual_norm, True)
        # x_{k+1} = x_k + D^-1 (b - A x_k)
        x = x + (rhs - ax) / diagonal
    return SolveResult(x, max_iterations, residual_norm, False)


def conjugate_gradient(
    matrix: MatrixOperand,
    rhs: np.ndarray,
    *,
    tolerance: float = 1e-10,
    max_iterations: int | None = None,
    x0: np.ndarray | None = None,
    session: Session | None = None,
    options: MultiplyOptions | None = None,
) -> SolveResult:
    """Conjugate gradients for symmetric positive definite systems."""
    rhs = _check_system(matrix, rhs)
    _, matvec = _matvec_driver(matrix, session, options)
    n = matrix.rows
    budget = max_iterations if max_iterations is not None else 10 * n
    if x0 is None:
        # Default zero start: r0 = b - A 0 = b, no product needed.
        x = np.zeros_like(rhs)
        residual = rhs.copy()
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        residual = rhs - matvec(x)
    direction = residual.copy()
    rho = float(residual @ residual)
    norm_b = np.linalg.norm(rhs) or 1.0
    for iteration in range(1, budget + 1):
        if np.sqrt(rho) <= tolerance * norm_b:
            return SolveResult(x, iteration - 1, float(np.sqrt(rho)), True)
        a_direction = matvec(direction)
        curvature = float(direction @ a_direction)
        if curvature <= 0.0:
            # Not SPD (or numerically singular): stop honestly.
            return SolveResult(x, iteration - 1, float(np.sqrt(rho)), False)
        alpha = rho / curvature
        x = x + alpha * direction
        residual = residual - alpha * a_direction
        rho_next = float(residual @ residual)
        direction = residual + (rho_next / rho) * direction
        rho = rho_next
    return SolveResult(x, budget, float(np.sqrt(rho)), False)
