"""Z-space geometry and the Z-ordered atomic-block count array.

Paper section II-C: both matrix dimensions are logically padded to the next
common power of two, giving a square Z-space of size
``K = 4 ** max(ceil(log2 m), ceil(log2 n))``.  A single pass over the
staged matrix produces ``ZBlockCnts``, the Z-ordered array holding the
non-zero count of every atomic ``b_atomic x b_atomic`` block; blocks that
lie entirely outside the real matrix bounds are marked out-of-bounds with
the sentinel ``-1`` and are skipped by the partition recursion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from .morton import morton_encode


@dataclass(frozen=True)
class ZSpace:
    """Geometry of the padded Z-space over a matrix at block granularity.

    Attributes
    ----------
    rows, cols:
        Real (unpadded) matrix dimensions.
    b_atomic:
        Atomic block edge length (power of two).
    side_blocks:
        Number of atomic blocks along one side of the padded square space
        (a power of two).
    """

    rows: int
    cols: int
    b_atomic: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise FormatError(
                f"matrix dimensions must be positive, got {self.rows}x{self.cols}"
            )
        b = self.b_atomic
        if b < 1 or (b & (b - 1)) != 0:
            raise FormatError(f"b_atomic must be a power of two, got {b}")

    @property
    def side_blocks(self) -> int:
        """Blocks per side of the padded square Z-space (power of two)."""
        grid = max(
            _ceil_div(self.rows, self.b_atomic), _ceil_div(self.cols, self.b_atomic)
        )
        return 1 << max(0, (grid - 1).bit_length())

    @property
    def num_cells(self) -> int:
        """Total number of Z-space cells, ``side_blocks ** 2``."""
        return self.side_blocks * self.side_blocks

    @property
    def grid_rows(self) -> int:
        """Number of block rows actually covering the matrix."""
        return _ceil_div(self.rows, self.b_atomic)

    @property
    def grid_cols(self) -> int:
        """Number of block columns actually covering the matrix."""
        return _ceil_div(self.cols, self.b_atomic)

    def block_of(self, row: int, col: int) -> tuple[int, int]:
        """Block-grid coordinate containing the matrix element ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise FormatError(f"element ({row}, {col}) outside {self.rows}x{self.cols}")
        return row // self.b_atomic, col // self.b_atomic

    def block_bounds(self, block_row: int, block_col: int) -> tuple[int, int, int, int]:
        """Element bounds ``(row0, row1, col0, col1)`` of a block, clipped
        to the real matrix (half-open ranges)."""
        row0 = block_row * self.b_atomic
        col0 = block_col * self.b_atomic
        row1 = min(self.rows, row0 + self.b_atomic)
        col1 = min(self.cols, col0 + self.b_atomic)
        return row0, row1, col0, col1

    def block_area(self, block_row: int, block_col: int) -> int:
        """Number of real matrix cells inside a (possibly clipped) block."""
        row0, row1, col0, col1 = self.block_bounds(block_row, block_col)
        return max(0, row1 - row0) * max(0, col1 - col0)

    def in_bounds(self, block_row: int, block_col: int) -> bool:
        """Whether the block overlaps the real matrix at all."""
        return block_row < self.grid_rows and block_col < self.grid_cols


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


#: Sentinel marking Z-space cells fully outside the real matrix bounds.
OUT_OF_BOUNDS = -1


def block_counts(
    rows: np.ndarray, cols: np.ndarray, zspace: ZSpace
) -> np.ndarray:
    """Compute the Z-ordered per-atomic-block non-zero counts.

    This is the ``ZBlockCnts`` array of paper Alg. 1: entry ``z`` holds the
    number of matrix non-zeros falling into the atomic block whose
    block-grid coordinate has Morton code ``z``.  Cells outside the real
    matrix are set to :data:`OUT_OF_BOUNDS`.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise FormatError("row/col coordinate arrays must have equal length")
    counts = np.zeros(zspace.num_cells, dtype=np.int64)
    if rows.size:
        if rows.min() < 0 or cols.min() < 0:
            raise FormatError("negative matrix coordinates")
        if rows.max() >= zspace.rows or cols.max() >= zspace.cols:
            raise FormatError("matrix coordinates outside declared dimensions")
        zvals = morton_encode(rows // zspace.b_atomic, cols // zspace.b_atomic)
        np.add.at(counts, zvals.astype(np.int64), 1)
    # Mark padded cells that do not overlap the real matrix.
    side = zspace.side_blocks
    if side * zspace.b_atomic > max(zspace.rows, zspace.cols) or side > min(
        zspace.grid_rows, zspace.grid_cols
    ):
        block_rows = np.arange(side)
        out_row = block_rows >= zspace.grid_rows
        out_col = block_rows >= zspace.grid_cols
        grid_r, grid_c = np.meshgrid(block_rows, block_rows, indexing="ij")
        outside = out_row[grid_r] | out_col[grid_c]
        if outside.any():
            zvals = morton_encode(grid_r[outside], grid_c[outside])
            counts[zvals.astype(np.int64)] = OUT_OF_BOUNDS
    return counts


def zspace_size(rows: int, cols: int) -> int:
    """Paper's ``K = 4 ** max(ceil(log2 m), ceil(log2 n))`` element count."""
    exp = max(math.ceil(math.log2(max(1, rows))), math.ceil(math.log2(max(1, cols))))
    return 4**exp
