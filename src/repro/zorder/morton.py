"""Morton (Z-curve) encoding via bit interleaving.

The Z-value of a matrix coordinate ``(row, col)`` interleaves the bits of
the two indices (row bits land on odd positions, column bits on even
positions), so that sorting elements by Z-value stores every quadtree
quadrant contiguously in memory — the property paper Alg. 1 relies on.

All functions are vectorized over numpy arrays of (unsigned) integers and
support coordinates up to 2**31 - 1, i.e. 62-bit Z-values.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError

_MAX_COORD = (1 << 31) - 1

# Magic constants for the classic "spread bits" trick: each step doubles the
# gap between payload bits until every input bit sits on an even position.
_SPREAD_MASKS = (
    (16, 0x0000FFFF0000FFFF),
    (8, 0x00FF00FF00FF00FF),
    (4, 0x0F0F0F0F0F0F0F0F),
    (2, 0x3333333333333333),
    (1, 0x5555555555555555),
)


def _spread_bits(values: np.ndarray) -> np.ndarray:
    """Insert a zero bit between consecutive bits of each 32-bit value."""
    spread = values.astype(np.uint64)
    for shift, mask in _SPREAD_MASKS:
        spread = (spread | (spread << np.uint64(shift))) & np.uint64(mask)
    return spread


# Compact steps: after each (x | x >> shift), the payload bits sit in
# groups twice as wide, selected by the paired mask.
_COMPACT_MASKS = (
    (1, 0x3333333333333333),
    (2, 0x0F0F0F0F0F0F0F0F),
    (4, 0x00FF00FF00FF00FF),
    (8, 0x0000FFFF0000FFFF),
    (16, 0x00000000FFFFFFFF),
)


def _compact_bits(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread_bits`: keep every other bit, close gaps."""
    packed = values.astype(np.uint64) & np.uint64(0x5555555555555555)
    for shift, mask in _COMPACT_MASKS:
        packed = (packed | (packed >> np.uint64(shift))) & np.uint64(mask)
    return packed


def morton_encode(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Interleave ``rows`` and ``cols`` into Z-values (vectorized).

    Row bits occupy the odd (higher) interleaved positions so the Z-order
    walks the matrix in the conventional upper-left, upper-right,
    lower-left, lower-right quadrant order.
    """
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise FormatError("Morton coordinates must be non-negative")
    if rows.size and (rows.max() > _MAX_COORD or cols.max() > _MAX_COORD):
        raise FormatError(f"Morton coordinates must be <= {_MAX_COORD}")
    return (_spread_bits(rows) << np.uint64(1)) | _spread_bits(cols)


def morton_decode(zvalues: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split Z-values back into ``(rows, cols)`` coordinate arrays."""
    zvalues = np.asarray(zvalues, dtype=np.uint64)
    rows = _compact_bits(zvalues >> np.uint64(1))
    cols = _compact_bits(zvalues)
    return rows.astype(np.int64), cols.astype(np.int64)


def morton_encode_scalar(row: int, col: int) -> int:
    """Scalar convenience wrapper around :func:`morton_encode`."""
    return int(morton_encode(np.array([row]), np.array([col]))[0])


def morton_decode_scalar(zvalue: int) -> tuple[int, int]:
    """Scalar convenience wrapper around :func:`morton_decode`."""
    rows, cols = morton_decode(np.array([zvalue], dtype=np.uint64))
    return int(rows[0]), int(cols[0])
