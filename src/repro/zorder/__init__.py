"""Z-order (Morton) encoding and Z-space bookkeeping.

The AT Matrix partitioner recurses over a square Z-space whose side is the
next power of two covering both matrix dimensions (paper section II-C1).
This subpackage provides the bit-interleaving primitives and the
``ZBlockCounts`` precomputation that paper Alg. 1 recurses on.
"""

from .morton import (
    morton_decode,
    morton_decode_scalar,
    morton_encode,
    morton_encode_scalar,
)
from .zspace import ZSpace, block_counts

__all__ = [
    "morton_encode",
    "morton_decode",
    "morton_encode_scalar",
    "morton_decode_scalar",
    "ZSpace",
    "block_counts",
]
