"""Durable file I/O primitives: atomic writes and the CRC32C checksum.

Every file the library persists — ``.npz`` archives, checkpoint journal
records, ``.mtx`` exports, observation dumps — goes through
:func:`atomic_write`: the bytes land in a temporary file in the target
directory, are flushed and fsynced, and only then renamed over the final
path with ``os.replace``.  A process killed mid-save therefore leaves
either the previous file intact or a stray ``*.tmp`` — never a truncated
final file that a later load dies on.  The repro-lint rule RPR007
enforces that no code under ``src/repro`` opens a final path for
writing directly.

:func:`crc32c` is the CRC-32C (Castagnoli) checksum used for
end-to-end integrity: archive format v2 stores one checksum per payload
array and the checkpoint journal stores one per record, so a flipped
bit at rest is caught at load time instead of surfacing as wrong
numerics.  The implementation is table-driven pure Python — fast enough
for the payload sizes this reproduction handles; swap in a hardware
``crc32c`` wheel for production-scale archives.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from collections.abc import Iterator
from pathlib import Path
from typing import IO, Any

#: Reflected CRC-32C (Castagnoli) polynomial (iSCSI, ext4, RFC 3720).
_CRC32C_POLY = 0x82F63B78


def _build_table() -> tuple[int, ...]:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_table()


def crc32c(data: bytes | bytearray | memoryview, value: int = 0) -> int:
    """CRC-32C checksum of ``data``, continuing from ``value``.

    ``crc32c(b, crc32c(a))`` equals ``crc32c(a + b)``, so multi-array
    payloads can be digested without concatenating their bytes.
    """
    table = _CRC32C_TABLE
    crc = (value ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


@contextlib.contextmanager
def atomic_write(
    target: str | Path, *, mode: str = "wb", encoding: str | None = None
) -> Iterator[IO[Any]]:
    """Write a file atomically: temp file + fsync + ``os.replace``.

    Yields a writable handle onto a temporary file created next to
    ``target`` (same filesystem, so the final rename is atomic).  On
    clean exit the temp file replaces ``target``; on any exception it is
    removed and the previous content of ``target`` — if any — survives
    untouched.
    """
    if mode not in {"w", "wb"}:
        raise ValueError(f"atomic_write supports modes 'w'/'wb', got {mode!r}")
    path = Path(target)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_bytes(target: str | Path, data: bytes) -> None:
    """Atomically replace ``target`` with ``data``."""
    with atomic_write(target, mode="wb") as handle:
        handle.write(data)


def atomic_write_text(
    target: str | Path, text: str, *, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``target`` with ``text``."""
    with atomic_write(target, mode="w", encoding=encoding) as handle:
        handle.write(text)
