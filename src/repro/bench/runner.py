"""Timing helpers shared by the benchmark scripts.

Each paper figure compares several whole-matrix multiplication
"approaches" (spspsp/spspd/spdd/ddd/ATMULT) on a suite of matrices.
:func:`run_algorithms` times a dict of thunks once each and returns
comparable results including the output's paper-model memory footprint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Mapping


@dataclass
class AlgorithmResult:
    """Outcome of timing one algorithm on one workload."""

    name: str
    seconds: float
    output_bytes: int | None = None
    extra: dict | None = None

    def relative_to(self, baseline_seconds: float) -> float:
        """Speed relative to a baseline (>1 means faster than baseline)."""
        return baseline_seconds / self.seconds if self.seconds else float("inf")


def time_call(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call, returning ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_algorithms(
    algorithms: Mapping[str, Callable[[], object]],
    *,
    output_bytes: Callable[[object], int] | None = None,
) -> dict[str, AlgorithmResult]:
    """Time each algorithm once; optionally account output memory.

    ``output_bytes`` receives each algorithm's return value and reports
    its paper-model footprint (e.g. ``lambda m: m.memory_bytes()``).
    """
    results: dict[str, AlgorithmResult] = {}
    for name, fn in algorithms.items():
        seconds, value = time_call(fn)
        size = output_bytes(value) if output_bytes is not None else None
        results[name] = AlgorithmResult(name, seconds, size)
    return results
