"""Benchmark harness helpers: timing, algorithm registry and reporting."""

from .runner import AlgorithmResult, run_algorithms, time_call
from .report import format_relative_table, format_series, format_table

__all__ = [
    "AlgorithmResult",
    "run_algorithms",
    "time_call",
    "format_table",
    "format_relative_table",
    "format_series",
]
