"""Plain-text table/series formatting for the benchmark output.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and readable in
pytest's captured output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths, strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def format_relative_table(
    workloads: Sequence[str],
    series: Mapping[str, Mapping[str, float]],
    *,
    baseline: str,
    title: str = "",
) -> str:
    """Per-workload speeds relative to a baseline algorithm (paper Fig. 8a).

    ``series[algorithm][workload]`` holds absolute seconds; output cells
    are ``baseline_seconds / algorithm_seconds`` so the baseline column
    is identically 1.0 and larger is faster.
    """
    headers = ["workload"] + list(series)
    rows = []
    for workload in workloads:
        base = series[baseline].get(workload)
        row: list[object] = [workload]
        for algorithm in series:
            seconds = series[algorithm].get(workload)
            if base is None or seconds is None or seconds == 0:
                row.append("-")
            else:
                row.append(f"{base / seconds:.2f}x")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_series(
    points: Mapping[str, float], *, unit: str = "", title: str = ""
) -> str:
    """One-line-per-point series (for figure-style data dumps)."""
    lines = [title] if title else []
    for key, value in points.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {key}: {value:.4g}{suffix}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
