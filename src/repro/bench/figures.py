"""Render paper-style figures from ``bench_results.json`` as ASCII bars.

The benches dump every raw timing into ``benchmarks/bench_results.json``;
this module (also runnable as ``python -m repro.bench.figures``) turns an
experiment's series into horizontal bar charts like the paper's Fig. 8a,
normalized to a chosen baseline algorithm.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..errors import ParseError

#: Width of the bar area in characters.
BAR_WIDTH = 40


def load_results(path: str | Path) -> dict:
    """Read and validate a bench_results.json payload."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParseError(f"cannot read bench results from {path}: {exc}") from exc
    if "seconds" not in payload:
        raise ParseError(f"{path} is not a bench_results.json (no 'seconds' key)")
    return payload


def render_experiment(
    payload: dict,
    experiment: str,
    *,
    baseline: str | None = None,
    bar_width: int = BAR_WIDTH,
) -> str:
    """Bar chart of one experiment, one group of bars per workload.

    Bar lengths show speed relative to the baseline algorithm (longer =
    faster); without a baseline, bars show inverse absolute time
    normalized to the fastest entry.
    """
    series = payload["seconds"].get(experiment)
    if not series:
        known = ", ".join(sorted(payload["seconds"]))
        raise ParseError(f"no experiment {experiment!r}; available: {known}")
    algorithms = sorted(series)
    if baseline is not None and baseline not in series:
        raise ParseError(f"baseline {baseline!r} not in experiment {experiment!r}")
    workloads = sorted({w for algo in series.values() for w in algo})

    lines = [f"{experiment}" + (f" (relative to {baseline})" if baseline else "")]
    label_width = max(len(a) for a in algorithms)
    for workload in workloads:
        lines.append(f"\n{workload}:")
        speeds = {}
        for algorithm in algorithms:
            seconds = series[algorithm].get(workload)
            if seconds is None or seconds <= 0:
                continue
            if baseline is not None:
                base = series[baseline].get(workload)
                if base is None:
                    continue
                speeds[algorithm] = base / seconds
            else:
                speeds[algorithm] = 1.0 / seconds
        if not speeds:
            lines.append("  (no data)")
            continue
        peak = max(speeds.values())
        for algorithm in algorithms:
            if algorithm not in speeds:
                continue
            value = speeds[algorithm]
            bar = "#" * max(1, int(round(value / peak * bar_width)))
            suffix = f"{value:6.2f}x" if baseline else f"{1 / value:9.4f} s"
            lines.append(f"  {algorithm:<{label_width}} |{bar:<{bar_width}} {suffix}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.figures",
        description="render bench_results.json experiments as ASCII bars",
    )
    parser.add_argument("results", help="path to bench_results.json")
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (e.g. fig8); omit to list available ids",
    )
    parser.add_argument("--baseline", default=None, help="baseline algorithm")
    args = parser.parse_args(argv)
    try:
        payload = load_results(args.results)
        if args.experiment is None:
            print("available experiments:")
            for name in sorted(payload["seconds"]):
                algorithms = ", ".join(sorted(payload["seconds"][name]))
                print(f"  {name}: {algorithms}")
            return 0
        print(render_experiment(payload, args.experiment, baseline=args.baseline))
        return 0
    except ParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
