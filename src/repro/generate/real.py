"""Loader for the paper's real evaluation matrices (when available).

The paper's R2-R4 and R7-R9 come from the SuiteSparse (formerly Florida)
collection; R1/R5/R6 are proprietary nuclear-physics Hamiltonians.  This
environment has no network access, so the benchmarks run on the
topology-class generators of :mod:`repro.generate.synthetic` — but a
user who has the real files can drop them into a directory and run the
whole evaluation on them through this loader.

Expected layout: ``<root>/<name>.mtx`` (Matrix Market), e.g.
``matrices/TSOPF_RS_b2383.mtx``.  Download via
https://sparse.tamu.edu (not done here).
"""

from __future__ import annotations

import os
from pathlib import Path

from ..errors import ReproError
from ..formats.coo import COOMatrix
from ..formats.matrix_market import read_matrix_market

#: Paper Table-I matrix names in the SuiteSparse collection, by suite key.
SUITESPARSE_NAMES: dict[str, str] = {
    "R2": "human_gene2",
    "R3": "TSOPF_RS_b2383",
    "R4": "mouse_gene",
    "R7": "barrier2-4",
    "R8": "pkustk14",
    "R9": "msdoor",
}

#: Environment variable pointing at the local matrix directory.
MATRIX_DIR_ENV = "REPRO_MATRIX_DIR"


class RealMatrixUnavailable(ReproError, FileNotFoundError):
    """The requested real-world matrix file is not present locally."""


def matrix_directory() -> Path | None:
    """The configured real-matrix directory, if any."""
    value = os.environ.get(MATRIX_DIR_ENV)
    return Path(value) if value else None


def real_matrix_path(key: str, root: str | Path | None = None) -> Path:
    """Path where the real matrix for a suite key is expected."""
    if key not in SUITESPARSE_NAMES:
        raise KeyError(
            f"no public real-world matrix for suite key {key!r}; "
            f"available: {sorted(SUITESPARSE_NAMES)}"
        )
    base = Path(root) if root is not None else matrix_directory()
    if base is None:
        raise RealMatrixUnavailable(
            f"set ${MATRIX_DIR_ENV} (or pass root=) to the directory "
            f"holding the SuiteSparse .mtx files"
        )
    return base / f"{SUITESPARSE_NAMES[key]}.mtx"


def load_real_matrix(key: str, root: str | Path | None = None) -> COOMatrix:
    """Load the paper's actual matrix for a suite key from local disk.

    Raises :class:`RealMatrixUnavailable` when the file is missing, so
    callers can fall back to the synthetic stand-in::

        try:
            staged = load_real_matrix("R3")
        except RealMatrixUnavailable:
            staged = load_matrix("R3")   # synthetic topology class
    """
    path = real_matrix_path(key, root)
    if not path.is_file():
        raise RealMatrixUnavailable(
            f"{path} not found; download {SUITESPARSE_NAMES[key]!r} from "
            f"https://sparse.tamu.edu and place it there"
        )
    return read_matrix_market(path).sum_duplicates()


def available_real_matrices(root: str | Path | None = None) -> list[str]:
    """Suite keys whose real matrix files are present locally."""
    base = Path(root) if root is not None else matrix_directory()
    if base is None:
        return []
    return [
        key
        for key, name in sorted(SUITESPARSE_NAMES.items())
        if (base / f"{name}.mtx").is_file()
    ]
