"""R-MAT recursive graph generator (Chakrabarti, Zhan, Faloutsos).

The generator recursively drops each edge into one of the four matrix
quadrants with probabilities ``(a, b, c, d)`` for (upper-left,
upper-right, lower-left, lower-right); equal parameters give a nearly
uniform matrix, while a dominant ``a`` concentrates edges in the upper
left at every recursion level — the skew knob of the paper's G1-G9
series (Table I).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..formats.coo import COOMatrix


def rmat_matrix(
    n: int,
    nnz: int,
    a: float,
    b: float,
    c: float,
    d: float,
    *,
    seed: int = 0,
    values: str = "uniform",
    max_rounds: int = 16,
    strict: bool = True,
) -> COOMatrix:
    """Generate an ``n x n`` RMAT matrix with exactly ``nnz`` non-zeros.

    ``n`` is rounded up internally to a power of two for the recursion
    and coordinates outside ``n`` are rejected, as are duplicate edges;
    extra edges are drawn in batches until the target count is reached.

    Parameters
    ----------
    n:
        Matrix dimension.
    nnz:
        Exact number of distinct non-zero coordinates to produce.
    a, b, c, d:
        Quadrant probabilities (must sum to 1 within 1e-6).
    values:
        ``"uniform"`` draws values from U(0, 1); ``"ones"`` sets all
        values to 1.0 (adjacency semantics).
    strict:
        With heavy skew the distinct-edge space saturates (duplicates
        collapse, as the paper observes for its result matrices).  When
        ``strict`` is False the generator returns however many distinct
        edges it reached after ``max_rounds`` instead of raising.
    """
    if n <= 0:
        raise ConfigError(f"dimension must be positive, got {n}")
    if not 0 <= nnz <= n * n:
        raise ConfigError(f"nnz must be in [0, n*n], got {nnz}")
    probs = np.array([a, b, c, d], dtype=np.float64)
    if probs.min() < 0 or abs(probs.sum() - 1.0) > 1e-6:
        raise ConfigError(f"quadrant probabilities must be >= 0 and sum to 1, got {probs}")
    if values not in ("uniform", "ones"):
        raise ConfigError(f"values must be 'uniform' or 'ones', got {values!r}")

    rng = np.random.default_rng(seed)
    scale = max(1, int(np.ceil(np.log2(n))))
    accepted: set[int] = set()
    keys = np.empty(0, dtype=np.int64)
    for _ in range(max_rounds):
        missing = nnz - len(accepted)
        if missing <= 0:
            break
        batch = max(1024, int(missing * 1.5))
        quadrants = rng.choice(4, size=(batch, scale), p=probs)
        row_bits = (quadrants >> 1).astype(np.int64)
        col_bits = (quadrants & 1).astype(np.int64)
        weights = (1 << np.arange(scale - 1, -1, -1, dtype=np.int64))
        rows = row_bits @ weights
        cols = col_bits @ weights
        in_bounds = (rows < n) & (cols < n)
        flat = rows[in_bounds] * n + cols[in_bounds]
        accepted.update(flat.tolist())
        if len(accepted) >= nnz:
            break
    else:
        if strict:
            raise ConfigError(
                f"could not draw {nnz} distinct edges in {max_rounds} rounds"
                " (nnz too close to the skew-saturated edge space?)"
            )
        nnz = len(accepted)
    keys = np.fromiter(accepted, dtype=np.int64, count=len(accepted))
    if len(keys) > nnz:
        # Trim the surplus uniformly at random to avoid positional bias.
        keys = rng.permutation(keys)[:nnz]
    keys = np.sort(keys)
    vals = np.ones(nnz) if values == "ones" else rng.random(nnz)
    return COOMatrix(n, n, keys // n, keys % n, vals, check=False, copy=False)


#: The paper's G1-G9 RMAT parameter series (Table I).
PAPER_RMAT_PARAMETERS: dict[str, tuple[float, float, float, float]] = {
    "G1": (0.25, 0.25, 0.25, 0.25),
    "G2": (0.35, 0.22, 0.22, 0.21),
    "G3": (0.45, 0.18, 0.18, 0.19),
    "G4": (0.55, 0.15, 0.15, 0.15),
    "G5": (0.61, 0.13, 0.13, 0.13),
    "G6": (0.64, 0.12, 0.12, 0.12),
    "G7": (0.67, 0.11, 0.11, 0.11),
    "G8": (0.70, 0.10, 0.10, 0.10),
    "G9": (0.73, 0.09, 0.09, 0.09),
}
