"""Topology-class generators standing in for the paper's real matrices.

Each generator reproduces the non-zero *pattern class* of one matrix
domain from Table I.  The paper's per-matrix analysis depends on exactly
these classes:

* nuclear-physics Hamiltonians (R1, R5, R6): block-diagonal dense blocks
  of varying size from the shell-model configuration structure, plus
  sparse off-diagonal coupling -> :func:`block_diagonal_matrix`;
* power networks (R3, TSOPF_RS_b2383): many small *repeated* dense blocks
  along the diagonal with a hypersparse background ->
  :func:`power_network_matrix` (compare paper Fig. 2);
* gene-expression similarity (R2, R4): overlapping dense row/column
  clusters over a uniform background -> :func:`clustered_matrix`;
* structural/FEM and semiconductor problems (R7-R9): narrow-band,
  uniformly sparse, no dense regions -> :func:`banded_matrix`;
* plain uniform sparsity -> :func:`uniform_random_matrix`.

All generators are deterministic in ``seed`` and return COO staging
matrices with values in (0, 1].
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..formats.coo import COOMatrix


def _dedupe(rows: np.ndarray, cols: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    keys = np.unique(rows * np.int64(n) + cols)
    return keys // n, keys % n


def _finish(
    n: int, rows: np.ndarray, cols: np.ndarray, rng: np.random.Generator
) -> COOMatrix:
    rows, cols = _dedupe(rows, cols, n)
    values = rng.uniform(1e-3, 1.0, size=len(rows))
    return COOMatrix(n, n, rows, cols, values, check=False, copy=False)


def _uniform_coords(
    rng: np.random.Generator, n: int, nnz: int
) -> tuple[np.ndarray, np.ndarray]:
    if nnz <= 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Draw ~25% extra to survive deduplication at these densities.
    draw = min(n * n, int(nnz * 1.25) + 16)
    keys = np.unique(rng.integers(0, n * n, size=draw, dtype=np.int64))
    if len(keys) > nnz:
        keys = rng.permutation(keys)[:nnz]
    return keys // n, keys % n


def uniform_random_matrix(n: int, nnz: int, *, seed: int = 0) -> COOMatrix:
    """Uniformly random sparse matrix (no structure at all)."""
    if n <= 0:
        raise ConfigError(f"dimension must be positive, got {n}")
    rng = np.random.default_rng(seed)
    rows, cols = _uniform_coords(rng, n, nnz)
    return _finish(n, rows, cols, rng)


def block_diagonal_matrix(
    n: int,
    *,
    num_blocks: int = 12,
    block_fill: float = 0.95,
    background_density: float = 0.002,
    size_decay: float = 0.7,
    seed: int = 0,
) -> COOMatrix:
    """Hamiltonian-like matrix: dense diagonal blocks of decaying size.

    Models the configuration-interaction block structure of the paper's
    nuclear-physics matrices (R1, R5, R6): a few large dense blocks,
    progressively smaller ones, and sparse off-diagonal coupling.
    """
    if num_blocks < 1:
        raise ConfigError(f"num_blocks must be >= 1, got {num_blocks}")
    rng = np.random.default_rng(seed)
    weights = size_decay ** np.arange(num_blocks)
    sizes = np.maximum(1, (weights / weights.sum() * n).astype(np.int64))
    # Adjust the largest block so the sizes cover exactly n.
    sizes[0] += n - sizes.sum()
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    rows_runs: list[np.ndarray] = []
    cols_runs: list[np.ndarray] = []
    for offset, size in zip(offsets, sizes, strict=True):
        cells = int(size) * int(size)
        fill = min(cells, max(1, int(cells * block_fill)))
        keys = rng.choice(cells, size=fill, replace=False)
        rows_runs.append(offset + keys // size)
        cols_runs.append(offset + keys % size)
    extra = int(n * n * background_density)
    bg_rows, bg_cols = _uniform_coords(rng, n, extra)
    rows_runs.append(bg_rows)
    cols_runs.append(bg_cols)
    return _finish(n, np.concatenate(rows_runs), np.concatenate(cols_runs), rng)


def power_network_matrix(
    n: int,
    *,
    block_size: int = 96,
    num_blocks: int | None = None,
    block_fill: float = 0.85,
    background_density: float = 0.0015,
    seed: int = 0,
) -> COOMatrix:
    """Power-network-like matrix: repeated dense diagonal blocks (R3).

    Reproduces the TSOPF_RS_b2383 topology of paper Fig. 2: uniform-size
    dense blocks marching down the diagonal, hypersparse elsewhere.
    """
    if block_size <= 0 or block_size > n:
        raise ConfigError(f"block_size must be in [1, n], got {block_size}")
    rng = np.random.default_rng(seed)
    max_blocks = n // block_size
    blocks = max_blocks if num_blocks is None else min(num_blocks, max_blocks)
    rows_runs: list[np.ndarray] = []
    cols_runs: list[np.ndarray] = []
    cells = block_size * block_size
    fill = max(1, int(cells * block_fill))
    for i in range(blocks):
        offset = i * block_size
        keys = rng.choice(cells, size=fill, replace=False)
        rows_runs.append(offset + keys // block_size)
        cols_runs.append(offset + keys % block_size)
    bg_rows, bg_cols = _uniform_coords(rng, n, int(n * n * background_density))
    rows_runs.append(bg_rows)
    cols_runs.append(bg_cols)
    return _finish(n, np.concatenate(rows_runs), np.concatenate(cols_runs), rng)


def clustered_matrix(
    n: int,
    nnz: int,
    *,
    num_clusters: int = 8,
    cluster_fraction: float = 0.55,
    cluster_span: float = 0.12,
    seed: int = 0,
) -> COOMatrix:
    """Gene-expression-like matrix: overlapping dense clusters (R2, R4).

    ``cluster_fraction`` of the non-zeros fall into ``num_clusters``
    random square index neighborhoods (each spanning ``cluster_span * n``
    indices); the rest are uniform background.  This yields regions of
    clearly higher local density over a populated background, like the
    thresholded co-expression similarity matrices of the paper.
    """
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ConfigError("cluster_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    span = max(2, int(n * cluster_span))
    per_cluster = (
        int(nnz * cluster_fraction / num_clusters) if num_clusters else 0
    )
    rows_runs: list[np.ndarray] = []
    cols_runs: list[np.ndarray] = []
    for _ in range(num_clusters):
        row0 = int(rng.integers(0, max(1, n - span)))
        col0 = int(rng.integers(0, max(1, n - span)))
        count = min(per_cluster, span * span)
        keys = rng.choice(span * span, size=count, replace=False)
        rows_runs.append(row0 + keys // span)
        cols_runs.append(col0 + keys % span)
    background = nnz - num_clusters * per_cluster
    bg_rows, bg_cols = _uniform_coords(rng, n, background)
    rows_runs.append(bg_rows)
    cols_runs.append(bg_cols)
    return _finish(n, np.concatenate(rows_runs), np.concatenate(cols_runs), rng)


def banded_matrix(
    n: int,
    nnz: int,
    *,
    bandwidth: int | None = None,
    seed: int = 0,
) -> COOMatrix:
    """Structural-problem-like matrix: narrow band, uniformly sparse.

    Stands in for the FEM/semiconductor matrices R7-R9: every non-zero
    lies within ``bandwidth`` of the diagonal, the density is uniform
    along the band, and there are no dense regions — the class where the
    paper finds no optimization potential and fixed tiling fails.
    """
    rng = np.random.default_rng(seed)
    if bandwidth is None:
        bandwidth = max(2, n // 64)
    if bandwidth < 1 or bandwidth > n:
        raise ConfigError(f"bandwidth must be in [1, n], got {bandwidth}")
    draw = int(nnz * 1.4) + 16
    rows = rng.integers(0, n, size=draw, dtype=np.int64)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=draw, dtype=np.int64)
    cols = rows + offsets
    keep = (cols >= 0) & (cols < n)
    rows, cols = _dedupe(rows[keep], cols[keep], n)
    if len(rows) > nnz:
        pick = rng.permutation(len(rows))[:nnz]
        pick.sort()
        rows, cols = rows[pick], cols[pick]
    values = rng.uniform(1e-3, 1.0, size=len(rows))
    return COOMatrix(n, n, rows, cols, values, check=False, copy=False)
