"""The scaled Table-I matrix suite.

Maps every matrix of the paper's Table I (R1-R9 real-world, G1-G9 RMAT)
to a deterministic synthetic generator reproducing its topology class at
laptop scale.  Dimensions are scaled down ~16-100x (together with the
scaled LLC in :mod:`repro.config`, all dimensionless ratios driving the
tiling decisions are preserved); densities match the paper where the
flops budget allows.

Use :func:`load_matrix` to obtain the staged COO matrix for a key, and
:func:`table1_row` for the statistics the paper's Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..formats.coo import COOMatrix
from .rmat import PAPER_RMAT_PARAMETERS, rmat_matrix
from .synthetic import (
    banded_matrix,
    block_diagonal_matrix,
    clustered_matrix,
    power_network_matrix,
)


@dataclass(frozen=True)
class SuiteEntry:
    """One matrix of the scaled evaluation suite."""

    key: str
    name: str
    domain: str
    n: int
    description: str
    factory: Callable[[], COOMatrix]

    def load(self) -> COOMatrix:
        """Generate the matrix (deterministic)."""
        return self.factory()


def _entry(
    key: str,
    name: str,
    domain: str,
    n: int,
    description: str,
    factory: Callable[[], COOMatrix],
) -> SuiteEntry:
    return SuiteEntry(key, name, domain, n, description, factory)


_G_DIM = 2048
_G_NNZ = 60_000

SUITE: dict[str, SuiteEntry] = {
    "R1": _entry(
        "R1", "hamiltonian1-like", "Nuclear Physics", 800,
        "small, dense-ish shell-model Hamiltonian (paper rho=14.8%)",
        lambda: block_diagonal_matrix(
            800, num_blocks=10, block_fill=0.88, background_density=0.048,
            size_decay=0.8, seed=101,
        ),
    ),
    "R2": _entry(
        "R2", "human_gene-like", "Gene Expr. (BioInf.)", 1280,
        "co-expression similarity with overlapping clusters (paper rho=5.0%)",
        lambda: clustered_matrix(
            1280, 82_000, num_clusters=10, cluster_fraction=0.6,
            cluster_span=0.10, seed=102,
        ),
    ),
    "R3": _entry(
        "R3", "TSOPF_RS_b2383-like", "Power Network (Eng.)", 2048,
        "repeated dense diagonal blocks, hypersparse background "
        "(paper rho=2.2%, Fig. 2)",
        lambda: power_network_matrix(
            2048, block_size=96, num_blocks=14, block_fill=0.85,
            background_density=0.0012, seed=103,
        ),
    ),
    "R4": _entry(
        "R4", "mouse_gene-like", "Gene Expr. (BioInf.)", 2560,
        "sparser co-expression similarity (paper rho=1.4%)",
        lambda: clustered_matrix(
            2560, 92_000, num_clusters=12, cluster_fraction=0.5,
            cluster_span=0.07, seed=104,
        ),
    ),
    "R5": _entry(
        "R5", "hamiltonian2-like", "Nuclear Physics", 1664,
        "medium Hamiltonian, block structure (paper rho=6.7%)",
        lambda: block_diagonal_matrix(
            1664, num_blocks=16, block_fill=0.9, background_density=0.012,
            size_decay=0.95, seed=105,
        ),
    ),
    "R6": _entry(
        "R6", "hamiltonian3-like", "Nuclear Physics", 2048,
        "large Hamiltonian, block structure (paper rho=5.4%)",
        lambda: block_diagonal_matrix(
            2048, num_blocks=18, block_fill=0.88, background_density=0.010,
            size_decay=0.96, seed=106,
        ),
    ),
    "R7": _entry(
        "R7", "barrier2-4-like", "Semicond. Device (Eng.)", 3392,
        "hypersparse narrow band, no dense regions (paper rho=0.016%)",
        lambda: banded_matrix(3392, 18_000, bandwidth=24, seed=107),
    ),
    "R8": _entry(
        "R8", "pkustk14-like", "Structural Problem (Eng.)", 4096,
        "hypersparse band, large dims, small result (paper rho=0.048%)",
        lambda: banded_matrix(4096, 80_000, bandwidth=48, seed=108),
    ),
    "R9": _entry(
        "R9", "msdoor-like", "Structural Problem (Eng.)", 4160,
        "largest dims, extremely sparse band (paper rho=0.011%)",
        lambda: banded_matrix(4160, 19_000, bandwidth=32, seed=109),
    ),
}

for _key, _params in PAPER_RMAT_PARAMETERS.items():
    SUITE[_key] = _entry(
        _key,
        f"RMAT{_key[1:]}",
        "RMAT graph",
        _G_DIM,
        f"RMAT with (a,b,c,d)={_params}; skew increases G1 -> G9",
        (lambda params=_params, key=_key: rmat_matrix(
            _G_DIM, _G_NNZ, *params, seed=200 + int(key[1:]), strict=False
        )),
    )


def suite_keys(*, real: bool = True, generated: bool = True) -> list[str]:
    """Suite keys in Table-I order, optionally filtered by family."""
    keys: list[str] = []
    if real:
        keys.extend(f"R{i}" for i in range(1, 10))
    if generated:
        keys.extend(f"G{i}" for i in range(1, 10))
    return keys


def load_matrix(key: str) -> COOMatrix:
    """Generate the suite matrix for ``key`` (deterministic)."""
    try:
        entry = SUITE[key]
    except KeyError:
        raise KeyError(f"unknown suite key {key!r}; known: {sorted(SUITE)}") from None
    return entry.load()


def table1_row(key: str, matrix: COOMatrix | None = None) -> dict[str, object]:
    """The paper's Table-I statistics for one suite matrix."""
    entry = SUITE[key]
    staged = matrix if matrix is not None else entry.load()
    canonical = staged.sum_duplicates()
    return {
        "key": key,
        "name": entry.name,
        "domain": entry.domain,
        "dimensions": f"{canonical.rows} x {canonical.cols}",
        "nnz": canonical.nnz,
        "density_percent": 100.0 * canonical.density,
        "binary_size_bytes": canonical.memory_bytes(),
    }
