"""Workload generators: RMAT graphs and real-world-like matrix topologies.

The paper evaluates on Florida-collection matrices, proprietary nuclear
Hamiltonians and RMAT-generated graphs (Table I).  The real matrices are
not redistributable/downloadable offline, so
:mod:`~repro.generate.synthetic` provides per-domain topology generators
reproducing each matrix's non-zero *pattern class* (the property the
paper's analysis depends on), and :mod:`~repro.generate.suite` assembles
the scaled Table-I equivalent suite.
"""

from .rmat import rmat_matrix
from .synthetic import (
    banded_matrix,
    block_diagonal_matrix,
    clustered_matrix,
    power_network_matrix,
    uniform_random_matrix,
)
from .suite import SUITE, SuiteEntry, load_matrix, suite_keys

__all__ = [
    "rmat_matrix",
    "block_diagonal_matrix",
    "power_network_matrix",
    "clustered_matrix",
    "banded_matrix",
    "uniform_random_matrix",
    "SUITE",
    "SuiteEntry",
    "load_matrix",
    "suite_keys",
]
