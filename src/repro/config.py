"""System configuration: cache geometry, element sizes, tiling parameters.

The paper derives its tile-size bounds from the last-level cache (LLC) of
the host machine (Eqs. 1 and 2) and fixes the atomic block size
``b_atomic = 2**k`` to match.  :class:`SystemConfig` carries those machine
parameters plus the tunables ``alpha``/``beta`` so every component of the
library (partitioner, cost model, scheduler) reads the same values.

Two size notions appear throughout:

``S_DENSE``
    bytes per element in the dense row-major representation (a double).
``S_SPARSE``
    bytes per element in the sparse CSR representation (value + column id
    + amortized row pointer, 16 bytes in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .errors import ConfigError

#: Bytes per element of a dense (row-major double) matrix, paper's S_d.
S_DENSE = 8

#: Bytes per element of a sparse CSR matrix (value + coordinate), paper's S_sp.
S_SPARSE = 16

#: Default simulated last-level cache size.  The paper's machine has a 24 MiB
#: LLC and uses b_atomic = 1024; we default to a scaled 384 KiB which yields
#: b_atomic = 128 through exactly the same formula, preserving every
#: dimensionless ratio (see DESIGN.md section 5).
DEFAULT_LLC_BYTES = 384 * 1024


def _floor_pow2(value: int) -> int:
    """Largest power of two that is <= ``value`` (``value`` >= 1)."""
    return 1 << (int(value).bit_length() - 1)


def validate_unit_interval(value: float, name: str = "value") -> float:
    """``value`` as a float, or :class:`ConfigError` unless it lies in [0, 1]."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number in [0, 1], got {value!r}") from None
    if math.isnan(number) or not 0.0 <= number <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")
    return number


def validate_positive(value: float, name: str = "value") -> float:
    """``value`` as a float, or :class:`ConfigError` unless it is > 0."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a positive number, got {value!r}") from None
    if math.isnan(number) or number <= 0.0:
        raise ConfigError(f"{name} must be positive, got {value!r}")
    return number


def validate_non_negative(value: float, name: str = "value") -> float:
    """``value`` as a float, or :class:`ConfigError` unless it is >= 0."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{name} must be a non-negative number, got {value!r}"
        ) from None
    if math.isnan(number) or number < 0.0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return number


@dataclass(frozen=True)
class SystemConfig:
    """Machine and tiling parameters shared across the library.

    Parameters
    ----------
    llc_bytes:
        Last-level cache size in bytes.  Drives the maximum tile sizes of
        paper Eqs. (1) and (2).
    alpha:
        Number of tiles that must fit into the LLC simultaneously
        (paper: ``alpha >= 3`` preserves locality for binary operators).
    beta:
        Number of accumulator arrays of one tile-width that must fit into
        the LLC (second bound of Eq. 2).
    b_atomic:
        Atomic (logical) block edge length; must be a power of two.  When
        ``None`` it is derived as the largest power of two not exceeding
        the maximum dense tile size, which reproduces the paper's choice
        of ``b_atomic = tau_d_max = 1024`` on a 24 MiB LLC.
    """

    llc_bytes: int = DEFAULT_LLC_BYTES
    alpha: int = 3
    beta: int = 3
    b_atomic: int | None = None
    dense_element_bytes: int = S_DENSE
    sparse_element_bytes: int = S_SPARSE

    def __post_init__(self) -> None:
        if self.llc_bytes <= 0:
            raise ConfigError(f"llc_bytes must be positive, got {self.llc_bytes}")
        if self.alpha < 1:
            raise ConfigError(f"alpha must be >= 1, got {self.alpha}")
        if self.beta < 1:
            raise ConfigError(f"beta must be >= 1, got {self.beta}")
        if self.dense_element_bytes <= 0 or self.sparse_element_bytes <= 0:
            raise ConfigError("element byte sizes must be positive")
        if self.b_atomic is None:
            derived = _floor_pow2(max(2, self.max_dense_tile_dim()))
            object.__setattr__(self, "b_atomic", derived)
        else:
            b = self.b_atomic
            if b < 2 or (b & (b - 1)) != 0:
                raise ConfigError(
                    f"b_atomic must be a power of two >= 2, got {b}"
                )

    # -- paper Eq. (1) ----------------------------------------------------
    def max_dense_tile_dim(self) -> int:
        """Maximum dense tile edge ``tau_d_max = sqrt(LLC / (alpha * S_d))``."""
        return max(1, int(math.sqrt(self.llc_bytes / (self.alpha * self.dense_element_bytes))))

    # -- paper Eq. (2) ----------------------------------------------------
    def max_sparse_tile_dim(self, density: float) -> int:
        """Maximum sparse tile edge for a tile of the given density.

        ``tau_sp_max = min( sqrt(LLC / (alpha * rho * S_sp)),
        LLC / (beta * S_d) )``.  The first bound keeps the tile's memory
        footprint under ``LLC / alpha``; the second keeps ``beta``
        accumulator arrays of one tile-width inside the LLC.
        """
        if not 0.0 <= density <= 1.0:
            raise ConfigError(f"density must be in [0, 1], got {density}")
        dim_bound = self.llc_bytes // (self.beta * self.dense_element_bytes)
        if density == 0.0:
            return max(1, dim_bound)
        mem_bound = math.sqrt(
            self.llc_bytes / (self.alpha * density * self.sparse_element_bytes)
        )
        return max(1, int(min(mem_bound, dim_bound)))

    @property
    def k_atomic(self) -> int:
        """Exponent of the atomic block size, ``b_atomic = 2**k_atomic``."""
        assert self.b_atomic is not None
        return self.b_atomic.bit_length() - 1

    def with_llc(self, llc_bytes: int) -> SystemConfig:
        """A copy with a different LLC size and re-derived ``b_atomic``."""
        return replace(self, llc_bytes=llc_bytes, b_atomic=None)


#: Library-wide default configuration.
DEFAULT_CONFIG = SystemConfig()
