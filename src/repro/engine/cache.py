"""Keyed plan cache: skip re-planning for same-topology multiplies.

Iterative workloads (solvers, chained expressions, power iteration)
multiply the *same* matrix topology over and over with different values.
Planning — density estimation, the water-level sweep, thousands of
kernel decisions — depends only on topology and configuration, so its
result is cacheable: :class:`PlanCache` maps
``(A fingerprint, B fingerprint, setup key)`` to the resolved
:class:`~repro.engine.plan.ExecutionPlan`.

The cache is LRU over an approximate byte budget
(:meth:`ExecutionPlan.memory_bytes`), thread-safe, and observable: hits,
misses and evictions land both in local counters (``cache.stats()``
returns a frozen :class:`CacheStats` snapshot) and, when an observation
session is active, in the ``plan_cache.hits`` / ``plan_cache.misses`` /
``plan_cache.evictions`` metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any

from ..observe import session as observe_session
from .plan import ExecutionPlan, FusedChainPlan

#: Default byte budget: roomy enough for hundreds of realistic plans.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: What a :class:`PlanCache` stores: single-product plans keyed by
#: :class:`PlanKey`, whole fused chains keyed by :class:`ChainKey`.
CachedPlan = ExecutionPlan | FusedChainPlan


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one :class:`PlanCache`'s counters.

    ``stats()`` used to return a raw dict; the dataclass names the shape
    so callers (and the service metrics endpoint) can rely on it.  The
    mapping-style ``stats["hits"]`` spelling keeps working via
    :meth:`__getitem__`.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int
    max_bytes: int

    @property
    def lookups(self) -> int:
        """Total cache probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first probe."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain JSON-serializable dict."""
        return asdict(self)

    def __getitem__(self, key: str) -> Any:
        try:
            value: Any = getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None
        return value


@dataclass(frozen=True)
class PlanKey:
    """Full identity of a plan: operand topologies plus planning setup."""

    a_fingerprint: str
    b_fingerprint: str
    setup_key: str


@dataclass(frozen=True)
class ChainKey:
    """Full identity of a fused chain plan.

    Every leaf operand's structure fingerprint in chain order plus the
    setup key.  The parenthesization is *not* part of the key: the chain
    DP is deterministic given the leaf structures and the configuration,
    so the key's inputs already determine it.
    """

    operand_fingerprints: tuple[str, ...]
    setup_key: str


CacheKey = PlanKey | ChainKey


class PlanCache:
    """LRU cache of single-product and fused chain plans (byte budget).

    >>> cache = PlanCache(max_bytes=1 << 20)
    >>> cache.stats()["hits"]
    0
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._plans: OrderedDict[CacheKey, CachedPlan] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: CacheKey) -> CachedPlan | None:
        """The cached plan for ``key``, bumped to most-recently-used."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                observe_session.counter("plan_cache.misses").inc()
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            observe_session.counter("plan_cache.hits").inc()
            return plan

    def put(self, key: CacheKey, plan: CachedPlan) -> None:
        """Insert ``plan``, evicting least-recently-used entries to fit.

        A plan larger than the whole budget is not cached at all (it
        would only evict everything and then miss next time anyway).
        """
        size = plan.memory_bytes()
        if size > self.max_bytes:
            return
        with self._lock:
            previous = self._plans.pop(key, None)
            if previous is not None:
                self._bytes -= previous.memory_bytes()
            self._plans[key] = plan
            self._bytes += size
            while self._bytes > self.max_bytes and len(self._plans) > 1:
                _, evicted = self._plans.popitem(last=False)
                self._bytes -= evicted.memory_bytes()
                self.evictions += 1
                observe_session.counter("plan_cache.evictions").inc()

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        """Frozen snapshot of the cache counters and occupancy."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._plans),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
            )
