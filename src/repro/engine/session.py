"""Session: one configuration, one plan cache, one observation.

A :class:`Session` is the object-oriented entry point of the redesigned
API: it owns a resolved :class:`~repro.engine.options.MultiplyOptions`
(with a :class:`~repro.engine.cache.PlanCache` always attached) and
optionally an :class:`~repro.observe.Observation`, and exposes the
operator surface — multiply, parallel multiply, chains, matrix-vector
products and the iterative solvers — with plan reuse wired through
everything:

>>> from repro import Session
>>> session = Session()
>>> # result, report = session.multiply(a, b)
>>> # outcome = session.solve(a, rhs, method="cg")  # plans A once

Solvers driven through a session multiply via the engine, so iterations
2..N of a solve replay the cached plan instead of re-estimating and
re-optimizing (see docs/API.md).

A session is also a context manager: ``with Session(...) as s:`` closes
it on exit, which exports the session's observation to the paths given
as ``metrics_out`` / ``trace_out`` (creating an
:class:`~repro.observe.Observation` automatically when either path is
set and no observer was passed).
"""

from __future__ import annotations

from collections.abc import Callable
from types import TracebackType
from typing import TYPE_CHECKING, Any

import numpy as np

from ..config import SystemConfig
from ..core.operands import MatrixOperand, as_at_matrix
from ..cost.model import CostModel
from ..errors import ConfigError
from ..formats.dense import DenseMatrix
from ..observe import Observation, write_chrome_trace, write_json
from .api import plan as plan_api
from .cache import CacheStats, PlanCache
from .options import MultiplyOptions
from .plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.atmatrix import ATMatrix
    from ..core.chain import ChainReport
    from ..core.report import MultiplyReport, ParallelReport
    from ..expr import MatrixExpr
    from ..solve import SolveResult
    from ..topology.system import SystemTopology


class Session:
    """A long-lived execution context with plan reuse.

    Parameters
    ----------
    config, cost_model:
        Overrides folded into the session's options.
    options:
        Base :class:`MultiplyOptions`; defaults to a fresh one.
    plan_cache:
        The cache to use; when neither this nor ``options.plan_cache``
        is given, the session creates its own :class:`PlanCache` — a
        session always has one.
    observer:
        An :class:`~repro.observe.Observation` recorded into by every
        call made through the session.
    metrics_out, trace_out:
        Paths the session's observation is exported to on
        :meth:`close` (JSON summary and Chrome trace respectively).
        Setting either without an explicit ``observer`` makes the
        session create its own :class:`~repro.observe.Observation`.
    """

    def __init__(
        self,
        *,
        config: SystemConfig | None = None,
        cost_model: CostModel | None = None,
        options: MultiplyOptions | None = None,
        plan_cache: PlanCache | None = None,
        observer: Observation | None = None,
        metrics_out: str | None = None,
        trace_out: str | None = None,
    ) -> None:
        base = options if options is not None else MultiplyOptions()
        overrides: dict[str, Any] = {}
        if config is not None:
            overrides["config"] = config
        if cost_model is not None:
            overrides["cost_model"] = cost_model
        if observer is None and (metrics_out or trace_out):
            observer = Observation()
        if observer is not None:
            overrides["observer"] = observer
        cache = plan_cache if plan_cache is not None else base.plan_cache
        overrides["plan_cache"] = cache if cache is not None else PlanCache()
        self.options = base.replace(**overrides)
        self.metrics_out = metrics_out
        self.trace_out = trace_out
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> Session:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def close(self) -> None:
        """Flush the session: export its observation to the given paths.

        Idempotent; called automatically when the session is used as a
        context manager.  A session without an observer (or without
        export paths) closes as a no-op, and the plan cache stays usable
        so a closed session can still multiply — closing only concludes
        the observability story.
        """
        if self._closed:
            return
        self._closed = True
        observer = self.observer
        if observer is None:
            return
        if self.metrics_out is not None:
            write_json(observer, self.metrics_out)
        if self.trace_out is not None:
            write_chrome_trace(observer, self.trace_out)

    # -- resolved components ----------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self.options.resolved_config()

    @property
    def cost_model(self) -> CostModel:
        return self.options.resolved_cost_model()

    @property
    def plan_cache(self) -> PlanCache:
        cache = self.options.plan_cache
        assert cache is not None  # the constructor guarantees it
        return cache

    @property
    def observer(self) -> Observation | None:
        return self.options.observer

    def cache_stats(self) -> CacheStats:
        """Frozen snapshot of the session's plan-cache counters."""
        return self.plan_cache.stats()

    def clear_cache(self) -> None:
        """Drop every cached plan (counters keep their history)."""
        self.plan_cache.clear()

    # -- operators ---------------------------------------------------------
    def plan(self, a: MatrixOperand, b: MatrixOperand) -> ExecutionPlan:
        """The (cached) execution plan for ``A x B`` under this session."""
        return plan_api(a, b, options=self.options)

    def multiply(
        self,
        a: MatrixOperand,
        b: MatrixOperand,
        c: MatrixOperand | None = None,
    ) -> tuple["ATMatrix", "MultiplyReport"]:
        """Sequential ``C' = C + A x B`` through the plan cache."""
        from ..core.atmult import atmult

        return atmult(a, b, c, options=self.options)

    def parallel_multiply(
        self,
        a: MatrixOperand,
        b: MatrixOperand,
        *,
        topology: SystemTopology,
    ) -> tuple["ATMatrix", "ParallelReport"]:
        """Parallel ``C = A x B``; shares plans with the sequential path."""
        from ..core.parallel import parallel_atmult

        return parallel_atmult(a, b, topology=topology, options=self.options)

    def multiply_chain(
        self, operands: list[MatrixOperand]
    ) -> tuple["ATMatrix", "ChainReport"]:
        """Optimally-parenthesized chain product through the fused planner.

        A session always has a plan cache, so chains of two or more
        operands route through the engine's fused chain planner: the
        first run records one whole-chain
        :class:`~repro.engine.plan.FusedChainPlan`, every later run of
        the same chain replays it from a single cache hit with cross-hop
        interleaved execution (``report.fused`` / ``report.plan_cache_hit``).
        """
        from ..core.chain import multiply_chain

        return multiply_chain(operands, options=self.options)

    def evaluate(self, expr: MatrixExpr) -> "ATMatrix":
        """Evaluate a :class:`~repro.expr.MatrixExpr` under this session.

        The single front door for expression work: products flatten into
        chains routed through the fused chain planner and this session's
        plan cache; additions, scalings and transposes run under the
        session's configuration.
        """
        return expr.evaluate(session=self)

    def matvec(self, matrix: MatrixOperand, vector: np.ndarray) -> np.ndarray:
        """``A @ x`` through the engine, so repeated products reuse one plan.

        The vector rides as a dense ``n x 1`` operand; dense topology is
        shape-only, so every same-length vector hits the same plan.
        """
        at = as_at_matrix(matrix, self.config)
        column = np.asarray(vector, dtype=np.float64).reshape(-1, 1)
        result, _ = self.multiply(at, DenseMatrix(column, copy=False))
        return result.to_dense().ravel()

    # -- solvers -----------------------------------------------------------
    #: ``method=`` spellings accepted by :meth:`solve`.
    SOLVE_METHODS = ("cg", "jacobi", "richardson")

    def solve(
        self,
        a: MatrixOperand,
        b: np.ndarray,
        *,
        method: str = "cg",
        **kwargs: Any,
    ) -> SolveResult:
        """Solve ``A x = b`` with the named iterative method.

        ``method`` is one of ``"cg"`` (conjugate gradients, the default;
        ``"conjugate_gradient"`` is accepted as a long spelling),
        ``"jacobi"`` or ``"richardson"``.  Extra keywords go to the
        underlying solver (``tol``, ``max_iterations``, ``omega``, ...);
        every iteration multiplies through this session, so the matrix
        is planned once and replayed.
        """
        from ..solve import conjugate_gradient, jacobi, richardson

        drivers: dict[str, Callable[..., SolveResult]] = {
            "cg": conjugate_gradient,
            "conjugate_gradient": conjugate_gradient,
            "jacobi": jacobi,
            "richardson": richardson,
        }
        driver = drivers.get(method)
        if driver is None:
            raise ConfigError(
                f"unknown solve method {method!r}; expected one of "
                f"{', '.join(self.SOLVE_METHODS)}"
            )
        return driver(a, b, session=self, **kwargs)

    def richardson(
        self, matrix: MatrixOperand, rhs: np.ndarray, **kwargs: Any
    ) -> SolveResult:
        """Thin delegate of ``solve(..., method="richardson")``."""
        return self.solve(matrix, rhs, method="richardson", **kwargs)

    def jacobi(
        self, matrix: MatrixOperand, rhs: np.ndarray, **kwargs: Any
    ) -> SolveResult:
        """Thin delegate of ``solve(..., method="jacobi")``."""
        return self.solve(matrix, rhs, method="jacobi", **kwargs)

    def conjugate_gradient(
        self, matrix: MatrixOperand, rhs: np.ndarray, **kwargs: Any
    ) -> SolveResult:
        """Thin delegate of ``solve(..., method="cg")``."""
        return self.solve(matrix, rhs, method="cg", **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.cache_stats()
        return (
            f"Session(plans={stats['entries']}, hits={stats['hits']}, "
            f"misses={stats['misses']})"
        )
