"""The consolidated multiply configuration: :class:`MultiplyOptions`.

Before the engine redesign every multiply entry point grew the same
sprawl of keywords (``memory_limit_bytes``, ``use_estimation``,
``dynamic_conversion``, ``resilience``, ``observer``, worker counts) and
they drifted independently.  :class:`MultiplyOptions` consolidates them
into one frozen value object that `atmult`, `parallel_atmult`,
`multiply`, `multiply_chain`, the solvers and :class:`~repro.engine.session.Session`
all accept as ``options=``.

The legacy keywords keep working through :func:`coerce_options`, the
shared coercion helper every entry point calls: any legacy keyword that
was explicitly supplied is folded into the options object and **one**
consolidated :class:`DeprecationWarning` is emitted through
:mod:`repro._deprecations` — once per (entry point, keyword set) site,
naming the keywords to migrate (never one warning per keyword, never a
repeat on every loop iteration).  Explicitly supplied legacy values
override the corresponding ``options`` fields, so mixed calls behave
predictably during migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any

from .. import _deprecations
from ..config import DEFAULT_CONFIG, SystemConfig
from ..cost.model import CostModel
from ..observe import Observation
from ..resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.cancel import CancelToken
    from ..resilience.checkpoint import CheckpointStore
    from .cache import PlanCache


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    _instance: _Unset | None = None

    def __new__(cls) -> _Unset:
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"

    def __bool__(self) -> bool:
        return False


#: Default value of every legacy keyword on the multiply entry points.
UNSET: Any = _Unset()


@dataclass(frozen=True)
class MultiplyOptions:
    """Everything a multiplication needs besides its operands.

    Parameters
    ----------
    config:
        System configuration; ``None`` means the library default.
    cost_model:
        Cost oracle for planning and kernel selection; ``None`` creates
        a default model.
    memory_limit_bytes:
        Memory SLA for the output matrix (water-level method).
    dynamic_conversion:
        Enable just-in-time input conversions (ablation step 6).
    use_estimation:
        Enable density estimation and dense target tiles (ablation
        step 3+).
    resilience:
        A :class:`~repro.resilience.RetryPolicy`, or ``None`` for
        fail-fast execution.
    observer:
        An :class:`~repro.observe.Observation` activated for the call.
    workers:
        Worker-team count override for parallel execution (``None``
        uses the topology's socket count).
    execution:
        Parallel backend: ``"threads"`` (default — one worker thread
        per simulated socket) or ``"processes"`` (the supervised
        multiprocess shard executor, see docs/RESILIENCE.md).  Ignored
        by the sequential entry points.  When ``multiprocessing`` is
        unavailable on the platform, ``"processes"`` falls back to
        threads with a :class:`RuntimeWarning`.
    heartbeat_interval_seconds:
        Cadence of worker liveness heartbeats under
        ``execution="processes"``; a worker whose heartbeat goes stale
        is killed and its pairs are reassigned.
    pair_deadline_seconds:
        Per-pair dispatch deadline under ``execution="processes"``:
        a worker spending longer than this on one pair is declared hung
        (``None`` disables the deadline).  Distinct from the retry
        layer's ``task_deadline_seconds``, which measures a single
        attempt inside a live worker.
    plan_cache:
        A :class:`~repro.engine.cache.PlanCache`; when set, planning is
        skipped whenever a cached :class:`~repro.engine.plan.ExecutionPlan`
        matches the operand topologies and this configuration.
    checkpoint:
        A :class:`~repro.resilience.checkpoint.CheckpointStore`; when
        set, every completed tile-pair is journaled to its spill
        directory and pairs already present in the journal are restored
        instead of re-executed (crash-safe resume).
    checkpoint_flush_pairs:
        Flush the checkpoint journal after this many completed pairs
        (default 1: flush every pair — maximally durable).  Larger
        values trade recovery granularity for fewer fsyncs.
    cancel:
        A :class:`~repro.resilience.CancelToken` polled at tile-pair
        boundaries; when it trips (explicit cancel or deadline expiry)
        the run flushes its checkpoint and unwinds with
        :class:`~repro.errors.OperationCancelledError` /
        :class:`~repro.errors.DeadlineExceededError`.
    startup_grace_seconds:
        Under ``execution="processes"``, how long a freshly spawned
        worker may take to post its first heartbeat before it is
        declared stale (covers interpreter + import cost on cold
        machines).
    """

    config: SystemConfig | None = None
    cost_model: CostModel | None = None
    memory_limit_bytes: float | None = None
    dynamic_conversion: bool = True
    use_estimation: bool = True
    resilience: RetryPolicy | None = None
    observer: Observation | None = None
    workers: int | None = None
    execution: str = "threads"
    heartbeat_interval_seconds: float = 0.25
    pair_deadline_seconds: float | None = None
    plan_cache: PlanCache | None = field(default=None, compare=False)
    checkpoint: CheckpointStore | None = field(default=None, compare=False)
    checkpoint_flush_pairs: int = 1
    cancel: CancelToken | None = field(default=None, compare=False)
    startup_grace_seconds: float = 10.0

    def replace(self, **changes: Any) -> MultiplyOptions:
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def resolved_config(self) -> SystemConfig:
        return self.config or DEFAULT_CONFIG

    def resolved_cost_model(self) -> CostModel:
        return self.cost_model or CostModel()


#: Legacy multiply keywords folded into :class:`MultiplyOptions`.
LEGACY_OPTION_KEYWORDS = (
    "memory_limit_bytes",
    "dynamic_conversion",
    "use_estimation",
    "resilience",
    "observer",
    "workers",
)

_FIELD_NAMES = {spec.name for spec in fields(MultiplyOptions)}


def coerce_options(
    options: MultiplyOptions | None,
    *,
    where: str,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
    plan_cache: PlanCache | None = None,
    stacklevel: int = 3,
    **legacy: Any,
) -> MultiplyOptions:
    """Fold legacy keywords into a :class:`MultiplyOptions`.

    ``legacy`` holds the raw values of the deprecated keywords with
    :data:`UNSET` marking "not passed".  Supplying any of them emits one
    consolidated :class:`DeprecationWarning` through
    :func:`repro._deprecations.warn_once` (so a migration-era loop warns
    on its first iteration only); explicitly supplied values override
    the matching ``options`` fields.  The
    ``config``/``cost_model``/``plan_cache`` keywords are part of the
    redesigned surface and are folded in silently when given.
    """
    base = options if options is not None else MultiplyOptions()
    supplied = {
        name: value for name, value in legacy.items() if value is not UNSET
    }
    unknown = set(supplied) - _FIELD_NAMES
    if unknown:
        raise TypeError(f"{where}() got unexpected keyword(s): {sorted(unknown)}")
    if supplied:
        names = ", ".join(sorted(supplied))
        _deprecations.warn_once(
            f"{where}:legacy:{names}",
            f"{where}(): the keyword(s) {names} are deprecated; pass "
            f"options=MultiplyOptions(...) instead",
            stacklevel=stacklevel + 1,
        )
        base = base.replace(**supplied)
    explicit = {
        name: value
        for name, value in (
            ("config", config),
            ("cost_model", cost_model),
            ("plan_cache", plan_cache),
        )
        if value is not None
    }
    if explicit:
        base = base.replace(**explicit)
    return base
