"""Worker-side protocol of the supervised multiprocess executor.

The paper's two-level scheme (Section III-F) places tile-row/tile-column
pairs on worker teams, one per socket; :mod:`repro.resilience.supervisor`
makes those teams real OS processes.  This module holds everything a
worker process needs — and deliberately imports no ``multiprocessing``
(repro-lint RPR008 confines process management to the supervisor):

* :func:`assign_shards` — the placement function: pairs land on the
  shard of their planned ``team_node`` (round-robin tile-row placement,
  exactly the paper's NUMA assignment), so one shard corresponds to one
  simulated socket;
* :class:`ShardConfig` — the picklable per-run contract shipped to each
  worker: system config, cost model, retry policy, heartbeat cadence,
  fault-injection spec and the journal directory;
* :func:`prepare_run_dir` — serializes the operands (v2 ``.npz``
  archives), the :class:`~repro.engine.plan.ExecutionPlan` and the
  :class:`ShardConfig` into the run directory;
* :func:`worker_main` — the worker entry point: load the run directory,
  start the heartbeat thread, then serve dispatched pairs until the
  ``None`` sentinel arrives.

Worker → supervisor communication is **files only** (heartbeat files,
per-pair done files, checkpoint journal records), each written with
:func:`~repro.ioutil.atomic_write_text` — a worker killed mid-write can
never corrupt shared IPC state the way a SIGKILLed queue writer can.
The supervisor → worker direction is a queue-like object satisfying
:class:`TaskSource` (the supervisor passes a ``multiprocessing``
``SimpleQueue``; tests pass plain stubs).
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from pathlib import Path
from dataclasses import dataclass
from typing import Any, Protocol

from ..config import SystemConfig
from ..cost.model import CostModel
from ..core.atmatrix import ATMatrix
from ..ioutil import atomic_write_bytes, atomic_write_text
from ..observe import session as observe_session
from ..resilience import faults
from ..resilience.checkpoint import CheckpointStore
from ..resilience.faults import FaultPlanSpec, fire_worker_crash
from ..resilience.report import FailureReport
from ..resilience.retry import RetryPolicy
from .executor import PairComputer, check_plan_applies
from .plan import ExecutionPlan, PlannedPair

__all__ = [
    "ShardConfig",
    "TaskSource",
    "assign_shards",
    "done_file",
    "heartbeat_file",
    "prepare_run_dir",
    "worker_main",
]

#: Pair coordinates ``(ti, tj)``.
PairCoords = tuple[int, int]

#: One dispatched task: the pair plus its 1-based dispatch attempt
#: (counted by the supervisor across worker deaths and reassignments).
ShardTask = tuple[PairCoords, int]

_OPERAND_A = "operand-a.npz"
_OPERAND_B = "operand-b.npz"
_PLAN = "plan.pkl"
_SHARD = "shard.pkl"


class TaskSource(Protocol):
    """The supervisor → worker half of the dispatch channel."""

    def get(self) -> ShardTask | None:  # pragma: no cover - protocol
        """Block until the next task (or the ``None`` shutdown sentinel)."""
        ...


@dataclass(frozen=True)
class ShardConfig:
    """The per-run contract shipped (pickled) to every worker process."""

    config: SystemConfig
    cost_model: CostModel
    resilience: RetryPolicy | None
    #: seconds between heartbeat-file updates
    heartbeat_interval: float
    #: directory the checkpoint journal lives in (shared with the
    #: supervisor; workers :meth:`~CheckpointStore.attach`, never begin)
    journal_dir: str
    #: rebuildable fault-injection schedule, when the supervising
    #: process had a plan active (``--inject-faults`` parity)
    fault_spec: FaultPlanSpec | None = None
    #: the B operand is the same object as A (self-product): ship one
    #: archive and alias it in the worker
    b_is_a: bool = False
    #: how long a freshly spawned worker may take to post its first
    #: heartbeat before the supervisor declares it stale (spawn
    #: platforms re-import the world before ``worker_main`` runs)
    startup_grace: float = 10.0


def assign_shards(
    pairs: list[PlannedPair], workers: int
) -> list[list[PairCoords]]:
    """Partition planned pairs into one shard per worker.

    A pair lands on shard ``team_node % workers`` — its planned NUMA
    placement, so shard ``k`` is the process-world twin of simulated
    socket ``k`` and operand tile-rows stay with their round-robin home.
    Deterministic: plan order is preserved within each shard, and the
    supervisor's work stealing only rebalances *dispatch*, never
    results.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards: list[list[PairCoords]] = [[] for _ in range(workers)]
    for pair in pairs:
        shards[pair.team_node % workers].append((pair.ti, pair.tj))
    return shards


def heartbeat_file(run_dir: Path, worker_id: int) -> Path:
    return run_dir / f"hb-{worker_id:03d}.json"


def done_file(run_dir: Path, coords: PairCoords) -> Path:
    return run_dir / f"done-{coords[0]:05d}-{coords[1]:05d}.json"


def prepare_run_dir(
    run_dir: Path,
    plan: ExecutionPlan,
    at_a: ATMatrix,
    at_b: ATMatrix,
    shard_config: ShardConfig,
) -> None:
    """Serialize everything a worker loads into ``run_dir``.

    Operands travel as v2 ``.npz`` archives (atomic write, per-member
    CRC-32C — the same end-to-end integrity story as at-rest matrices),
    the plan and shard config as pickles of frozen dataclasses.
    """
    # Imported lazily: repro.formats.serialize itself imports the core
    # package, whose import chain re-enters this module via the engine.
    from ..formats.serialize import save_at_matrix

    run_dir.mkdir(parents=True, exist_ok=True)
    save_at_matrix(at_a, run_dir / _OPERAND_A)
    if not shard_config.b_is_a:
        save_at_matrix(at_b, run_dir / _OPERAND_B)
    atomic_write_bytes(run_dir / _PLAN, pickle.dumps(plan))
    atomic_write_bytes(run_dir / _SHARD, pickle.dumps(shard_config))


def load_shard_config(run_dir: Path) -> ShardConfig:
    """Just the (small) shard config — cheap enough to read before the
    heartbeat starts, so liveness covers the expensive operand load."""
    with open(run_dir / _SHARD, "rb") as handle:
        config = pickle.load(handle)
    assert isinstance(config, ShardConfig)
    return config


def load_run_dir(
    run_dir: Path,
) -> tuple[ExecutionPlan, ATMatrix, ATMatrix, ShardConfig]:
    """The worker-side inverse of :func:`prepare_run_dir` (validated)."""
    from ..formats.serialize import load_at_matrix

    shard_config = load_shard_config(run_dir)
    with open(run_dir / _PLAN, "rb") as handle:
        plan = pickle.load(handle)
    at_a = load_at_matrix(run_dir / _OPERAND_A)
    at_b = at_a if shard_config.b_is_a else load_at_matrix(run_dir / _OPERAND_B)
    # The archives round-tripped through disk; replay validation makes a
    # worker executing against torn or mismatched operands impossible.
    check_plan_applies(plan, at_a, at_b)
    return plan, at_a, at_b, shard_config


class _Heartbeat:
    """A daemon thread writing this worker's liveness file."""

    def __init__(self, path: Path, worker_id: int, interval: float) -> None:
        self._path = path
        self._worker_id = worker_id
        self._interval = max(interval, 0.01)
        self._stop = threading.Event()
        self._beats = 0
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker_id}", daemon=True
        )

    def start(self) -> None:
        self._write()
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._write()

    def _write(self) -> None:
        import os

        # Single-writer: only the heartbeat thread itself increments,
        # after start() has already published the first beat.
        self._beats += 1  # repro-lint: disable=RPR012
        payload = {
            "worker": self._worker_id,
            "pid": os.getpid(),
            "beat": self._beats,
            "time": time.time(),
        }
        atomic_write_text(self._path, json.dumps(payload))


def _outcome_delta(
    failure: FailureReport, before: tuple[int, int, int, int, int], coords: PairCoords
) -> dict[str, Any]:
    """The per-pair resilience counters accrued by the last ``run_pair``."""
    attempts, retries, degradations, deadlines, fallbacks = before
    recorded = failure.pair_outcomes.get(coords)
    return {
        # Without a retry policy nothing touches the counters; report
        # the one attempt that ran so the aggregate matches the thread
        # backend's "attempts == pairs" accounting.
        "attempts": max(failure.attempts - attempts, 1),
        "retries": failure.retries - retries,
        "degradations": failure.degradations - degradations,
        "deadline_violations": failure.deadline_violations - deadlines,
        "fallbacks": failure.fallbacks - fallbacks,
        "late": bool(recorded.late) if recorded is not None else False,
        "failed": bool(recorded.failed) if recorded is not None else False,
        "error": recorded.error if recorded is not None else None,
    }


def _failure_snapshot(failure: FailureReport) -> tuple[int, int, int, int, int]:
    return (
        failure.attempts,
        failure.retries,
        failure.degradations,
        failure.deadline_violations,
        failure.fallbacks,
    )


def worker_main(worker_id: int, run_dir: str, tasks: TaskSource) -> None:
    """One supervised worker: serve dispatched pairs until the sentinel.

    Lifecycle: reset inherited process-global state (a forked child
    shares the parent's fault plan and observation objects), start the
    heartbeat thread (before the expensive operand load, so liveness
    covers it), load the run directory, install the shipped fault spec,
    attach to the shared checkpoint journal, then loop::

        task = tasks.get()            # ((ti, tj), dispatch_attempt)
        fire_worker_crash(...)        # injected SIGKILL, maybe
        outcome = computer.run_pair(pair)
        store.record + store.flush    # durable before "done"
        write done-<ti>-<tj>.json     # stats + resilience outcome

    Every completed pair is flushed *before* its done file appears, so
    the supervisor never trusts a result that could vanish with the
    worker.  Failures never escape: an exhausted retry budget (or any
    unexpected exception) becomes a ``failed`` done file and the worker
    moves on — dying is reserved for injected crashes and real ones.
    """
    directory = Path(run_dir)
    faults.clear_active()
    observe_session.clear()
    # Heartbeat first: loading the operand archives (CRC-verified) can
    # take longer than the staleness window on big matrices, and the
    # supervisor must see a live worker the whole time.
    shard_config = load_shard_config(directory)
    heartbeat = _Heartbeat(
        heartbeat_file(directory, worker_id), worker_id,
        shard_config.heartbeat_interval,
    )
    heartbeat.start()
    plan, at_a, at_b, shard_config = load_run_dir(directory)
    pairs_by_coords: dict[PairCoords, PlannedPair] = {
        (pair.ti, pair.tj): pair for pair in plan.pairs
    }

    fault_plan = (
        shard_config.fault_spec.build() if shard_config.fault_spec is not None else None
    )
    store = CheckpointStore(shard_config.journal_dir)
    store.attach(plan.fingerprint)

    failure = FailureReport()
    busy_cell = [0.0]

    def busy_hook(elapsed: float) -> None:
        busy_cell[0] += elapsed

    computer = PairComputer(
        plan,
        at_a,
        at_b,
        cost_model=shard_config.cost_model,
        resilience=shard_config.resilience,
        record_tasks=False,
        busy_hook=busy_hook,
    )
    computer.bind_resilience(shard_config.config, failure)
    events_shipped = 0

    def new_events() -> list[dict[str, Any]]:
        nonlocal events_shipped
        if fault_plan is None:
            return []
        events = fault_plan.events[events_shipped:]
        events_shipped += len(events)
        return [faults.event_to_wire(event) for event in events]

    def serve() -> None:
        while True:
            task = tasks.get()
            if task is None:
                return
            coords, dispatch_attempt = task
            fire_worker_crash(coords, dispatch_attempt)
            pair = pairs_by_coords[coords]
            before = _failure_snapshot(failure)
            busy_before = busy_cell[0]
            payload: dict[str, Any] = {
                "worker": worker_id,
                "pair": list(coords),
                "dispatch_attempt": dispatch_attempt,
            }
            try:
                outcome = computer.run_pair(pair)
            except Exception as error:  # noqa: BLE001 — shipped to the supervisor
                payload.update(
                    failed=True,
                    error=repr(error),
                    outcome=_outcome_delta(failure, before, coords),
                    busy_seconds=busy_cell[0] - busy_before,
                    conversions=computer.conversions.conversions,
                    flushes=store.flushes,
                    events=new_events(),
                )
            else:
                store.record(coords, outcome.tile)
                store.flush()
                payload.update(
                    failed=False,
                    error=None,
                    products=outcome.stats.products,
                    kernel_counts=outcome.stats.kernel_counts,
                    outcome=_outcome_delta(failure, before, coords),
                    busy_seconds=busy_cell[0] - busy_before,
                    conversions=computer.conversions.conversions,
                    flushes=store.flushes,
                    events=new_events(),
                )
            atomic_write_text(done_file(directory, coords), json.dumps(payload))

    try:
        if fault_plan is not None:
            with faults.inject_faults(fault_plan):
                serve()
        else:
            serve()
    finally:
        heartbeat.stop()
