"""The plan/execute front door of the execution engine.

:func:`plan` resolves every decision of ``A x B`` into an
:class:`~repro.engine.plan.ExecutionPlan` (through the options' plan
cache when one is configured); :func:`execute` replays a plan against
same-topology operands.  ``atmult(a, b)`` is exactly
``execute(plan(a, b), a, b)`` — the operator front-ends in
:mod:`repro.core` route through :func:`resolve_plan` so iterative
workloads skip estimation, partitioning and optimization from the
second call on.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..core.atmatrix import ATMatrix
from ..core.operands import MatrixOperand, as_at_matrix
from ..core.report import MultiplyReport
from ..cost.model import CostModel
from ..errors import ShapeError
from ..observe import Observation
from ..observe import session as observe_session
from .cache import PlanKey
from .executor import execute_plan
from .options import MultiplyOptions, coerce_options
from .plan import ExecutionPlan, build_plan
from .fingerprint import config_fingerprint, structure_fingerprint


def resolve_plan(
    at_a: ATMatrix,
    at_b: ATMatrix,
    *,
    config: SystemConfig,
    cost_model: CostModel,
    options: MultiplyOptions,
    obs: Observation | None,
) -> tuple[ExecutionPlan, bool]:
    """The plan for ``at_a x at_b`` under ``options``: cached or fresh.

    Returns ``(plan, fresh)`` — ``fresh`` is True when the plan was
    built by this call (its planning-phase durations then belong in the
    caller's report).
    """
    cache = options.plan_cache
    if cache is None:
        built = build_plan(
            at_a,
            at_b,
            config=config,
            cost_model=cost_model,
            memory_limit_bytes=options.memory_limit_bytes,
            dynamic_conversion=options.dynamic_conversion,
            use_estimation=options.use_estimation,
            obs=obs,
        )
        return built, True
    key = PlanKey(
        structure_fingerprint(at_a),
        structure_fingerprint(at_b),
        config_fingerprint(
            config,
            cost_model,
            memory_limit_bytes=options.memory_limit_bytes,
            dynamic_conversion=options.dynamic_conversion,
            use_estimation=options.use_estimation,
        ),
    )
    cached = cache.get(key)
    if cached is not None:
        return cached, False
    built = build_plan(
        at_a,
        at_b,
        config=config,
        cost_model=cost_model,
        memory_limit_bytes=options.memory_limit_bytes,
        dynamic_conversion=options.dynamic_conversion,
        use_estimation=options.use_estimation,
        obs=obs,
    )
    cache.put(key, built)
    return built, True


def plan(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
) -> ExecutionPlan:
    """Resolve the execution plan for ``A x B`` without running kernels.

    Consults (and fills) ``options.plan_cache`` when one is set.
    """
    opts = coerce_options(
        options, where="plan", config=config, cost_model=cost_model
    )
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()
    with observe_session.resolve(opts.observer) as obs:
        at_a = as_at_matrix(a, resolved_config)
        at_b = as_at_matrix(b, resolved_config)
        resolved, _ = resolve_plan(
            at_a,
            at_b,
            config=resolved_config,
            cost_model=resolved_model,
            options=opts,
            obs=obs,
        )
    return resolved


def execute(
    execution_plan: ExecutionPlan,
    a: MatrixOperand,
    b: MatrixOperand,
    c: MatrixOperand | None = None,
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
) -> tuple[ATMatrix, MultiplyReport]:
    """Replay a plan against operands of matching topology.

    Raises :class:`~repro.errors.PlanMismatchError` when either
    operand's structure fingerprint differs from the plan's.
    """
    opts = coerce_options(
        options, where="execute", config=config, cost_model=cost_model
    )
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()
    if c is not None and c.shape != execution_plan.shape:
        raise ShapeError(
            f"C shape {c.shape} != result shape {execution_plan.shape}"
        )
    with observe_session.resolve(opts.observer) as obs:
        at_a = as_at_matrix(a, resolved_config)
        at_b = as_at_matrix(b, resolved_config)
        at_c = as_at_matrix(c, resolved_config) if c is not None else None
        result, report = execute_plan(
            execution_plan,
            at_a,
            at_b,
            at_c,
            config=resolved_config,
            cost_model=resolved_model,
            resilience=opts.resilience,
            obs=obs,
            check_fingerprints=True,
            checkpoint=opts.checkpoint,
            checkpoint_flush_pairs=opts.checkpoint_flush_pairs,
        )
    assert isinstance(report, MultiplyReport)
    return result, report
