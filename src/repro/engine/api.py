"""The plan/execute front door of the execution engine.

:func:`plan` resolves every decision of ``A x B`` into an
:class:`~repro.engine.plan.ExecutionPlan` (through the options' plan
cache when one is configured); :func:`execute` replays a plan against
same-topology operands.  ``atmult(a, b)`` is exactly
``execute(plan(a, b), a, b)`` — the operator front-ends in
:mod:`repro.core` route through :func:`resolve_plan` so iterative
workloads skip estimation, partitioning and optimization from the
second call on.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..config import SystemConfig
from ..core.atmatrix import ATMatrix
from ..core.operands import MatrixOperand, as_at_matrix
from ..core.report import MultiplyReport
from ..cost.model import CostModel
from ..errors import PlanMismatchError, ShapeError
from ..observe import Observation
from ..observe import session as observe_session
from .cache import ChainKey, PlanKey
from .executor import execute_fused_chain, execute_plan
from .options import MultiplyOptions, coerce_options
from .plan import (
    ExecutionPlan,
    FusedChainPlan,
    HopSource,
    PlannedHop,
    build_plan,
    fused_chain_schedule,
)
from .fingerprint import (
    config_fingerprint,
    payload_fingerprint,
    structure_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.chain import ChainPlan, ChainReport


def resolve_plan(
    at_a: ATMatrix,
    at_b: ATMatrix,
    *,
    config: SystemConfig,
    cost_model: CostModel,
    options: MultiplyOptions,
    obs: Observation | None,
) -> tuple[ExecutionPlan, bool]:
    """The plan for ``at_a x at_b`` under ``options``: cached or fresh.

    Returns ``(plan, fresh)`` — ``fresh`` is True when the plan was
    built by this call (its planning-phase durations then belong in the
    caller's report).
    """
    cache = options.plan_cache
    if cache is None:
        built = build_plan(
            at_a,
            at_b,
            config=config,
            cost_model=cost_model,
            memory_limit_bytes=options.memory_limit_bytes,
            dynamic_conversion=options.dynamic_conversion,
            use_estimation=options.use_estimation,
            obs=obs,
        )
        return built, True
    key = PlanKey(
        structure_fingerprint(at_a),
        structure_fingerprint(at_b),
        config_fingerprint(
            config,
            cost_model,
            memory_limit_bytes=options.memory_limit_bytes,
            dynamic_conversion=options.dynamic_conversion,
            use_estimation=options.use_estimation,
        ),
    )
    cached = cache.get(key)
    if cached is not None:
        return cached, False
    built = build_plan(
        at_a,
        at_b,
        config=config,
        cost_model=cost_model,
        memory_limit_bytes=options.memory_limit_bytes,
        dynamic_conversion=options.dynamic_conversion,
        use_estimation=options.use_estimation,
        obs=obs,
    )
    cache.put(key, built)
    return built, True


def plan(
    a: MatrixOperand,
    b: MatrixOperand,
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
) -> ExecutionPlan:
    """Resolve the execution plan for ``A x B`` without running kernels.

    Consults (and fills) ``options.plan_cache`` when one is set.
    """
    opts = coerce_options(
        options, where="plan", config=config, cost_model=cost_model
    )
    if a.cols != b.rows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()
    with observe_session.resolve(opts.observer) as obs:
        at_a = as_at_matrix(a, resolved_config)
        at_b = as_at_matrix(b, resolved_config)
        resolved, _ = resolve_plan(
            at_a,
            at_b,
            config=resolved_config,
            cost_model=resolved_model,
            options=opts,
            obs=obs,
        )
    return resolved


def execute(
    execution_plan: ExecutionPlan,
    a: MatrixOperand,
    b: MatrixOperand,
    c: MatrixOperand | None = None,
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
) -> tuple[ATMatrix, MultiplyReport]:
    """Replay a plan against operands of matching topology.

    Raises :class:`~repro.errors.PlanMismatchError` when either
    operand's structure fingerprint differs from the plan's.
    """
    opts = coerce_options(
        options, where="execute", config=config, cost_model=cost_model
    )
    resolved_config = opts.resolved_config()
    resolved_model = opts.resolved_cost_model()
    if c is not None and c.shape != execution_plan.shape:
        raise ShapeError(
            f"C shape {c.shape} != result shape {execution_plan.shape}"
        )
    with observe_session.resolve(opts.observer) as obs:
        at_a = as_at_matrix(a, resolved_config)
        at_b = as_at_matrix(b, resolved_config)
        at_c = as_at_matrix(c, resolved_config) if c is not None else None
        result, report = execute_plan(
            execution_plan,
            at_a,
            at_b,
            at_c,
            config=resolved_config,
            cost_model=resolved_model,
            resilience=opts.resilience,
            obs=obs,
            check_fingerprints=True,
            checkpoint=opts.checkpoint,
            checkpoint_flush_pairs=opts.checkpoint_flush_pairs,
            cancel=opts.cancel,
        )
    assert isinstance(report, MultiplyReport)
    return result, report


def _expected_tiles(
    execution_plan: ExecutionPlan, result: ATMatrix
) -> tuple[
    tuple[int | None, ...], tuple[tuple[int, int, int, int, str, str], ...]
]:
    """Per-pair output-tile indices and tile identities of one hop.

    Sequential execution appends each pair's result tile (when any) in
    pair order, so walking pairs and tiles in lockstep — matching on the
    pair's output region origin — recovers which pair produced which
    tile.  The identity tuples (geometry, storage kind, payload
    fingerprint) are what the fused executor validates replayed tiles
    against.
    """
    tiles = result.tiles
    tile_of_pair: list[int | None] = []
    cursor = 0
    for pair in execution_plan.pairs:
        if (
            cursor < len(tiles)
            and tiles[cursor].row0 == pair.r0
            and tiles[cursor].col0 == pair.c0
        ):
            tile_of_pair.append(cursor)
            cursor += 1
        else:
            tile_of_pair.append(None)
    assert cursor == len(tiles)  # every result tile belongs to some pair
    expected = tuple(
        (
            tile.row0,
            tile.col0,
            tile.rows,
            tile.cols,
            tile.kind.value,
            payload_fingerprint(tile.data),
        )
        for tile in tiles
    )
    return tuple(tile_of_pair), expected


def _run_chain_cold(
    ats: list[ATMatrix],
    chain: ChainPlan,
    *,
    options: MultiplyOptions,
    config: SystemConfig,
    cost_model: CostModel,
    report: ChainReport,
    obs: Observation | None,
) -> tuple[ATMatrix, list[PlannedHop]]:
    """Execute a chain hop-by-hop, recording fused replay metadata.

    Each hop resolves through the options' plan cache (sharing per-hop
    entries with plain ``atmult`` calls) and executes sequentially, so
    the recorded ``tile_of_pair``/``expected_tiles`` describe exactly
    what a fused replay must reproduce.
    """
    from ..core.atmult import _fold_plan_phases

    sources: dict[tuple[int, int], HopSource] = {
        (i, i): HopSource("leaf", i) for i in range(len(ats))
    }
    results: dict[tuple[int, int], ATMatrix] = {
        (i, i): at for i, at in enumerate(ats)
    }
    hops: list[PlannedHop] = []
    product: ATMatrix | None = None
    for i, k, j in chain.order:
        left = results[(i, k)]
        right = results[(k + 1, j)]
        hop_plan, fresh = resolve_plan(
            left,
            right,
            config=config,
            cost_model=cost_model,
            options=options,
            obs=obs,
        )
        product, step_report = execute_plan(
            hop_plan,
            left,
            right,
            config=config,
            cost_model=cost_model,
            obs=obs,
            check_fingerprints=False,
            cancel=options.cancel,
        )
        assert isinstance(step_report, MultiplyReport)
        if fresh:
            _fold_plan_phases(step_report, hop_plan)
        report.merge_step(step_report)
        tile_of_pair, expected = _expected_tiles(hop_plan, product)
        hops.append(
            PlannedHop(
                i=i,
                k=k,
                j=j,
                a_source=sources[(i, k)],
                b_source=sources[(k + 1, j)],
                plan=hop_plan,
                out_fingerprint=structure_fingerprint(product),
                tile_of_pair=tile_of_pair,
                expected_tiles=expected,
            )
        )
        sources[(i, j)] = HopSource("hop", len(hops) - 1)
        results[(i, j)] = product
    assert product is not None
    return product, hops


def run_chain(
    operands: Sequence[MatrixOperand],
    *,
    options: MultiplyOptions,
    obs: Observation | None,
) -> tuple[ATMatrix, ChainReport, FusedChainPlan | None]:
    """Run a matrix chain through the fused chain planner.

    With a plan cache in ``options`` and a matching
    :class:`~repro.engine.plan.FusedChainPlan` cached, the whole chain
    replays as one interleaved fused execution (intermediates consumed
    while resident, freed eagerly).  Otherwise the chain is planned and
    run cold — hop by hop, recording replay metadata — and the resulting
    fused plan is cached for the next run.  Returns
    ``(result, report, fused_plan)``; the report's ``fused`` /
    ``plan_cache_hit`` flags say which path ran.
    """
    from ..core.chain import ChainReport, plan_chain

    if len(operands) < 2:
        raise ShapeError(
            f"a fused chain needs at least two operands, got {len(operands)}"
        )
    resolved_config = options.resolved_config()
    resolved_model = options.resolved_cost_model()
    ats = [as_at_matrix(operand, resolved_config) for operand in operands]
    fingerprints = tuple(structure_fingerprint(at) for at in ats)
    setup = config_fingerprint(
        resolved_config,
        resolved_model,
        memory_limit_bytes=options.memory_limit_bytes,
        dynamic_conversion=options.dynamic_conversion,
        use_estimation=options.use_estimation,
    )
    key = ChainKey(fingerprints, setup)
    cache = options.plan_cache

    if cache is not None:
        cached = cache.get(key)
        if isinstance(cached, FusedChainPlan):
            try:
                result, outcome = execute_fused_chain(
                    cached,
                    ats,
                    config=resolved_config,
                    cost_model=resolved_model,
                    obs=obs,
                    check_fingerprints=False,
                )
            except PlanMismatchError:
                # Operand values changed the intermediate topology the
                # cached plan recorded; rebuild below (the put overwrites
                # the stale entry).
                pass
            else:
                report = ChainReport(observation=obs)
                report.plan = cached.chain
                report.fused = True
                report.plan_cache_hit = True
                for step in outcome.steps:
                    report.merge_step(step)
                report.intermediates_freed = outcome.intermediates_freed
                report.peak_intermediate_bytes = outcome.peak_intermediate_bytes
                return result, report, cached

    report = ChainReport(observation=obs)
    with observe_session.tracer_span(obs, "chain_plan"):
        chain = plan_chain(
            list(ats),
            config=resolved_config,
            cost_model=resolved_model,
            structural=True,
        )
    report.plan = chain
    result, hops = _run_chain_cold(
        ats,
        chain,
        options=options,
        config=resolved_config,
        cost_model=resolved_model,
        report=report,
        obs=obs,
    )
    schedule, frees = fused_chain_schedule(tuple(hops))
    fused = FusedChainPlan(
        operand_fingerprints=fingerprints,
        setup_key=setup,
        chain=chain,
        hops=tuple(hops),
        schedule=schedule,
        frees=frees,
        shape=(result.rows, result.cols),
    )
    if cache is not None:
        cache.put(key, fused)
    return result, report, fused
