"""Structure fingerprints and configuration hashes for plan reuse.

An :class:`~repro.engine.plan.ExecutionPlan` is replayable against
operands whose *topology* matches the one it was built from — values may
change freely, but the tile geometry and the sparsity pattern that drove
the density estimate, the water level and the kernel decisions must be
identical.  This module defines what "identical topology" means:

* a :class:`~repro.formats.csr.CSRMatrix` is fingerprinted over its
  shape and its structural arrays (``indptr`` + ``indices``) — changing
  any stored value keeps the fingerprint, inserting or removing a
  non-zero changes it;
* a :class:`~repro.formats.dense.DenseMatrix` is fingerprinted over its
  shape plus its population density quantized to two decimals — a dense
  block stores every cell, so there is no pattern to digest, but the
  planner's cost decisions consume the density, and whatever enters a
  plan must enter its key.  The quantization matches the decision
  memo's buckets (finer than any cost crossover): an iterative solver's
  fully-populated vectors all key to the same plan across iterations,
  while a degenerate operand (say, an all-zero start vector) gets its
  own — correctly all-sparse — plan instead of poisoning the shared one;
* an :class:`~repro.core.atmatrix.ATMatrix` digests its dimensions,
  atomic block size and the ordered tile directory (geometry, storage
  kind and payload fingerprint per tile).

Fingerprints are cached on the fingerprinted object (``_structure_fp``)
and invalidated together with the other derived state, so repeated plans
against the same operand cost one digest, not one per call.

The second half of the key is :func:`config_fingerprint`: every input of
the planning pipeline that is *not* operand topology — the
:class:`~repro.config.SystemConfig`, the cost model's coefficients and
thresholds, the memory limit and the ablation flags.  Two calls agree on
a cached plan only when both halves match.
"""

from __future__ import annotations

import hashlib
import struct

from ..config import SystemConfig
from ..cost.model import CostModel
from ..core.atmatrix import ATMatrix
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix


def _digest(*chunks: bytes) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


def payload_fingerprint(payload: CSRMatrix | DenseMatrix) -> str:
    """Topology fingerprint of one tile payload (cached on the payload)."""
    cached = getattr(payload, "_structure_fp", None)
    if cached is not None:
        return cached
    if isinstance(payload, DenseMatrix):
        fp = _digest(
            b"dense",
            struct.pack(
                "<qqd", payload.rows, payload.cols, round(payload.density, 2)
            ),
        )
    else:
        fp = _digest(
            b"csr",
            struct.pack("<qq", payload.rows, payload.cols),
            payload.indptr.tobytes(),
            payload.indices.tobytes(),
        )
    payload._structure_fp = fp
    return fp


def structure_fingerprint(operand: ATMatrix | CSRMatrix | DenseMatrix) -> str:
    """Topology fingerprint of any multiply operand.

    For AT Matrices the value is cached on the instance and dropped by
    :meth:`~repro.core.atmatrix.ATMatrix.invalidate_index` alongside the
    other derived state.
    """
    if not isinstance(operand, ATMatrix):
        return payload_fingerprint(operand)
    cached = getattr(operand, "_structure_fp", None)
    if cached is not None:
        return cached
    chunks: list[bytes] = [
        b"at",
        struct.pack("<qqq", operand.rows, operand.cols, operand.config.b_atomic),
    ]
    for tile in operand.tiles:
        chunks.append(
            struct.pack("<qqqq", tile.row0, tile.col0, tile.rows, tile.cols)
        )
        chunks.append(tile.kind.value.encode())
        chunks.append(payload_fingerprint(tile.data).encode())
    fp = _digest(*chunks)
    operand._structure_fp = fp
    return fp


def chain_fingerprint(
    operand_fingerprints: tuple[str, ...], setup_key: str
) -> str:
    """Stable identity of a fused chain across processes.

    Digest of every leaf operand's structure fingerprint, in chain
    order, plus the setup key — the same inputs a
    :class:`~repro.engine.cache.ChainKey` carries, so the fingerprint
    identifies a :class:`~repro.engine.plan.FusedChainPlan` exactly as
    :attr:`~repro.engine.plan.ExecutionPlan.fingerprint` identifies a
    single-product plan.
    """
    chunks: list[bytes] = [b"chain", struct.pack("<q", len(operand_fingerprints))]
    for fingerprint in operand_fingerprints:
        chunks.append(fingerprint.encode("utf-8"))
        chunks.append(b"\x00")
    chunks.append(setup_key.encode("utf-8"))
    return _digest(*chunks)


def config_fingerprint(
    config: SystemConfig,
    cost_model: CostModel,
    *,
    memory_limit_bytes: float | None,
    dynamic_conversion: bool,
    use_estimation: bool,
) -> str:
    """Hash of every non-operand input of the planning pipeline."""
    parts = [
        f"llc={config.llc_bytes}",
        f"alpha={config.alpha}",
        f"beta={config.beta}",
        f"b={config.b_atomic}",
        f"sd={config.dense_element_bytes}",
        f"ssp={config.sparse_element_bytes}",
        f"rt={cost_model.read_threshold!r}",
        f"wt={cost_model.write_threshold!r}",
        f"mem={memory_limit_bytes!r}",
        f"conv={dynamic_conversion}",
        f"est={use_estimation}",
    ]
    coefficients = cost_model.coefficients
    parts.extend(
        f"{name}={value!r}" for name, value in sorted(vars(coefficients).items())
    )
    return _digest("|".join(parts).encode())
