"""ExecutionPlan: the resolved decisions of one ATMULT invocation.

Paper Algorithm 2 interleaves *deciding* (density estimation, the
water-level write threshold, per-tile-product kernel choice) with
*doing* (running the kernels).  :func:`build_plan` performs only the
deciding half and records every resolution into an
:class:`ExecutionPlan`:

* the tile-pair list with geometry, estimated target density, target
  storage kind and worker-team (scheduler) assignment;
* per pair, the tile products with their reference windows and the
  dynamic optimizer's chosen input representations;
* the effective write-density threshold and the water level it came
  from.

The plan is pure metadata — it references operand tiles by *index*, not
by object, so it replays against any operands whose structure
fingerprints match the ones it was built from (values may change; the
topology may not).  :func:`~repro.engine.executor.execute_plan` is the
doing half.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..config import SystemConfig
from ..cost.model import CostModel
from ..core.atmatrix import ATMatrix
from ..core.operands import operand_density_map
from ..density.estimate import estimate_product_density
from ..density.map import DensityMap
from ..density.water_level import WaterLevelResult, water_level_threshold
from ..kernels.window import Window
from ..kinds import StorageKind, kernel_name
from ..observe import Observation
from ..observe import session as observe_session
from .fingerprint import chain_fingerprint, config_fingerprint, structure_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.chain import ChainPlan
    from ..core.operands import MatrixOperand
    from .options import MultiplyOptions

_span = observe_session.tracer_span


@dataclass(frozen=True)
class PlannedProduct:
    """One tile product with its resolved kernel decision."""

    #: indices of the participating tiles in the operands' tile lists
    a_index: int
    b_index: int
    #: reference windows into the A and B tile payloads
    wa: Window
    wb: Window
    #: write offset inside the pair's target accumulator
    target_row: int
    target_col: int
    #: input representations the dynamic optimizer chose
    kind_a: StorageKind
    kind_b: StorageKind
    #: kernel the decision dispatches to (``kernel_name(kind_a, kind_b, c)``)
    kernel: str


@dataclass(frozen=True)
class PlannedPair:
    """One tile-row/tile-column pair of the result grid."""

    ti: int
    tj: int
    r0: int
    r1: int
    c0: int
    c1: int
    #: estimated density of the target region (0.0 without estimation)
    rho_c: float
    #: target representation under the plan's write threshold
    c_kind: StorageKind
    #: worker-team / NUMA-node assignment (paper's scheduler decision)
    team_node: int
    #: indices of every A / B tile overlapping this pair's strips
    a_strip: tuple[int, ...]
    b_strip: tuple[int, ...]
    products: tuple[PlannedProduct, ...]


@dataclass
class ExecutionPlan:
    """Replayable decisions for ``C' = C + A x B`` over fixed topologies.

    Replay requires ``structure_fingerprint(a) == a_fingerprint`` and
    likewise for B (checked by the executor); the ``setup_key`` captures
    every non-operand planning input so a
    :class:`~repro.engine.cache.PlanCache` never serves a plan across
    configuration changes.
    """

    a_fingerprint: str
    b_fingerprint: str
    setup_key: str
    shape: tuple[int, int]
    row_cuts: list[int]
    col_cuts: list[int]
    write_threshold: float
    water_level: WaterLevelResult | None
    estimate: DensityMap | None
    pairs: tuple[PlannedPair, ...]
    use_estimation: bool = True
    dynamic_conversion: bool = True
    memory_limit_bytes: float | None = None
    #: planning-phase durations, folded into the first report
    estimate_seconds: float = 0.0
    optimize_seconds: float = 0.0
    decisions: int = 0
    _memory_bytes: int = field(default=0, repr=False)

    @property
    def num_products(self) -> int:
        return sum(len(pair.products) for pair in self.pairs)

    @property
    def fingerprint(self) -> str:
        """Stable identity of this plan across processes.

        Digest of both operand structure fingerprints and the setup
        key — exactly the inputs replay validation checks — so a
        checkpoint journal written under one plan is recognized by any
        later process that rebuilds the same plan.
        """
        digest = hashlib.blake2b(digest_size=16)
        for part in (self.a_fingerprint, self.b_fingerprint, self.setup_key):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint (plan-cache byte accounting)."""
        if self._memory_bytes:
            return self._memory_bytes
        total = 512 + 64 * (len(self.row_cuts) + len(self.col_cuts))
        total += sum(
            256 + 24 * (len(pair.a_strip) + len(pair.b_strip))
            + 200 * len(pair.products)
            for pair in self.pairs
        )
        if self.estimate is not None:
            total += int(self.estimate.grid.nbytes) + 128
        self._memory_bytes = total
        return total

    def describe(self) -> dict:
        """JSON-friendly summary (CLI / debugging)."""
        return {
            "shape": list(self.shape),
            "pairs": len(self.pairs),
            "products": self.num_products,
            "write_threshold": self.write_threshold,
            "dense_targets": sum(
                1 for pair in self.pairs if pair.c_kind is StorageKind.DENSE
            ),
            "use_estimation": self.use_estimation,
            "dynamic_conversion": self.dynamic_conversion,
            "memory_bytes": self.memory_bytes(),
            "kernels": self.kernel_histogram(),
        }

    def kernel_histogram(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pair in self.pairs:
            for product in pair.products:
                counts[product.kernel] = counts.get(product.kernel, 0) + 1
        return counts


class _DecisionMemo:
    """Quantized kernel-decision memo (mirrors the legacy optimizer)."""

    def __init__(self, cost_model: CostModel, enabled: bool) -> None:
        self.cost_model = cost_model
        self.enabled = enabled
        self._cache: dict[tuple, tuple[StorageKind, StorageKind]] = {}

    def decide(
        self,
        kind_a: StorageKind,
        kind_b: StorageKind,
        c_kind: StorageKind,
        m: int,
        k: int,
        n: int,
        rho_a: float,
        rho_b: float,
        rho_c: float,
    ) -> tuple[StorageKind, StorageKind]:
        if not self.enabled:
            return kind_a, kind_b
        # Quantized memoization: densities are bucketed to 2 significant
        # decimals — far finer than any cost-crossover the model exhibits —
        # so repeated products over similar tiles skip the 4-way search.
        key = (
            kind_a, kind_b, c_kind, m, k, n,
            round(rho_a, 2), round(rho_b, 2), round(rho_c, 2),
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        chosen_a, chosen_b, _cost = self.cost_model.cheapest_input_kinds(
            kind_a, kind_b, c_kind, m, k, n, rho_a, rho_b, rho_c
        )
        self._cache[key] = (chosen_a, chosen_b)
        return chosen_a, chosen_b


def build_plan(
    at_a: ATMatrix,
    at_b: ATMatrix,
    *,
    config: SystemConfig,
    cost_model: CostModel,
    memory_limit_bytes: float | None = None,
    dynamic_conversion: bool = True,
    use_estimation: bool = True,
    obs: Observation | None = None,
) -> ExecutionPlan:
    """Resolve every decision of one ATMULT invocation into a plan.

    Runs the paper's phases 1-2 (density estimation, water-level write
    threshold) and the per-product dynamic-optimizer decisions of phase
    3, but dispatches no kernel.  Span and metric emission matches the
    legacy monolith (``estimate``, ``water_level``, one ``optimize``
    span per product), so a traced uncached multiply looks identical to
    the pre-engine trace.
    """
    # -- phase 1: density estimation (Alg. 2 line 2) ----------------------
    estimate: DensityMap | None = None
    estimate_seconds = 0.0
    if use_estimation:
        start = time.perf_counter()
        with _span(obs, "estimate"):
            # Structural maps: the plan is cached under its structure
            # fingerprints, so its content may only depend on what those
            # fingerprints capture — not on the exact values it happened
            # to be built against.
            map_a = operand_density_map(at_a, config, structural=True)
            map_b = operand_density_map(at_b, config, structural=True)
            estimate = estimate_product_density(map_a, map_b)
        estimate_seconds = time.perf_counter() - start

    # -- phase 2: write threshold via the water level (line 3) ------------
    optimize_start = time.perf_counter()
    water_level: WaterLevelResult | None = None
    with _span(obs, "water_level"):
        if estimate is not None:
            water_level = water_level_threshold(estimate, memory_limit_bytes, config)
            write_threshold = max(cost_model.write_threshold, water_level.threshold)
        else:
            write_threshold = float("inf")  # no estimation: sparse targets only
    if obs is not None:
        obs.metrics.gauge("water_level.threshold").set(
            write_threshold if np.isfinite(write_threshold) else -1.0
        )
        if memory_limit_bytes is not None:
            obs.metrics.gauge("memory.limit_bytes").set(memory_limit_bytes)

    # -- phase 3 (deciding half): pair and product resolution --------------
    row_cuts = at_a.row_cuts()
    col_cuts = at_b.col_cuts()
    # Tiles are keyed by their anchor coordinates — unique within an
    # AT Matrix and stable across processes, unlike object identity.
    a_ids = {
        (tile.row0, tile.col0): index for index, tile in enumerate(at_a.tiles)
    }
    b_ids = {
        (tile.row0, tile.col0): index for index, tile in enumerate(at_b.tiles)
    }
    memo = _DecisionMemo(cost_model, dynamic_conversion)
    decisions = 0
    pairs: list[PlannedPair] = []
    for ti in range(len(row_cuts) - 1):
        r0, r1 = row_cuts[ti], row_cuts[ti + 1]
        a_strip = at_a.tiles_overlapping(r0, r1, 0, at_a.cols)
        team_node = a_strip[0].numa_node if a_strip else 0
        for tj in range(len(col_cuts) - 1):
            c0, c1 = col_cuts[tj], col_cuts[tj + 1]
            b_strip = at_b.tiles_overlapping(0, at_b.rows, c0, c1)
            rho_c = (
                estimate.region_density(r0, r1, c0, c1)
                if estimate is not None
                else 0.0
            )
            c_kind = (
                StorageKind.SPARSE if rho_c < write_threshold else StorageKind.DENSE
            )
            products: list[PlannedProduct] = []
            for a_tile in a_strip:
                for b_tile in b_strip:
                    k0 = max(a_tile.col0, b_tile.row0)
                    k1 = min(a_tile.col1, b_tile.row1)
                    if k0 >= k1:
                        continue
                    wa = Window(
                        max(r0, a_tile.row0) - a_tile.row0,
                        min(r1, a_tile.row1) - a_tile.row0,
                        k0 - a_tile.col0,
                        k1 - a_tile.col0,
                    )
                    wb = Window(
                        k0 - b_tile.row0,
                        k1 - b_tile.row0,
                        max(c0, b_tile.col0) - b_tile.col0,
                        min(c1, b_tile.col1) - b_tile.col0,
                    )
                    decision_start = time.perf_counter()
                    with _span(obs, "optimize", "optimize"):
                        kind_a, kind_b = memo.decide(
                            a_tile.kind, b_tile.kind, c_kind,
                            wa.rows, wa.cols, wb.cols,
                            a_tile.structural_density,
                            b_tile.structural_density,
                            rho_c,
                        )
                    decisions += 1
                    if obs is not None:
                        obs.metrics.histogram("optimizer.decision_seconds").observe(
                            time.perf_counter() - decision_start
                        )
                    products.append(
                        PlannedProduct(
                            a_index=a_ids[a_tile.row0, a_tile.col0],
                            b_index=b_ids[b_tile.row0, b_tile.col0],
                            wa=wa,
                            wb=wb,
                            target_row=max(r0, a_tile.row0) - r0,
                            target_col=max(c0, b_tile.col0) - c0,
                            kind_a=kind_a,
                            kind_b=kind_b,
                            kernel=kernel_name(kind_a, kind_b, c_kind),
                        )
                    )
            pairs.append(
                PlannedPair(
                    ti=ti, tj=tj, r0=r0, r1=r1, c0=c0, c1=c1,
                    rho_c=rho_c, c_kind=c_kind, team_node=team_node,
                    a_strip=tuple(a_ids[t.row0, t.col0] for t in a_strip),
                    b_strip=tuple(b_ids[t.row0, t.col0] for t in b_strip),
                    products=tuple(products),
                )
            )
    optimize_seconds = time.perf_counter() - optimize_start

    if obs is not None:
        obs.metrics.counter("plan.builds").inc()
    return ExecutionPlan(
        a_fingerprint=structure_fingerprint(at_a),
        b_fingerprint=structure_fingerprint(at_b),
        setup_key=config_fingerprint(
            config,
            cost_model,
            memory_limit_bytes=memory_limit_bytes,
            dynamic_conversion=dynamic_conversion,
            use_estimation=use_estimation,
        ),
        shape=(at_a.rows, at_b.cols),
        row_cuts=row_cuts,
        col_cuts=col_cuts,
        write_threshold=write_threshold,
        water_level=water_level,
        estimate=estimate,
        pairs=tuple(pairs),
        use_estimation=use_estimation,
        dynamic_conversion=dynamic_conversion,
        memory_limit_bytes=memory_limit_bytes,
        estimate_seconds=estimate_seconds,
        optimize_seconds=optimize_seconds,
        decisions=decisions,
    )


@dataclass(frozen=True)
class HopSource:
    """Where one operand side of a fused hop comes from.

    ``kind`` is ``"leaf"`` (``index`` into the chain's operand list) or
    ``"hop"`` (``index`` of an earlier :class:`PlannedHop` whose output
    feeds this side).
    """

    kind: str
    index: int


@dataclass(frozen=True)
class PlannedHop:
    """One multiplication of a fused chain, with its replay metadata.

    ``(i, k, j)`` is the :class:`~repro.core.chain.ChainPlan` triple
    (``result(i..j) = result(i..k) @ result(k+1..j)``); ``plan`` is the
    hop's :class:`ExecutionPlan` built against the operand topologies the
    cold run materialized.  ``tile_of_pair`` maps each planned pair to
    the index of the output tile it yields (``None`` for an all-zero
    pair), and ``expected_tiles`` records each output tile's geometry,
    storage kind and payload fingerprint — the fused executor validates
    every produced intermediate tile against these, because intermediate
    topology is a function of operand *values* (cancellation, density
    quantization), not just of the leaf structure the chain is keyed on.
    """

    i: int
    k: int
    j: int
    a_source: HopSource
    b_source: HopSource
    plan: ExecutionPlan
    out_fingerprint: str
    tile_of_pair: tuple[int | None, ...]
    expected_tiles: tuple[tuple[int, int, int, int, str, str], ...]


@dataclass
class FusedChainPlan:
    """A whole matrix chain resolved into one replayable plan.

    The chain-level member of the :class:`ExecutionPlan` family: the
    optimized parenthesization (``chain``), one :class:`PlannedHop` per
    multiplication, and a static ``schedule`` of ``(hop, pair)`` steps
    that interleaves tile-pair execution *across* hops — the C-tiles a
    worker team just produced for hop ``t`` are consumed as that team's
    A-tiles for hop ``t + 1`` while still resident, instead of running
    the hops barrier-to-barrier.  ``frees[step]`` lists the hops whose
    intermediate output is dead once that step completes, so the fused
    executor can release it eagerly.

    Cached in a :class:`~repro.engine.cache.PlanCache` under a
    :class:`~repro.engine.cache.ChainKey` (every leaf fingerprint plus
    the setup key), so repeated chain runs — and every iteration of a
    solver loop — replay the whole chain from one cache hit.
    """

    operand_fingerprints: tuple[str, ...]
    setup_key: str
    chain: ChainPlan
    hops: tuple[PlannedHop, ...]
    schedule: tuple[tuple[int, int], ...]
    frees: tuple[tuple[int, ...], ...]
    shape: tuple[int, int]
    _memory_bytes: int = field(default=0, repr=False)

    @property
    def fingerprint(self) -> str:
        """Stable chain identity: every leaf fingerprint plus the setup."""
        return chain_fingerprint(self.operand_fingerprints, self.setup_key)

    @property
    def num_hops(self) -> int:
        return len(self.hops)

    @property
    def num_pairs(self) -> int:
        return sum(len(hop.plan.pairs) for hop in self.hops)

    @property
    def num_products(self) -> int:
        return sum(hop.plan.num_products for hop in self.hops)

    def memory_bytes(self) -> int:
        """Approximate footprint (plan-cache byte accounting)."""
        if self._memory_bytes:
            return self._memory_bytes
        total = 512 + 16 * len(self.schedule)
        total += sum(
            hop.plan.memory_bytes()
            + 64 * len(hop.expected_tiles)
            + 8 * len(hop.tile_of_pair)
            for hop in self.hops
        )
        self._memory_bytes = total
        return total

    def describe(self) -> dict:
        """JSON-friendly summary (CLI / debugging)."""
        return {
            "shape": list(self.shape),
            "hops": self.num_hops,
            "pairs": self.num_pairs,
            "products": self.num_products,
            "schedule_steps": len(self.schedule),
            "parenthesization": self.chain.parenthesization(),
            "memory_bytes": self.memory_bytes(),
        }


def fused_chain_schedule(
    hops: tuple[PlannedHop, ...],
) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, ...], ...]]:
    """The interleaved ``(hop, pair)`` schedule and per-step free lists.

    Hops arrive in :class:`~repro.core.chain.ChainPlan` execution order,
    which is topological (every hop's intermediate sources precede it).
    A consumer pair is *ready* once each intermediate source has
    completed every pair that produces a tile in the consumer's A/B
    strip; within one hop, pairs run in plan order, so readiness reduces
    to a completed-pair-count threshold per source hop.  The greedy walk
    always advances the most-downstream ready pair, which is exactly the
    "consume hop ``t``'s fresh C-tiles as hop ``t + 1``'s A-tiles"
    interleaving; the earliest unfinished hop is always ready, so the
    walk cannot stall.  ``frees[step]`` holds the hop indices whose
    output is fully consumed once that step finishes (the root is the
    chain result and is never freed).
    """
    n = len(hops)
    # Per hop, per pair: (source hop, completed-pair count required).
    needs: list[list[tuple[tuple[int, int], ...]]] = []
    for hop in hops:
        producer_of_tile: dict[int, dict[int, int]] = {}
        for source in (hop.a_source, hop.b_source):
            if source.kind != "hop":
                continue
            producer_of_tile[source.index] = {
                tile_index: pair_index
                for pair_index, tile_index in enumerate(
                    hops[source.index].tile_of_pair
                )
                if tile_index is not None
            }
        hop_needs: list[tuple[tuple[int, int], ...]] = []
        for pair in hop.plan.pairs:
            pair_needs: list[tuple[int, int]] = []
            for source, strip in (
                (hop.a_source, pair.a_strip),
                (hop.b_source, pair.b_strip),
            ):
                if source.kind != "hop" or not strip:
                    continue
                producers = producer_of_tile[source.index]
                pair_needs.append(
                    (source.index, max(producers[t] for t in strip) + 1)
                )
            hop_needs.append(tuple(pair_needs))
        needs.append(hop_needs)

    next_pair = [0] * n
    completed = [0] * n
    remaining = sum(len(hop.plan.pairs) for hop in hops)
    schedule: list[tuple[int, int]] = []
    while remaining:
        chosen = None
        for h in range(n - 1, -1, -1):
            p = next_pair[h]
            if p >= len(hops[h].plan.pairs):
                continue
            if all(completed[g] >= count for g, count in needs[h][p]):
                chosen = h
                break
        assert chosen is not None  # the earliest unfinished hop is ready
        schedule.append((chosen, next_pair[chosen]))
        next_pair[chosen] += 1
        completed[chosen] += 1
        remaining -= 1

    # Free each intermediate after its consumer's last scheduled pair.
    # A consumer with zero pairs (a cancelled-to-empty product) never
    # touches its sources, so they simply stay resident until the end.
    last_step = {h: step for step, (h, _) in enumerate(schedule)}
    frees: list[list[int]] = [[] for _ in schedule]
    for h, hop in enumerate(hops):
        step = last_step.get(h)
        if step is None:
            continue
        for source in (hop.a_source, hop.b_source):
            if source.kind == "hop":
                frees[step].append(source.index)
    return tuple(schedule), tuple(tuple(sorted(dead)) for dead in frees)


def build_chain_plan(
    operands: list[MatrixOperand],
    *,
    options: MultiplyOptions | None = None,
    config: SystemConfig | None = None,
    cost_model: CostModel | None = None,
) -> FusedChainPlan:
    """Resolve a whole matrix chain into one :class:`FusedChainPlan`.

    Plans the parenthesization with the density-propagating chain DP,
    then resolves every hop into an :class:`ExecutionPlan` and builds the
    cross-hop interleaved schedule.  Because each hop is planned against
    the *materialized* topology of its intermediate operands, this runs
    the chain's kernels once (a cold run); the point of the returned
    object is replay — through ``options.plan_cache`` every later run of
    the same chain (and every solver iteration) is a single cache hit.
    """
    from ..errors import ShapeError
    from .api import run_chain
    from .options import coerce_options

    if len(operands) < 2:
        raise ShapeError(
            "a fused chain needs at least two operands, got "
            f"{len(operands)}"
        )
    opts = coerce_options(
        options, where="build_chain_plan", config=config, cost_model=cost_model
    )
    with observe_session.resolve(opts.observer) as obs:
        _result, _report, fused = run_chain(operands, options=opts, obs=obs)
    assert fused is not None  # guaranteed for two or more operands
    return fused
