"""Plan execution: the kernel-dispatch half of ATMULT.

:func:`execute_plan` replays an :class:`~repro.engine.plan.ExecutionPlan`
against concrete operands.  All *deciding* (estimation, water level,
kernel choice) already happened at plan time; execution walks the
planned pair list, materializes accumulators, performs the (cached)
just-in-time conversions the decisions call for and dispatches the
kernels through one of three backends:

``"sequential"``
    a plain loop, returning a :class:`~repro.core.report.MultiplyReport`
    with :class:`~repro.topology.trace.TaskRecord` entries;
``"threads"``
    one worker team per simulated socket on a thread pool
    (:class:`~repro.core.report.ParallelReport` with per-worker busy
    time);
``"processes"``
    the supervised multiprocess shard executor
    (:mod:`repro.resilience.supervisor`): pairs are sharded across OS
    worker processes, heartbeats and per-pair deadlines detect dead or
    hung workers, and their unfinished pairs are reassigned.

The per-pair logic all three backends share lives in
:class:`PairComputer`: accumulator setup, planned-decision replay (or a
live re-derivation when degradation changed the target kind), kernel
dispatch, and the resilience wrapper —
:class:`~repro.resilience.retry.ResilientPairRunner` when a policy is
given: bounded retries, result validation with reference fallback and
memory-pressure degradation.

Replaying against operands whose structure fingerprint differs from the
plan's raises :class:`~repro.errors.PlanMismatchError`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from ..config import SystemConfig
from ..cost.model import CostModel
from ..core.atmatrix import ATMatrix
from ..core.report import (
    PHASE_MULTIPLY,
    PHASE_OPTIMIZE,
    MultiplyReport,
    ParallelReport,
)
from ..core.tile import Tile, TilePayload
from ..errors import (
    ConfigError,
    MemoryLimitError,
    OperationCancelledError,
    PlanMismatchError,
    TaskFailedError,
)
from ..formats.convert import csr_to_dense, dense_to_csr
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..kernels.accumulator import Accumulator, DenseAccumulator, make_accumulator
from ..kernels.registry import run_tile_product
from ..kinds import StorageKind, kernel_name
from ..observe import Observation
from ..observe import session as observe_session
from ..resilience.cancel import CancelToken
from ..resilience.checkpoint import CheckpointStore
from ..resilience.degrade import DegradationState
from ..resilience.faults import fire_hooks, task_scope
from ..resilience.guard import reference_tile_product, validate_tile
from ..resilience.report import FailureReport, aggregate_message
from ..resilience.retry import ResilientPairRunner, RetryPolicy
from ..topology.trace import TaskRecord
from .fingerprint import payload_fingerprint, structure_fingerprint
from .plan import (
    ExecutionPlan,
    FusedChainPlan,
    HopSource,
    PlannedPair,
    _DecisionMemo,
)

_span = observe_session.tracer_span

#: The execution backends :func:`execute_plan` dispatches between.
EXECUTION_MODES = ("sequential", "threads", "processes")


@dataclass
class _PairStats:
    """Per-attempt bookkeeping, merged into the report only on success."""

    optimize_seconds: float = 0.0
    multiply_seconds: float = 0.0
    products: int = 0
    kernel_counts: dict[str, int] = field(default_factory=dict)
    tasks: list[TaskRecord] = field(default_factory=list)


@dataclass
class _PairOutcome:
    tile: Tile | None
    stats: _PairStats


class _ConversionCache:
    """Cached just-in-time tile conversions (one per tile, at most).

    The execution-time twin of the legacy optimizer's conversion cache:
    decisions live in the plan, but the converted payloads are runtime
    state keyed by tile identity — a tile converted for one product is
    reused by every later product of the same run.
    """

    def __init__(self) -> None:
        self._converted: dict[int, TilePayload] = {}
        # Uncontended acquisition is ~100ns and conversions happen at
        # most once per tile, so sequential runs share the locked path.
        self._lock = threading.Lock()
        self.conversions = 0
        self.conversion_seconds = 0.0

    def payload(self, tile: Tile, kind: StorageKind) -> TilePayload:
        if kind is tile.kind:
            return tile.data
        with self._lock:
            return self._convert_locked(tile, kind)

    def _convert_locked(self, tile: Tile, kind: StorageKind) -> TilePayload:
        # id()-keyed on purpose: the key is runtime tile identity within
        # one run and never reaches plan or fingerprint content.
        cached = self._converted.get(id(tile))  # repro-lint: disable=RPR011
        if cached is not None:
            return cached
        start = time.perf_counter()
        if kind is StorageKind.DENSE:
            assert isinstance(tile.data, CSRMatrix)
            converted: TilePayload = csr_to_dense(tile.data)
        else:
            assert isinstance(tile.data, DenseMatrix)
            converted = dense_to_csr(tile.data)
        elapsed = time.perf_counter() - start
        self.conversions += 1
        self.conversion_seconds += elapsed
        observe_session.counter("optimizer.conversions").inc()
        observe_session.histogram("optimizer.conversion_seconds").observe(elapsed)
        self._converted[id(tile)] = converted  # repro-lint: disable=RPR011
        return converted


@dataclass
class TileListView:
    """A growing result-tile list standing in for an operand.

    The fused chain executor feeds each hop's freshly produced C-tiles
    to the consuming hop as A/B tiles before the producing hop has
    finished; plans reference operand tiles by index, which is all
    :class:`PairComputer` reads, so this minimal view is enough to
    multiply against an intermediate that is still being materialized.
    """

    tiles: list[Tile] = field(default_factory=list)


#: What :class:`PairComputer` multiplies: complete AT Matrices or the
#: fused executor's in-flight intermediates.
TileOperand = ATMatrix | TileListView


def check_plan_applies(
    plan: ExecutionPlan, at_a: ATMatrix, at_b: ATMatrix
) -> None:
    """Raise :class:`PlanMismatchError` unless the plan fits the operands."""
    fp_a = structure_fingerprint(at_a)
    fp_b = structure_fingerprint(at_b)
    if fp_a != plan.a_fingerprint or fp_b != plan.b_fingerprint:
        raise PlanMismatchError(
            "operand topology does not match the plan's structure "
            f"fingerprints (A: {fp_a[:12]} vs {plan.a_fingerprint[:12]}, "
            f"B: {fp_b[:12]} vs {plan.b_fingerprint[:12]}); re-plan against "
            "the new operands"
        )


class PairComputer:
    """One pair's worth of plan replay, shared by every backend.

    Holds the per-run execution state — conversion cache, decision memo,
    degradation state, resilience runner — and computes single planned
    pairs against the operands.  The sequential loop, the thread pool
    and the supervised worker processes all drive the same instance
    shape, which is what makes the backends interchangeable: a worker
    process builds its own ``PairComputer`` from the shipped operands
    and produces outcomes indistinguishable from the in-process ones.

    ``record_tasks`` controls whether per-product
    :class:`~repro.topology.trace.TaskRecord` entries are collected
    (sequential reports only); ``busy_hook`` — when set — receives the
    wall seconds of every attempt (the thread backend attributes them to
    the current worker thread, the process backend to its shard).
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        at_a: TileOperand,
        at_b: TileOperand,
        *,
        cost_model: CostModel,
        at_c: ATMatrix | None = None,
        obs: Observation | None = None,
        resilience: RetryPolicy | None = None,
        record_tasks: bool = False,
        busy_hook: Callable[[float], None] | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        self.plan = plan
        self.at_a = at_a
        self.at_b = at_b
        self.at_c = at_c
        self.cost_model = cost_model
        self.obs = obs
        self.record_tasks = record_tasks
        self.busy_hook = busy_hook
        self.cancel = cancel
        self.conversions = _ConversionCache()
        self.memo = _DecisionMemo(cost_model, plan.dynamic_conversion)
        self.degradation: DegradationState | None = None
        self.runner: ResilientPairRunner | None = None
        self._policy = resilience

    def bind_resilience(self, config: SystemConfig, failure: FailureReport) -> None:
        """Create the degradation state and runner for ``config``.

        Separate from ``__init__`` because the failure report lives on
        the backend's report object, which the caller creates after
        deciding the execution mode.
        """
        if self._policy is None:
            return
        # Both writes happen on the orchestrating thread before any
        # worker thread is started; threaded pair execution only reads
        # these attributes, so no lock is needed.
        self.degradation = DegradationState(  # repro-lint: disable=RPR012
            self.plan.estimate,
            self.plan.memory_limit_bytes,
            config,
            self.plan.write_threshold,
        )
        self.runner = ResilientPairRunner(  # repro-lint: disable=RPR012
            self._policy, failure, self.degradation
        )

    # -- per-pair execution ----------------------------------------------
    def compute(
        self, pair: PlannedPair, force_sparse: bool, use_reference: bool = False
    ) -> _PairOutcome:
        """One full pair computation (one attempt), stats kept local so a
        retried attempt cannot double-count into the report."""
        attempt_start = time.perf_counter()
        stats = _PairStats()
        obs = self.obs
        plan = self.plan
        degradation = self.degradation
        attrs = (
            {"ti": pair.ti, "tj": pair.tj, "force_sparse": force_sparse}
            if obs is not None
            else None
        )
        try:
            with _span(obs, "pair", "pair", attrs):
                fire_hooks("pair", (pair.ti, pair.tj))
                threshold = (
                    degradation.threshold
                    if degradation is not None
                    else plan.write_threshold
                )
                c_kind = (
                    StorageKind.SPARSE
                    if force_sparse or pair.rho_c < threshold
                    else StorageKind.DENSE
                )
                # A degraded target kind invalidates the planned input
                # decisions for this pair; re-derive them live.
                replan = c_kind is not pair.c_kind
                accumulator = make_accumulator(
                    c_kind, pair.r1 - pair.r0, pair.c1 - pair.c0
                )
                if self.at_c is not None:
                    _seed_accumulator(
                        accumulator, self.at_c, pair.r0, pair.r1, pair.c0, pair.c1
                    )
                seeded = accumulator.writes > 0
                for product in pair.products:
                    a_tile = self.at_a.tiles[product.a_index]
                    b_tile = self.at_b.tiles[product.b_index]
                    start = time.perf_counter()
                    if use_reference:
                        payload_a, payload_b = a_tile.data, b_tile.data
                        opt_elapsed = time.perf_counter() - start
                        start = time.perf_counter()
                        reference_tile_product(
                            payload_a, product.wa, payload_b, product.wb,
                            accumulator, product.target_row, product.target_col,
                        )
                        name = kernel_name(
                            a_tile.kind, b_tile.kind, c_kind
                        )
                    else:
                        if replan:
                            kind_a, kind_b = self.memo.decide(
                                a_tile.kind, b_tile.kind, c_kind,
                                product.wa.rows, product.wa.cols, product.wb.cols,
                                a_tile.structural_density,
                                b_tile.structural_density,
                                pair.rho_c,
                            )
                        else:
                            kind_a, kind_b = product.kind_a, product.kind_b
                        name = kernel_name(kind_a, kind_b, c_kind)
                        payload_a = self.conversions.payload(a_tile, kind_a)
                        payload_b = self.conversions.payload(b_tile, kind_b)
                        opt_elapsed = time.perf_counter() - start
                        start = time.perf_counter()
                        run_tile_product(
                            payload_a, product.wa, payload_b, product.wb,
                            accumulator, product.target_row, product.target_col,
                        )
                    mult_elapsed = time.perf_counter() - start
                    stats.optimize_seconds += opt_elapsed
                    stats.multiply_seconds += mult_elapsed
                    stats.products += 1
                    stats.kernel_counts[name] = (
                        stats.kernel_counts.get(name, 0) + 1
                    )
                    if self.record_tasks:
                        stats.tasks.append(
                            TaskRecord(
                                pair=(pair.ti, pair.tj),
                                team_node=pair.team_node,
                                seconds=opt_elapsed + mult_elapsed,
                                bytes_by_node={
                                    a_tile.numa_node: a_tile.memory_bytes(),
                                    b_tile.numa_node: b_tile.memory_bytes(),
                                },
                            )
                        )
                    if obs is not None and not use_reference:
                        obs.metrics.histogram(
                            f"kernel.seconds.{name}"
                        ).observe(mult_elapsed)
                        predicted = self.cost_model.product_cost(
                            kind_a, kind_b, c_kind,
                            product.wa.rows, product.wa.cols, product.wb.cols,
                            a_tile.density, b_tile.density, pair.rho_c,
                        )
                        obs.cost_accuracy.record(name, predicted, mult_elapsed)

                start = time.perf_counter()
                tile: Tile | None = None
                if stats.products or seeded:
                    payload = accumulator.finalize()
                    if payload.nnz or isinstance(accumulator, DenseAccumulator):
                        candidate = Tile(
                            pair.r0,
                            pair.c0,
                            pair.r1 - pair.r0,
                            pair.c1 - pair.c0,
                            c_kind,
                            payload,
                            numa_node=pair.team_node,
                        )
                        if candidate.nnz:
                            tile = candidate
                stats.multiply_seconds += time.perf_counter() - start
                if obs is not None:
                    obs.metrics.counter("accumulator.writes").inc(
                        accumulator.writes
                    )
                    for index in pair.a_strip:
                        t = self.at_a.tiles[index]
                        obs.metrics.counter(
                            f"numa.bytes.node{t.numa_node}"
                        ).inc(t.memory_bytes())
                    for index in pair.b_strip:
                        t = self.at_b.tiles[index]
                        obs.metrics.counter(
                            f"numa.bytes.node{t.numa_node}"
                        ).inc(t.memory_bytes())
                if (
                    degradation is not None
                    and not force_sparse
                    and tile is not None
                    and tile.kind is StorageKind.DENSE
                    and degradation.over_budget(tile.memory_bytes())
                ):
                    raise MemoryLimitError(
                        f"pair {(pair.ti, pair.tj)} dense tile of "
                        f"{tile.memory_bytes()} B would exceed the memory budget"
                    )
                return _PairOutcome(tile, stats)
        finally:
            if self.busy_hook is not None:
                self.busy_hook(time.perf_counter() - attempt_start)

    def validate(self, pair: PlannedPair, outcome: _PairOutcome) -> None:
        if outcome.tile is None:
            return
        validate_tile(
            outcome.tile.data,
            pair.r1 - pair.r0,
            pair.c1 - pair.c0,
            pair.rho_c if self.plan.estimate is not None else None,
            pair=(pair.ti, pair.tj),
        )

    def run_pair(self, pair: PlannedPair) -> _PairOutcome:
        """Execute one pair under the resilience policy, if any.

        Checks the cancel token first, so cancellation/deadline expiry
        is observed at tile-pair granularity: a pair that already
        started runs to completion (and is journaled), the next one
        raises before doing any work.
        """
        if self.cancel is not None:
            self.cancel.check()
        coords = (pair.ti, pair.tj)
        if self.runner is None:
            with task_scope(coords, 1):
                return self.compute(pair, False)
        return self.runner.run(
            coords,
            lambda force_sparse: self.compute(pair, force_sparse),
            validate=lambda res: self.validate(pair, res),
            fallback=lambda force_sparse: self.compute(
                pair, force_sparse, use_reference=True
            ),
        )

    def note_completed(self, pair: PlannedPair, tile: Tile | None) -> None:
        """Account a finished pair's memory against the degradation budget."""
        if self.degradation is not None and tile is not None:
            self.degradation.note_completed(
                pair.r0, pair.r1, pair.c0, pair.c1, tile.memory_bytes()
            )


def execute_plan(
    plan: ExecutionPlan,
    at_a: ATMatrix,
    at_b: ATMatrix,
    at_c: ATMatrix | None = None,
    *,
    config: SystemConfig,
    cost_model: CostModel,
    resilience: RetryPolicy | None = None,
    obs: Observation | None = None,
    parallel: bool = False,
    workers: int = 1,
    execution: str | None = None,
    heartbeat_interval: float = 0.25,
    pair_deadline_seconds: float | None = None,
    check_fingerprints: bool = True,
    checkpoint: CheckpointStore | None = None,
    checkpoint_flush_pairs: int = 1,
    cancel: CancelToken | None = None,
    startup_grace_seconds: float = 10.0,
) -> tuple[ATMatrix, MultiplyReport | ParallelReport]:
    """Execute a plan against operands of matching topology.

    ``execution`` selects the backend (:data:`EXECUTION_MODES`); the
    legacy ``parallel=True`` keyword keeps meaning ``"threads"``.
    Sequential mode returns a :class:`MultiplyReport` (with task
    records); the thread backend dispatches pairs to a ``workers``-sized
    thread pool (one per simulated socket) and returns a
    :class:`ParallelReport`; the process backend hands the whole run to
    :func:`repro.resilience.supervisor.run_supervised` — worker
    processes with ``heartbeat_interval``-spaced liveness reporting and
    an optional per-pair dispatch deadline.  ``at_c`` seeding is
    sequential-only, as before the redesign.

    With a ``checkpoint`` store, pairs already present in its journal
    are restored instead of re-executed (counted as
    ``failure.pairs_resumed``), and every completed pair is journaled —
    durably flushed after each ``checkpoint_flush_pairs`` completions —
    so a killed process resumes from the last flush.  A
    :class:`KeyboardInterrupt` in any backend flushes the buffered
    records before propagating, so Ctrl-C costs nothing that was
    already computed.

    A ``cancel`` token is polled at tile-pair boundaries in every
    backend; when it trips, the run flushes the checkpoint exactly like
    Ctrl-C and unwinds with
    :class:`~repro.errors.OperationCancelledError` (or its
    :class:`~repro.errors.DeadlineExceededError` specialization), so a
    cancelled or deadline-expired multiplication is resumable.
    ``startup_grace_seconds`` only affects ``execution="processes"``:
    it bounds how long a fresh worker may take to post its first
    heartbeat.
    """
    mode = execution if execution is not None else (
        "threads" if parallel else "sequential"
    )
    if mode not in EXECUTION_MODES:
        raise ConfigError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )
    if mode != "sequential" and at_c is not None:
        raise PlanMismatchError("C seeding is not supported in parallel execution")
    if check_fingerprints:
        check_plan_applies(plan, at_a, at_b)
    if mode == "processes":
        # Imported lazily: the supervisor reaches back into this module
        # (through engine.shard) for the worker-side PairComputer.
        from ..resilience.supervisor import run_supervised

        return run_supervised(
            plan,
            at_a,
            at_b,
            config=config,
            cost_model=cost_model,
            resilience=resilience,
            obs=obs,
            workers=workers,
            heartbeat_interval=heartbeat_interval,
            pair_deadline_seconds=pair_deadline_seconds,
            checkpoint=checkpoint,
            checkpoint_flush_pairs=checkpoint_flush_pairs,
            cancel=cancel,
            startup_grace_seconds=startup_grace_seconds,
        )

    parallel = mode == "threads"
    completed: dict[tuple[int, int], Tile | None] = (
        checkpoint.begin(plan) if checkpoint is not None else {}
    )

    if parallel:
        report: MultiplyReport | ParallelReport = ParallelReport(
            workers=workers, observation=obs
        )
        if obs is not None:
            obs.metrics.gauge("workers").set(workers)
    else:
        report = MultiplyReport(observation=obs)
        report.write_threshold = plan.write_threshold
        report.water_level = plan.water_level

    busy_lock = threading.Lock()

    def thread_busy_hook(elapsed: float) -> None:
        name = threading.current_thread().name
        with busy_lock:
            report.worker_busy_seconds[name] = (
                report.worker_busy_seconds.get(name, 0.0) + elapsed
            )
        if obs is not None:
            obs.metrics.counter(f"worker.busy_seconds.{name}").inc(elapsed)

    computer = PairComputer(
        plan,
        at_a,
        at_b,
        cost_model=cost_model,
        at_c=at_c,
        obs=obs,
        resilience=resilience,
        record_tasks=not parallel,
        busy_hook=thread_busy_hook if parallel else None,
        cancel=cancel,
    )
    computer.bind_resilience(config, report.failure)

    result_tiles: list[Tile] = []

    def resume_pair(pair: PlannedPair) -> None:
        """Adopt a journaled result tile instead of re-executing the pair."""
        tile = completed[(pair.ti, pair.tj)]
        report.failure.pairs_resumed += 1
        if tile is not None:
            result_tiles.append(tile)
            computer.note_completed(pair, tile)

    def journal_pair(pair: PlannedPair, tile: Tile | None) -> None:
        assert checkpoint is not None
        checkpoint.record((pair.ti, pair.tj), tile)
        if checkpoint.pending() >= checkpoint_flush_pairs:
            checkpoint.flush()

    def flush_on_interrupt() -> None:
        """Satellite contract: Ctrl-C must not lose buffered records."""
        if checkpoint is not None:
            checkpoint.flush()
            report.checkpoint_flushes = checkpoint.flushes

    if parallel:
        assert isinstance(report, ParallelReport)
        report.pairs = len(plan.pairs)
        pending_pairs = [
            pair for pair in plan.pairs if (pair.ti, pair.tj) not in completed
        ]
        for pair in plan.pairs:
            if (pair.ti, pair.tj) in completed:
                resume_pair(pair)
        if computer.runner is None:
            report.failure.attempts = len(pending_pairs)

        def run_pair_captured(pair: PlannedPair) -> Tile | None:
            try:
                outcome = computer.run_pair(pair)
            except OperationCancelledError:
                # Not a pair failure: the token tripped before this pair
                # started.  The post-drain check() re-raises once, with
                # everything that did finish journaled.
                return None
            except Exception as error:  # noqa: BLE001 — aggregated after the pool drains
                with busy_lock:
                    report.failure.record_error((pair.ti, pair.tj), error)
                return None
            with busy_lock:
                report.products += outcome.stats.products
                report.pairs_executed += 1
                report.merge_kernel_counts(outcome.stats.kernel_counts)
            computer.note_completed(pair, outcome.tile)
            if checkpoint is not None:
                journal_pair(pair, outcome.tile)
            return outcome.tile

        start = time.perf_counter()
        pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="team")
        try:
            with _span(
                obs, "pair_loop", attrs={"pairs": len(plan.pairs)} if obs else None
            ):
                result_tiles.extend(
                    tile
                    for tile in pool.map(run_pair_captured, pending_pairs)
                    if tile is not None
                )
        except KeyboardInterrupt:
            # Tear the pool down without waiting for queued pairs, keep
            # what finished, and let the CLI print its one-line exit.
            pool.shutdown(wait=False, cancel_futures=True)
            flush_on_interrupt()
            raise
        finally:
            pool.shutdown(wait=True)
        report.phase_seconds[PHASE_MULTIPLY] = time.perf_counter() - start
        report.conversions = computer.conversions.conversions
        if checkpoint is not None:
            checkpoint.flush()
            report.checkpoint_flushes = checkpoint.flushes
        if cancel is not None and cancel.cancelled:
            cancel.check()
        if report.failure.pair_errors:
            raise TaskFailedError(
                aggregate_message(report.failure.pair_errors, len(plan.pairs)),
                pair_errors=report.failure.pair_errors,
                report=report,
            )
    else:
        assert isinstance(report, MultiplyReport)
        try:
            for pair in plan.pairs:
                if (pair.ti, pair.tj) in completed:
                    resume_pair(pair)
                    continue
                outcome = computer.run_pair(pair)
                stats = outcome.stats
                report.add_phase(PHASE_OPTIMIZE, stats.optimize_seconds)
                report.add_phase(PHASE_MULTIPLY, stats.multiply_seconds)
                report.merge_kernel_counts(stats.kernel_counts)
                report.tasks.extend(stats.tasks)
                report.pairs_executed += 1
                if outcome.tile is not None:
                    result_tiles.append(outcome.tile)
                    computer.note_completed(pair, outcome.tile)
                if checkpoint is not None:
                    journal_pair(pair, outcome.tile)
        except (KeyboardInterrupt, OperationCancelledError):
            flush_on_interrupt()
            raise
        report.conversions = computer.conversions.conversions
        if checkpoint is not None:
            checkpoint.flush()
            report.checkpoint_flushes = checkpoint.flushes

    result = ATMatrix(plan.shape[0], plan.shape[1], config, result_tiles)

    limit = plan.memory_limit_bytes
    enforce = limit is not None and (parallel or not np.isinf(limit))
    if enforce:
        from ..core.atmult import enforce_memory_limit

        start = time.perf_counter()
        with _span(obs, "memory_limit_enforce"):
            enforce_memory_limit(result, limit)
        report.add_phase("optimize", time.perf_counter() - start)
    return result, report


@dataclass
class FusedChainOutcome:
    """Execution-side summary of one fused chain replay.

    One sequential-style :class:`~repro.core.report.MultiplyReport` per
    hop (in hop order), plus the lifetime accounting the eager freeing
    produced: how many intermediate tiles were released before the end
    of the run and the peak number of intermediate bytes ever resident.
    """

    steps: list[MultiplyReport]
    intermediates_freed: int = 0
    peak_intermediate_bytes: int = 0


def execute_fused_chain(
    fused: FusedChainPlan,
    leaves: Sequence[ATMatrix],
    *,
    config: SystemConfig,
    cost_model: CostModel,
    obs: Observation | None = None,
    check_fingerprints: bool = True,
) -> tuple[ATMatrix, FusedChainOutcome]:
    """Replay a fused chain plan against matching leaf operands.

    Walks the plan's interleaved ``(hop, pair)`` schedule: a pair whose
    operand side is an earlier hop reads that hop's freshly produced
    tiles through a :class:`TileListView`, so intermediates are consumed
    while still resident instead of hop-by-hop behind barriers, and
    ``fused.frees`` releases each intermediate the moment its last
    consumer pair has run.

    Intermediate topology depends on operand *values* (cancellation,
    density quantization), not only on the leaf structures the chain is
    keyed by, so every produced tile is validated incrementally against
    the plan's recorded geometry/kind/payload fingerprint; any
    divergence raises :class:`~repro.errors.PlanMismatchError` and the
    caller falls back to a cold rebuild.
    """
    if len(leaves) != len(fused.operand_fingerprints):
        raise PlanMismatchError(
            f"fused chain plan expects {len(fused.operand_fingerprints)} "
            f"operands, got {len(leaves)}"
        )
    if check_fingerprints:
        for index, (leaf, expected_fp) in enumerate(
            zip(leaves, fused.operand_fingerprints, strict=True)
        ):
            fp = structure_fingerprint(leaf)
            if fp != expected_fp:
                raise PlanMismatchError(
                    f"chain operand {index} topology does not match the "
                    f"fused plan ({fp[:12]} vs {expected_fp[:12]}); re-plan "
                    "against the new operands"
                )

    views = [TileListView() for _ in fused.hops]

    def operand_of(source: HopSource) -> TileOperand:
        if source.kind == "leaf":
            return leaves[source.index]
        return views[source.index]

    computers: list[PairComputer | None] = [None] * len(fused.hops)
    reports: list[MultiplyReport] = []
    for hop in fused.hops:
        report = MultiplyReport(observation=obs)
        report.write_threshold = hop.plan.write_threshold
        report.water_level = hop.plan.water_level
        reports.append(report)

    root = len(fused.hops) - 1
    current_bytes = 0
    peak_bytes = 0
    freed = 0
    attrs = (
        {"hops": len(fused.hops), "steps": len(fused.schedule)}
        if obs is not None
        else None
    )
    with _span(obs, "fused_execute", attrs=attrs):
        for step, (h, p) in enumerate(fused.schedule):
            hop = fused.hops[h]
            computer = computers[h]
            if computer is None:
                computer = PairComputer(
                    hop.plan,
                    operand_of(hop.a_source),
                    operand_of(hop.b_source),
                    cost_model=cost_model,
                    obs=obs,
                    record_tasks=True,
                )
                computers[h] = computer
            pair = hop.plan.pairs[p]
            outcome = computer.run_pair(pair)
            stats = outcome.stats
            report = reports[h]
            report.add_phase(PHASE_OPTIMIZE, stats.optimize_seconds)
            report.add_phase(PHASE_MULTIPLY, stats.multiply_seconds)
            report.merge_kernel_counts(stats.kernel_counts)
            report.tasks.extend(stats.tasks)
            report.pairs_executed += 1

            tile = outcome.tile
            expected_index = hop.tile_of_pair[p]
            if (tile is None) != (expected_index is None):
                raise PlanMismatchError(
                    f"hop {h} pair {p} produced "
                    f"{'a tile' if tile is not None else 'no tile'} where the "
                    "fused plan recorded the opposite; operand values changed "
                    "the intermediate topology — re-plan the chain"
                )
            if tile is not None:
                assert expected_index is not None
                expected = hop.expected_tiles[expected_index]
                produced = (
                    tile.row0,
                    tile.col0,
                    tile.rows,
                    tile.cols,
                    tile.kind.value,
                    payload_fingerprint(tile.data),
                )
                if produced != expected:
                    raise PlanMismatchError(
                        f"hop {h} pair {p} produced tile {produced[:5]} with "
                        f"fingerprint {produced[5][:12]}, expected "
                        f"{expected[:5]} / {expected[5][:12]}; operand values "
                        "changed the intermediate topology — re-plan the chain"
                    )
                views[h].tiles.append(tile)
                if h != root:
                    current_bytes += tile.memory_bytes()
                    peak_bytes = max(peak_bytes, current_bytes)
            for dead in fused.frees[step]:
                view = views[dead]
                current_bytes -= sum(t.memory_bytes() for t in view.tiles)
                freed += len(view.tiles)
                view.tiles.clear()
                if obs is not None:
                    obs.metrics.counter("fused.intermediates_freed").inc()

    for h, computer in enumerate(computers):
        if computer is not None:
            reports[h].conversions = computer.conversions.conversions
    result = ATMatrix(fused.shape[0], fused.shape[1], config, views[root].tiles)
    if obs is not None:
        obs.metrics.gauge("fused.peak_intermediate_bytes").set(peak_bytes)
    return result, FusedChainOutcome(
        steps=reports,
        intermediates_freed=freed,
        peak_intermediate_bytes=peak_bytes,
    )


def _payload_kind(payload: TilePayload) -> StorageKind:
    return StorageKind.SPARSE if isinstance(payload, CSRMatrix) else StorageKind.DENSE


def _seed_accumulator(
    accumulator: Accumulator, at_c: ATMatrix, r0: int, r1: int, c0: int, c1: int
) -> None:
    """Add the prior C content of a region into a fresh accumulator."""
    for tile in at_c.tiles_overlapping(r0, r1, c0, c1):
        row_lo = max(r0, tile.row0)
        row_hi = min(r1, tile.row1)
        col_lo = max(c0, tile.col0)
        col_hi = min(c1, tile.col1)
        if isinstance(tile.data, DenseMatrix):
            view = tile.data.window_view(
                row_lo - tile.row0, row_hi - tile.row0,
                col_lo - tile.col0, col_hi - tile.col0,
            )
            accumulator.add_dense(row_lo - r0, col_lo - c0, view)
        else:
            rows, cols, values = tile.data.window_mask(
                row_lo - tile.row0, row_hi - tile.row0,
                col_lo - tile.col0, col_hi - tile.col0,
            )
            accumulator.add_triples(row_lo - r0, col_lo - c0, rows, cols, values)
