"""The plan-and-execute engine behind every multiply entry point.

Splits ATMULT's monolithic loop into *deciding*
(:func:`~repro.engine.plan.build_plan` → :class:`ExecutionPlan`) and
*doing* (:func:`~repro.engine.executor.execute_plan`), keyed for reuse
by operand-structure fingerprints plus a configuration hash
(:mod:`repro.engine.fingerprint`, :class:`PlanCache`), and fronted by
the consolidated :class:`MultiplyOptions` / :class:`Session` API.
"""

from .api import execute, plan, resolve_plan
from .cache import CacheStats, PlanCache, PlanKey
from .executor import EXECUTION_MODES, PairComputer, execute_plan
from .fingerprint import config_fingerprint, structure_fingerprint
from .options import LEGACY_OPTION_KEYWORDS, UNSET, MultiplyOptions, coerce_options
from .plan import ExecutionPlan, PlannedPair, PlannedProduct, build_plan
from .session import Session
from .shard import ShardConfig, assign_shards

__all__ = [
    "EXECUTION_MODES",
    "CacheStats",
    "ExecutionPlan",
    "LEGACY_OPTION_KEYWORDS",
    "MultiplyOptions",
    "PairComputer",
    "PlanCache",
    "PlanKey",
    "PlannedPair",
    "PlannedProduct",
    "Session",
    "ShardConfig",
    "UNSET",
    "assign_shards",
    "build_plan",
    "coerce_options",
    "config_fingerprint",
    "execute",
    "execute_plan",
    "plan",
    "resolve_plan",
    "structure_fingerprint",
]
