"""The plan-and-execute engine behind every multiply entry point.

Splits ATMULT's monolithic loop into *deciding*
(:func:`~repro.engine.plan.build_plan` → :class:`ExecutionPlan`) and
*doing* (:func:`~repro.engine.executor.execute_plan`), keyed for reuse
by operand-structure fingerprints plus a configuration hash
(:mod:`repro.engine.fingerprint`, :class:`PlanCache`), and fronted by
the consolidated :class:`MultiplyOptions` / :class:`Session` API.
"""

from .api import execute, plan, resolve_plan, run_chain
from .cache import CacheStats, ChainKey, PlanCache, PlanKey
from .executor import (
    EXECUTION_MODES,
    FusedChainOutcome,
    PairComputer,
    execute_fused_chain,
    execute_plan,
)
from .fingerprint import (
    chain_fingerprint,
    config_fingerprint,
    structure_fingerprint,
)
from .options import LEGACY_OPTION_KEYWORDS, UNSET, MultiplyOptions, coerce_options
from .plan import (
    ExecutionPlan,
    FusedChainPlan,
    HopSource,
    PlannedHop,
    PlannedPair,
    PlannedProduct,
    build_chain_plan,
    build_plan,
    fused_chain_schedule,
)
from .session import Session
from .shard import ShardConfig, assign_shards

__all__ = [
    "EXECUTION_MODES",
    "CacheStats",
    "ChainKey",
    "ExecutionPlan",
    "FusedChainOutcome",
    "FusedChainPlan",
    "HopSource",
    "LEGACY_OPTION_KEYWORDS",
    "MultiplyOptions",
    "PairComputer",
    "PlanCache",
    "PlanKey",
    "PlannedHop",
    "PlannedPair",
    "PlannedProduct",
    "Session",
    "ShardConfig",
    "UNSET",
    "assign_shards",
    "build_chain_plan",
    "build_plan",
    "chain_fingerprint",
    "coerce_options",
    "config_fingerprint",
    "execute",
    "execute_fused_chain",
    "execute_plan",
    "fused_chain_schedule",
    "plan",
    "resolve_plan",
    "run_chain",
    "structure_fingerprint",
]
