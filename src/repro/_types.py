"""Shared array type aliases for the formats/kernels/engine boundaries.

The storage formats normalize every payload to two concrete dtypes —
``int64`` coordinates/pointers and ``float64`` values — and the kernels
rely on that invariant (e.g. Morton key arithmetic assumes 64-bit
indices, accumulators assume double-precision values).  These aliases
make the invariant part of the signatures instead of a convention:

- :data:`IndexArray` — ``int64`` row/column ids, indptr, sort keys;
- :data:`FloatArray` — ``float64`` matrix values and dense blocks;
- :data:`BoolArray` — boolean masks from window/selection predicates.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

IndexArray = NDArray[np.int64]
FloatArray = NDArray[np.float64]
BoolArray = NDArray[np.bool_]

__all__ = ["BoolArray", "FloatArray", "IndexArray"]
