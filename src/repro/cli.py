"""Command-line interface: inspect, partition and multiply .mtx matrices.

Usage (also via ``python -m repro``):

    repro info matrix.mtx
    repro partition matrix.mtx --llc-kib 384
    repro multiply a.mtx b.mtx -o c.mtx --memory-limit-mb 64
    repro multiply a.mtx b.mtx --checkpoint-dir ckpt/ --resume
    repro verify matrix.npz
    repro generate R3 -o r3.mtx
    repro calibrate
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from .formats.coo import COOMatrix
    from .resilience import FaultPlan, RetryPolicy

from .config import (
    SystemConfig,
    validate_non_negative,
    validate_positive,
    validate_unit_interval,
)
from .core.atmult import atmult
from .core.builder import ATMatrixBuilder
from .cost.calibrate import calibrate, describe
from .errors import ConfigError, ReproError
from .formats.matrix_market import read_matrix_market, write_matrix_market
from .generate.suite import SUITE, load_matrix
from .kinds import StorageKind
from .viz.ascii_map import render_density_map, render_tile_layout


def _config_from_args(args: argparse.Namespace) -> SystemConfig:
    kwargs = {}
    if args.llc_kib is not None:
        kwargs["llc_bytes"] = args.llc_kib * 1024
    if getattr(args, "b_atomic", None) is not None:
        kwargs["b_atomic"] = args.b_atomic
    return SystemConfig(**kwargs)


def _validate_args(args: argparse.Namespace) -> None:
    """Reject out-of-domain values before they produce garbage downstream.

    ``SystemConfig`` validates ``--llc-kib``/``--b-atomic`` (positive,
    power of two) on construction; thresholds, limits, and the
    resilience flags are checked here so every command fails with a
    clean ``ConfigError`` message instead of a deep stack trace.
    """
    threshold = getattr(args, "read_threshold", None)
    if threshold is not None:
        validate_unit_interval(threshold, "--read-threshold")
    limit = getattr(args, "memory_limit_mb", None)
    if limit is not None:
        validate_non_negative(limit, "--memory-limit-mb")
    retries = getattr(args, "max_retries", None)
    if retries is not None and retries < 1:
        raise ConfigError(f"--max-retries must be >= 1, got {retries}")
    deadline = getattr(args, "task_deadline", None)
    if deadline is not None:
        validate_positive(deadline, "--task-deadline")
    tolerance = getattr(args, "tolerance", None)
    if tolerance is not None:
        validate_positive(tolerance, "--tolerance")
    flush = getattr(args, "checkpoint_flush", None)
    if flush is not None and flush < 1:
        raise ConfigError(f"--checkpoint-flush must be >= 1, got {flush}")
    if getattr(args, "resume", False) and not getattr(args, "checkpoint_dir", None):
        raise ConfigError("--resume requires --checkpoint-dir")
    worker_count = getattr(args, "workers", None)
    if worker_count is not None:
        if worker_count < 1:
            raise ConfigError(f"--workers must be >= 1, got {worker_count}")
        if getattr(args, "execution", None) is None:
            raise ConfigError("--workers requires --execution")
    heartbeat = getattr(args, "heartbeat_interval", None)
    if heartbeat is not None:
        validate_positive(heartbeat, "--heartbeat-interval")
    grace = getattr(args, "startup_grace", None)
    if grace is not None:
        validate_positive(grace, "--startup-grace")
    drain_timeout = getattr(args, "drain_timeout", None)
    if drain_timeout is not None:
        validate_positive(drain_timeout, "--drain-timeout")
    sla = getattr(args, "memory_sla_mb", None)
    if sla is not None:
        validate_positive(sla, "--memory-sla-mb")
    for name in ("serve_workers", "tenant_quota", "queue_depth"):
        bound = getattr(args, name, None)
        if bound is not None and bound < 1:
            flag = "--" + name.replace("_", "-")
            raise ConfigError(f"{flag} must be >= 1, got {bound}")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--llc-kib", type=int, default=None,
        help="last-level cache size in KiB (default: library default)",
    )
    parser.add_argument(
        "--b-atomic", type=int, default=None,
        help="atomic block edge (power of two; default: derived from LLC)",
    )
    parser.add_argument(
        "--read-threshold", type=float, default=0.25,
        help="density above which a tile is stored dense (paper rho0_R)",
    )


def cmd_info(args: argparse.Namespace) -> int:
    staged = read_matrix_market(args.matrix).sum_duplicates()
    config = _config_from_args(args)
    print(f"{args.matrix}: {staged.rows} x {staged.cols}, nnz={staged.nnz}, "
          f"density={100 * staged.density:.4f}%")
    print(f"COO binary size: {staged.memory_bytes() / 1e6:.2f} MB")
    from .density.map import DensityMap

    assert config.b_atomic is not None
    dm = DensityMap.from_coordinates(
        staged.rows, staged.cols, staged.row_ids, staged.col_ids, config.b_atomic
    )
    print(f"\nblock density map (b_atomic={config.b_atomic}):")
    print(render_density_map(dm, max_cells=48))
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    staged = read_matrix_market(args.matrix).sum_duplicates()
    config = _config_from_args(args)
    builder = ATMatrixBuilder(config, args.read_threshold)
    matrix, report = builder.build_with_report(staged)
    dense = matrix.num_tiles(StorageKind.DENSE)
    sparse = matrix.num_tiles(StorageKind.SPARSE)
    print(f"partitioned into {len(matrix.tiles)} tiles "
          f"({dense} dense, {sparse} sparse) in {report.total_seconds:.3f} s")
    for component, seconds in report.as_dict().items():
        print(f"  {component:>24}: {seconds * 1e3:8.2f} ms")
    print(f"memory: {matrix.memory_bytes() / 1e6:.2f} MB "
          f"(plain CSR would be {staged.nnz * 16 / 1e6:.2f} MB)")
    print(f"\ntile layout ('/' = dense):")
    print(render_tile_layout(matrix, max_cells=48))
    return 0


def _resilience_from_args(
    args: argparse.Namespace,
) -> tuple[RetryPolicy | None, FaultPlan | None]:
    """Build the (policy, fault plan) pair from the multiply flags."""
    from .resilience import FaultPlan, RetryPolicy

    policy = None
    if (
        args.max_retries is not None
        or args.task_deadline is not None
        or args.inject_faults is not None
    ):
        policy = RetryPolicy(
            max_attempts=args.max_retries if args.max_retries is not None else 3,
            task_deadline_seconds=args.task_deadline,
        )
    plan = None
    if args.inject_faults is not None:
        plan = FaultPlan(args.inject_faults, kernel_error_rate=0.1)
    return policy, plan


def cmd_multiply(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .observe import activate, Observation, write_chrome_trace, write_json
    from .resilience import inject_faults

    config = _config_from_args(args)
    observer = (
        Observation() if args.trace_out or args.metrics_out else None
    )
    # Activate before partitioning so the partition spans land in the
    # trace alongside the multiplication phases.
    observe_context = activate(observer) if observer is not None else nullcontext()
    with observe_context:
        a_staged = read_matrix_market(args.a).sum_duplicates()
        b_staged = (
            a_staged if args.b == args.a
            else read_matrix_market(args.b).sum_duplicates()
        )
        builder = ATMatrixBuilder(config, args.read_threshold)
        a = builder.build(a_staged)
        b = a if b_staged is a_staged else builder.build(b_staged)
        limit = args.memory_limit_mb * 1e6 if args.memory_limit_mb else None
        policy, plan = _resilience_from_args(args)
        context = inject_faults(plan) if plan is not None else nullcontext()
        from .engine import MultiplyOptions

        checkpoint = None
        if args.checkpoint_dir:
            from .resilience.checkpoint import CheckpointStore

            checkpoint = CheckpointStore(args.checkpoint_dir, resume=args.resume)
        options = MultiplyOptions(
            config=config,
            memory_limit_bytes=limit,
            resilience=policy,
            checkpoint=checkpoint,
            checkpoint_flush_pairs=args.checkpoint_flush,
            execution=args.execution or "threads",
            workers=args.workers,
            heartbeat_interval_seconds=args.heartbeat_interval,
            startup_grace_seconds=args.startup_grace,
        )
        start = time.perf_counter()
        with context:
            if args.execution is not None:
                from .core.parallel import parallel_atmult
                from .topology.system import SystemTopology

                topology = SystemTopology.scaled_default()
                result, report = parallel_atmult(
                    a, b, topology=topology, options=options
                )
            else:
                result, report = atmult(a, b, options=options)
        elapsed = time.perf_counter() - start
    print(f"C = A x B: {result.rows} x {result.cols}, nnz={result.nnz}, "
          f"{elapsed:.3f} s")
    print(f"  estimation {report.estimate_fraction:.1%}, "
          f"optimization {report.optimize_fraction:.1%}, "
          f"{report.conversions} tile conversions")
    print(f"  kernels: {report.kernel_counts}")
    print(f"  output memory: {result.memory_bytes() / 1e6:.2f} MB")
    if args.execution is not None:
        print(f"  execution: {args.execution}, {report.workers} workers, "
              f"parallel efficiency {report.parallel_efficiency:.1%}")
    if policy is not None:
        injected = f", {plan.injected} faults injected" if plan is not None else ""
        print(f"  resilience: {report.failure.summary()}{injected}")
    if checkpoint is not None:
        print(f"  checkpoint: {report.failure.pairs_resumed} pairs resumed, "
              f"{report.pairs_executed} executed, "
              f"{report.checkpoint_flushes} flushes -> {args.checkpoint_dir}")
    if observer is not None:
        if args.trace_out:
            write_chrome_trace(observer, args.trace_out)
            print(f"  trace written to {args.trace_out} "
                  f"({len(observer.tracer)} spans; load in Perfetto)")
        if args.metrics_out:
            write_json(observer, args.metrics_out)
            print(f"  metrics written to {args.metrics_out}")
    if args.output:
        write_matrix_market(result.to_coo(), args.output,
                            comment="produced by repro ATMULT")
        print(f"  written to {args.output}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Deep integrity verification of persisted matrices (exit 4 on damage)."""
    from pathlib import Path

    from .errors import ParseError
    from .resilience.integrity import verify_archive

    total = 0
    for target in args.targets:
        if not Path(target).exists():
            raise FileNotFoundError(f"no such file: {target}")
        if target.endswith(".mtx"):
            try:
                matrix = read_matrix_market(target).sum_duplicates()
            except ParseError as error:
                print(f"{target}: parse-error: {error}")
                total += 1
                continue
            print(f"{target}: OK ({matrix.rows} x {matrix.cols}, "
                  f"nnz={matrix.nnz})")
            continue
        violations = verify_archive(target)
        if violations:
            for violation in violations:
                print(f"{target}: {violation.render()}")
            total += len(violations)
        else:
            print(f"{target}: OK")
    if total:
        print(f"{total} integrity violation(s) found", file=sys.stderr)
        return 4
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from .advisor import recommend

    staged = read_matrix_market(args.matrix).sum_duplicates()
    config = _config_from_args(args)
    recommendation = recommend(staged, config)
    print(recommendation.summary())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.key not in SUITE:
        print(f"unknown suite key {args.key!r}; known: {', '.join(sorted(SUITE))}",
              file=sys.stderr)
        return 2
    matrix = load_matrix(args.key)
    entry = SUITE[args.key]
    write_matrix_market(
        matrix, args.output,
        comment=f"repro suite {args.key}: {entry.name} ({entry.domain})",
    )
    print(f"{args.key} ({entry.name}): {matrix.rows} x {matrix.cols}, "
          f"nnz={matrix.nnz} -> {args.output}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    import numpy as np

    from .solve import conjugate_gradient, jacobi

    staged = read_matrix_market(args.matrix).sum_duplicates()
    config = _config_from_args(args)
    matrix = ATMatrixBuilder(config, args.read_threshold).build(staged)
    if args.rhs:
        rhs_matrix = read_matrix_market(args.rhs)
        rhs = rhs_matrix.to_dense().ravel()
    else:
        rhs = np.ones(matrix.rows)
    solver = conjugate_gradient if args.method == "cg" else jacobi
    session = None
    if args.planned:
        from .engine import Session

        session = Session(config=config)
    result = solver(
        matrix,
        rhs,
        tolerance=args.tolerance,
        max_iterations=args.max_iterations,
        session=session,
    )
    status = "converged" if result.converged else "NOT converged"
    print(f"{args.method}: {status} after {result.iterations} iterations "
          f"(residual {result.residual_norm:.3e})")
    if session is not None:
        stats = session.cache_stats()
        print(f"plan cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['entries']} plans ({stats['bytes'] / 1e3:.1f} kB)")
    if args.output:
        solution = _vector_as_coo(result.solution)
        write_matrix_market(solution, args.output, comment="repro solve solution")
        print(f"solution written to {args.output}")
    return 0 if result.converged else 3


def _vector_as_coo(vector: np.ndarray) -> COOMatrix:
    """A length-n vector as an n x 1 COO matrix (for .mtx output)."""
    import numpy as np

    from .formats.coo import COOMatrix

    nz = np.flatnonzero(vector)
    return COOMatrix(
        len(vector), 1, nz, np.zeros(len(nz), dtype=np.int64), vector[nz]
    )


def cmd_calibrate(args: argparse.Namespace) -> int:
    coefficients = calibrate(size=args.size, repeats=args.repeats)
    print(describe(coefficients))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant matrix service (see docs/SERVICE.md).

    SIGTERM triggers a graceful drain: the listener closes, queued jobs
    stay journaled on disk for the next server, running jobs get
    ``--drain-timeout`` seconds to finish before being checkpoint-
    cancelled, and the process exits 0.
    """
    import asyncio
    import contextlib
    import signal

    from .engine import MultiplyOptions
    from .service import MatrixRegistry, MatrixService
    from .service import serve as serve_endpoint

    config = _config_from_args(args)
    registry = MatrixRegistry(config=config)
    for assignment in args.matrix:
        name, _, path = assignment.partition("=")
        if not name or not path:
            raise ConfigError(
                f"--matrix expects NAME=PATH, got {assignment!r}"
            )
        registry.register_file(name, path)
    limit = (
        args.memory_sla_mb * 1024 * 1024 if args.memory_sla_mb is not None else None
    )
    service = MatrixService(
        registry,
        job_dir=args.job_dir,
        memory_limit_bytes=limit,
        workers=args.serve_workers,
        tenant_quota=args.tenant_quota,
        max_queue_depth=args.queue_depth,
        options=MultiplyOptions(
            config=config, startup_grace_seconds=args.startup_grace
        ),
    )

    async def run() -> None:
        server = await serve_endpoint(service, host=args.host, port=args.port)
        sockets = server.sockets or []
        for sock in sockets:
            host, port = sock.getsockname()[:2]
            print(f"serving on {host}:{port}", flush=True)
        print(
            f"matrices: {', '.join(registry.names()) or '(none)'}; "
            f"job dir: {args.job_dir}",
            flush=True,
        )
        drain_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError):  # non-Unix loops
            loop.add_signal_handler(signal.SIGTERM, drain_requested.set)
        async with server:
            # start_server already accepts connections; block until the
            # drain signal (SIGINT surfaces as KeyboardInterrupt → 130).
            await drain_requested.wait()
            print(
                f"SIGTERM: draining (timeout {args.drain_timeout:g}s)...",
                flush=True,
            )
            server.close()
            await server.wait_closed()
            await service.drain(timeout=args.drain_timeout)
        print("drained; queued jobs will resume on the next server", flush=True)

    asyncio.run(run())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Tile Matrix toolkit (ICDE'16 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="matrix statistics + density map")
    info.add_argument("matrix", help="Matrix Market (.mtx) file")
    _add_config_arguments(info)
    info.set_defaults(handler=cmd_info)

    partition = commands.add_parser("partition", help="build and show an AT Matrix")
    partition.add_argument("matrix", help="Matrix Market (.mtx) file")
    _add_config_arguments(partition)
    partition.set_defaults(handler=cmd_partition)

    multiply = commands.add_parser("multiply", help="C = A x B with ATMULT")
    multiply.add_argument("a", help="left operand (.mtx)")
    multiply.add_argument("b", help="right operand (.mtx); pass the same "
                                    "path as A for a self-product")
    multiply.add_argument("-o", "--output", help="write the result (.mtx)")
    multiply.add_argument("--memory-limit-mb", type=float, default=None,
                          help="memory SLA for the output matrix")
    multiply.add_argument("--max-retries", type=int, default=None,
                          help="retry each tile-pair task up to N attempts "
                               "(enables the resilience layer)")
    multiply.add_argument("--task-deadline", type=float, default=None,
                          help="per-task deadline in seconds; slow attempts "
                               "are discarded and re-run")
    multiply.add_argument("--inject-faults", type=int, default=None,
                          metavar="SEED",
                          help="inject deterministic transient kernel faults "
                               "(10%% rate) from SEED, for chaos testing")
    multiply.add_argument("--trace-out", default=None, metavar="FILE",
                          help="write a Chrome trace-event JSON of the run "
                               "(open in Perfetto / chrome://tracing)")
    multiply.add_argument("--metrics-out", default=None, metavar="FILE",
                          help="write the full observation (metrics, spans, "
                               "cost-model accuracy) as JSON")
    multiply.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="journal each completed tile-pair to DIR so an "
                               "interrupted run can be resumed")
    multiply.add_argument("--resume", action="store_true",
                          help="restore completed pairs from --checkpoint-dir "
                               "and execute only the unfinished ones")
    multiply.add_argument("--checkpoint-flush", type=int, default=1, metavar="N",
                          help="flush the checkpoint journal every N completed "
                               "pairs (default 1: after every pair)")
    multiply.add_argument("--execution", choices=["threads", "processes"],
                          default=None,
                          help="run the tile-pair schedule in parallel with "
                               "the given backend (default: sequential)")
    multiply.add_argument("--workers", type=int, default=None, metavar="N",
                          help="worker count for --execution (default: the "
                               "simulated topology's socket count)")
    multiply.add_argument("--heartbeat-interval", type=float, default=0.25,
                          metavar="SECONDS",
                          help="worker heartbeat cadence under "
                               "--execution=processes (default 0.25)")
    multiply.add_argument("--startup-grace", type=float, default=10.0,
                          metavar="SECONDS",
                          help="grace before a silent worker process counts "
                               "as dead during startup (default 10; raise on "
                               "slow spawn-platform imports)")
    _add_config_arguments(multiply)
    multiply.set_defaults(handler=cmd_multiply)

    verify = commands.add_parser(
        "verify", help="deep integrity check of .npz archives / .mtx files"
    )
    verify.add_argument("targets", nargs="+", metavar="FILE",
                        help=".npz AT Matrix archives (checksums + structural "
                             "invariants) or .mtx files (parseability)")
    verify.set_defaults(handler=cmd_verify)

    advise = commands.add_parser(
        "advise", help="recommend storage/strategy for a matrix"
    )
    advise.add_argument("matrix", help="Matrix Market (.mtx) file")
    _add_config_arguments(advise)
    advise.set_defaults(handler=cmd_advise)

    generate = commands.add_parser("generate", help="emit a Table-I suite matrix")
    generate.add_argument("key", help="suite key, e.g. R3 or G5")
    generate.add_argument("-o", "--output", required=True, help="target .mtx")
    generate.set_defaults(handler=cmd_generate)

    solve = commands.add_parser("solve", help="solve A x = b iteratively")
    solve.add_argument("matrix", help="system matrix (.mtx)")
    solve.add_argument("--rhs", help="right-hand side (.mtx vector); default ones")
    solve.add_argument("--method", choices=["cg", "jacobi"], default="cg")
    solve.add_argument("--tolerance", type=float, default=1e-10)
    solve.add_argument("--max-iterations", type=int, default=2000)
    solve.add_argument("--planned", action="store_true",
                       help="drive matrix-vector products through the "
                            "plan-and-execute engine: iteration 1 builds an "
                            "ExecutionPlan, iterations 2..N replay it from "
                            "the session's plan cache")
    solve.add_argument("-o", "--output", help="write the solution (.mtx)")
    _add_config_arguments(solve)
    solve.set_defaults(handler=cmd_solve)

    calibrate_cmd = commands.add_parser(
        "calibrate", help="fit cost-model coefficients on this machine"
    )
    calibrate_cmd.add_argument("--size", type=int, default=256)
    calibrate_cmd.add_argument("--repeats", type=int, default=3)
    calibrate_cmd.set_defaults(handler=cmd_calibrate)

    serve = commands.add_parser(
        "serve", help="run the multi-tenant matrix job service"
    )
    serve.add_argument("--matrix", action="append", default=[],
                       metavar="NAME=PATH",
                       help="register a matrix under NAME from a .mtx file "
                            "or .npz archive (repeatable)")
    serve.add_argument("--job-dir", required=True, metavar="DIR",
                       help="job journal/checkpoint/result directory; reuse "
                            "a previous server's DIR to recover its "
                            "unfinished jobs")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: ephemeral, printed on start)")
    serve.add_argument("--serve-workers", dest="serve_workers", type=int,
                       default=2, metavar="N",
                       help="concurrent job workers (default 2)")
    serve.add_argument("--memory-sla-mb", type=float, default=None,
                       help="memory SLA enforced by water-level admission "
                            "control (default: no SLA)")
    serve.add_argument("--tenant-quota", type=int, default=8, metavar="N",
                       help="max queued-or-running jobs per tenant (default 8)")
    serve.add_argument("--queue-depth", type=int, default=64, metavar="N",
                       help="global pending-job bound before load shedding "
                            "(default 64)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM, seconds running jobs get to finish "
                            "before being checkpoint-cancelled (default 30)")
    serve.add_argument("--startup-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="worker-process startup heartbeat grace for "
                            "process-backend jobs (default 10)")
    _add_config_arguments(serve)
    serve.set_defaults(handler=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _validate_args(args)
        return args.handler(args)
    except KeyboardInterrupt:
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        hint = (
            f"; flushed pairs are preserved in {checkpoint_dir} "
            "(rerun with --resume)"
            if checkpoint_dir
            else ""
        )
        print(f"interrupted{hint}", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
