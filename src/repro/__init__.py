"""repro: Adaptive Tile Matrices and topology-aware sparse multiplication.

A faithful, pure-Python reproduction of

    D. Kernert, W. Lehner, F. Koehler:
    "Topology-Aware Optimization of Big Sparse Matrices and Matrix
    Multiplications on Main-Memory Systems", ICDE 2016.

Quickstart
----------
>>> import numpy as np
>>> from repro import COOMatrix, build_at_matrix, atmult, SystemConfig
>>> rng = np.random.default_rng(7)
>>> dense_block = rng.random((64, 64))
>>> raw = np.zeros((256, 256)); raw[:64, :64] = dense_block
>>> staged = COOMatrix.from_dense(raw)
>>> config = SystemConfig(llc_bytes=32 * 1024, b_atomic=32)
>>> a = build_at_matrix(staged, config)
>>> c, report = atmult(a, a, config=config)
>>> bool(np.allclose(c.to_dense(), raw @ raw))
True
"""

from .config import DEFAULT_CONFIG, S_DENSE, S_SPARSE, SystemConfig
from .kinds import StorageKind, kernel_name
from .errors import (
    AdmissionError,
    CircuitOpenError,
    ConfigError,
    DeadlineExceededError,
    FormatError,
    FrameTooLargeError,
    IntegrityError,
    MemoryLimitError,
    OperationCancelledError,
    ParseError,
    PartitionError,
    PlanMismatchError,
    QuotaExceededError,
    ReproError,
    ResultCorruptionError,
    RetryExhaustedError,
    SchedulerError,
    ServiceError,
    ServiceUnavailableError,
    ShapeError,
    TaskFailedError,
    TransportError,
    UnknownJobError,
    UnknownMatrixError,
)
from .observe import (
    CostAccuracyTracker,
    MetricsRegistry,
    Observation,
    Span,
    Tracer,
    observe,
    to_chrome_trace,
    to_json_dict,
    to_text_summary,
    write_chrome_trace,
    write_json,
    write_text_summary,
)
from .formats import (
    COOMatrix,
    load_at_matrix,
    save_at_matrix,
    CSRMatrix,
    DenseMatrix,
    read_matrix_market,
    write_matrix_market,
)
from .density import DensityMap, estimate_product_density, water_level_threshold
from .cost import CostCoefficients, CostModel, calibrate, refine_from_observation
from .core import (
    ATMatrix,
    BaseReport,
    ParallelReport,
    ChainPlan,
    ChainReport,
    align_to_operand,
    multiply_chain,
    plan_chain,
    retile,
    add,
    scale,
    atmv,
    atmv_transposed,
    power_iteration,
    parallel_atmult,
    ATMatrixBuilder,
    BuildReport,
    MultiplyReport,
    Tile,
    atmult,
    build_at_matrix,
    fixed_grid_at_matrix,
    multiply,
)

# After .core: the resilience package's checkpoint/integrity modules
# reach back into repro.core / repro.formats at import time.
from .resilience import (
    CancelToken,
    CheckpointStore,
    FailureReport,
    FaultKind,
    FaultPlan,
    IntegrityViolation,
    RetryPolicy,
    check_integrity,
    inject_faults,
    verify_archive,
    verify_at_matrix,
)
from .engine import (
    CacheStats,
    ChainKey,
    ExecutionPlan,
    FusedChainPlan,
    MultiplyOptions,
    PlanCache,
    PlanKey,
    Session,
    build_chain_plan,
    build_plan,
    config_fingerprint,
    execute,
    plan,
    structure_fingerprint,
)
from .service import (
    CircuitBreaker,
    Deadline,
    JobSpec,
    JobState,
    JobStatus,
    MatrixRegistry,
    MatrixService,
    ServiceClient,
)
from .expr import M, MatrixExpr
from .solve import SolveResult, conjugate_gradient, jacobi, richardson
from .tune import TuningResult, autotune
from .advisor import Recommendation, TopologyProfile, profile_topology, recommend
from .topology import (
    ScheduleResult,
    SystemTopology,
    WorkerTeamScheduler,
    distribute_tile_rows,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "DEFAULT_CONFIG",
    "S_DENSE",
    "S_SPARSE",
    "StorageKind",
    "kernel_name",
    "ReproError",
    "ShapeError",
    "FormatError",
    "ParseError",
    "ConfigError",
    "MemoryLimitError",
    "PlanMismatchError",
    "PartitionError",
    "SchedulerError",
    "TaskFailedError",
    "RetryExhaustedError",
    "ResultCorruptionError",
    "IntegrityError",
    "ServiceError",
    "AdmissionError",
    "QuotaExceededError",
    "UnknownMatrixError",
    "UnknownJobError",
    "OperationCancelledError",
    "DeadlineExceededError",
    "ServiceUnavailableError",
    "TransportError",
    "CircuitOpenError",
    "FrameTooLargeError",
    "CancelToken",
    "CheckpointStore",
    "FailureReport",
    "FaultKind",
    "FaultPlan",
    "IntegrityViolation",
    "RetryPolicy",
    "check_integrity",
    "inject_faults",
    "verify_archive",
    "verify_at_matrix",
    "COOMatrix",
    "CSRMatrix",
    "DenseMatrix",
    "read_matrix_market",
    "write_matrix_market",
    "save_at_matrix",
    "load_at_matrix",
    "DensityMap",
    "estimate_product_density",
    "water_level_threshold",
    "CostModel",
    "CostCoefficients",
    "calibrate",
    "refine_from_observation",
    "ATMatrix",
    "ATMatrixBuilder",
    "BuildReport",
    "Tile",
    "BaseReport",
    "MultiplyReport",
    "ParallelReport",
    "Observation",
    "observe",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "CostAccuracyTracker",
    "to_json_dict",
    "to_chrome_trace",
    "to_text_summary",
    "write_json",
    "write_chrome_trace",
    "write_text_summary",
    "atmult",
    "multiply",
    "build_at_matrix",
    "fixed_grid_at_matrix",
    # -- the plan-and-execute engine (redesigned API surface) -------------
    "Session",
    "MultiplyOptions",
    "PlanCache",
    "PlanKey",
    "CacheStats",
    "ExecutionPlan",
    "plan",
    "execute",
    "build_plan",
    "structure_fingerprint",
    "config_fingerprint",
    "ChainPlan",
    "ChainReport",
    "ChainKey",
    "FusedChainPlan",
    "build_chain_plan",
    "plan_chain",
    "multiply_chain",
    "align_to_operand",
    "retile",
    "add",
    "scale",
    "atmv",
    "atmv_transposed",
    "power_iteration",
    "parallel_atmult",
    "SystemTopology",
    "WorkerTeamScheduler",
    "ScheduleResult",
    "distribute_tile_rows",
    "recommend",
    "profile_topology",
    "Recommendation",
    "TopologyProfile",
    # -- the multi-tenant matrix service ----------------------------------
    "MatrixService",
    "MatrixRegistry",
    "ServiceClient",
    "Deadline",
    "CircuitBreaker",
    "JobSpec",
    "JobState",
    "JobStatus",
    "M",
    "MatrixExpr",
    "conjugate_gradient",
    "jacobi",
    "richardson",
    "SolveResult",
    "autotune",
    "TuningResult",
    "__version__",
]
