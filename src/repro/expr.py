"""Lazy matrix expressions with cost-based evaluation.

The paper positions ATMULT as a DBMS operator and builds on SpMachO [9],
which optimizes whole linear-algebra *expressions*.  This module provides
that expression layer: wrap operands in :func:`M`, compose with ``@``
(product), ``+`` (sum), ``*`` (scalar) and ``.T`` (transpose), then call
:meth:`MatrixExpr.evaluate` — the expression is normalized (transposes
pushed to the leaves via ``(AB)^T = B^T A^T``), product chains are
re-parenthesized with the density-aware chain planner, and every product
runs through ATMULT.

>>> import numpy as np
>>> from repro import COOMatrix, Session, SystemConfig, build_at_matrix
>>> from repro.expr import M
>>> config = SystemConfig(llc_bytes=8 * 1024, b_atomic=16)
>>> rng = np.random.default_rng(0)
>>> raw = np.where(rng.random((32, 32)) < 0.3, 1.0, 0.0)
>>> a = M(build_at_matrix(COOMatrix.from_dense(raw), config))
>>> session = Session(config=config)
>>> result = session.evaluate(a @ a.T + 2.0 * a)
>>> bool(np.allclose(result.to_dense(), raw @ raw.T + 2.0 * raw))
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from . import _deprecations
from .config import SystemConfig
from .core.arith import add as at_add
from .core.arith import scale as at_scale
from .core.atmatrix import ATMatrix
from .core.atmult import MatrixOperand, as_at_matrix
from .core.chain import multiply_chain
from .cost.model import CostModel
from .engine.options import MultiplyOptions
from .errors import ShapeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine.session import Session


class MatrixExpr:
    """Base class of lazy matrix expressions."""

    #: element shape of the expression's value
    shape: tuple[int, int]

    # -- composition -------------------------------------------------------
    def __matmul__(self, other: MatrixExpr) -> MatrixExpr:
        other = _as_expr(other)
        if self.shape[1] != other.shape[0]:
            raise ShapeError(
                f"cannot multiply {self.shape} @ {other.shape}"
            )
        return Product(self, other)

    def __add__(self, other: MatrixExpr) -> MatrixExpr:
        other = _as_expr(other)
        if self.shape != other.shape:
            raise ShapeError(f"cannot add {self.shape} + {other.shape}")
        return Sum(self, other)

    def __sub__(self, other: MatrixExpr) -> MatrixExpr:
        return self + (-1.0) * _as_expr(other)

    def __mul__(self, factor: float) -> MatrixExpr:
        return Scaled(self, float(factor))

    __rmul__ = __mul__

    @property
    def T(self) -> MatrixExpr:
        return Transpose(self)

    # -- evaluation -----------------------------------------------------------
    def evaluate(
        self,
        *,
        config: SystemConfig | None = None,
        cost_model: CostModel | None = None,
        options: MultiplyOptions | None = None,
        session: Session | None = None,
    ) -> ATMatrix:
        """Normalize, plan and execute the expression.

        Execution context, highest precedence first: ``session`` (its
        options — plan cache included — drive every product), then
        ``options``, then a default :class:`MultiplyOptions`.  The
        ``config``/``cost_model`` parameters override the corresponding
        fields of whichever applies but are **deprecated** — fold them
        into ``options=MultiplyOptions(...)`` or evaluate through
        :meth:`Session.evaluate <repro.Session.evaluate>`.  With a plan
        cache attached (a session always has one), product chains route
        through the fused chain planner, so re-evaluating an expression
        over same-topology operands replays whole fused chain plans.
        """
        supplied_context = [
            name
            for name, value in (
                ("config", config),
                ("cost_model", cost_model),
            )
            if value is not None
        ]
        if supplied_context:
            names = ", ".join(supplied_context)
            _deprecations.warn_once(
                f"MatrixExpr.evaluate:context:{names}",
                f"MatrixExpr.evaluate(): the {names} parameter(s) are "
                "deprecated; fold them into options=MultiplyOptions(...) "
                "or evaluate through Session.evaluate",
            )
        if session is not None:
            base = session.options
        elif options is not None:
            base = options
        else:
            base = MultiplyOptions()
        if config is not None:
            base = base.replace(config=config)
        if cost_model is not None:
            base = base.replace(cost_model=cost_model)
        normalized = self._pushdown(False)
        return normalized._execute(
            base.resolved_config(), base.resolved_cost_model(), base
        )

    def plan(self, *, config: SystemConfig | None = None) -> str:
        """Human-readable normalized structure (for inspection/tests)."""
        return self._pushdown(False)._describe()

    # -- internals (overridden per node) ------------------------------------------
    def _pushdown(self, transposed: bool) -> MatrixExpr:
        raise NotImplementedError

    def _execute(
        self,
        config: SystemConfig,
        cost_model: CostModel,
        options: MultiplyOptions,
    ) -> ATMatrix:
        raise NotImplementedError

    def _describe(self) -> str:
        raise NotImplementedError


def _as_expr(value: MatrixExpr | MatrixOperand) -> MatrixExpr:
    if isinstance(value, MatrixExpr):
        return value
    return M(value)


def M(operand: MatrixOperand) -> Leaf:
    """Wrap a matrix (AT Matrix, CSR or dense) as an expression leaf."""
    return Leaf(operand)


@dataclass(frozen=True, eq=False)
class Leaf(MatrixExpr):
    """A concrete operand."""

    operand: MatrixOperand
    transposed: bool = False

    @property
    def shape(self) -> tuple[int, int]:
        rows, cols = self.operand.shape
        return (cols, rows) if self.transposed else (rows, cols)

    def _pushdown(self, transposed: bool) -> MatrixExpr:
        if transposed:
            return Leaf(self.operand, not self.transposed)
        return self

    def _execute(
        self,
        config: SystemConfig,
        cost_model: CostModel,
        options: MultiplyOptions,
    ) -> ATMatrix:
        matrix = as_at_matrix(self.operand, config)
        return matrix.transpose() if self.transposed else matrix

    def _describe(self) -> str:
        name = type(self.operand).__name__
        return f"{name}{self.operand.shape}" + ("^T" if self.transposed else "")


@dataclass(frozen=True, eq=False)
class Transpose(MatrixExpr):
    """Deferred transpose; eliminated during normalization."""

    child: MatrixExpr

    @property
    def shape(self) -> tuple[int, int]:
        rows, cols = self.child.shape
        return cols, rows

    def _pushdown(self, transposed: bool) -> MatrixExpr:
        # Double transpose cancels.
        return self.child._pushdown(not transposed)

    def _execute(
        self,
        config: SystemConfig,
        cost_model: CostModel,
        options: MultiplyOptions,
    ) -> ATMatrix:  # pragma: no cover - normalized away
        raise AssertionError("Transpose nodes are eliminated before execution")

    def _describe(self) -> str:  # pragma: no cover - normalized away
        return f"({self.child._describe()})^T"


@dataclass(frozen=True, eq=False)
class Product(MatrixExpr):
    """Matrix product; consecutive products flatten into one chain."""

    left: MatrixExpr
    right: MatrixExpr

    @property
    def shape(self) -> tuple[int, int]:
        return self.left.shape[0], self.right.shape[1]

    def _pushdown(self, transposed: bool) -> MatrixExpr:
        if transposed:
            # (L R)^T = R^T L^T
            return Product(
                self.right._pushdown(True), self.left._pushdown(True)
            )
        return Product(self.left._pushdown(False), self.right._pushdown(False))

    def _chain(self) -> list[MatrixExpr]:
        """Flatten nested products into the full factor list."""
        factors: list[MatrixExpr] = []
        for side in (self.left, self.right):
            if isinstance(side, Product):
                factors.extend(side._chain())
            else:
                factors.append(side)
        return factors

    def _execute(
        self,
        config: SystemConfig,
        cost_model: CostModel,
        options: MultiplyOptions,
    ) -> ATMatrix:
        factors = self._chain()
        operands = [
            factor._execute(config, cost_model, options) for factor in factors
        ]
        result, _ = multiply_chain(operands, options=options)
        return result

    def _describe(self) -> str:
        factors = self._chain()
        return "(" + " @ ".join(f._describe() for f in factors) + ")"


@dataclass(frozen=True, eq=False)
class Sum(MatrixExpr):
    """Element-wise sum."""

    left: MatrixExpr
    right: MatrixExpr

    @property
    def shape(self) -> tuple[int, int]:
        return self.left.shape

    def _pushdown(self, transposed: bool) -> MatrixExpr:
        # (L + R)^T = L^T + R^T
        return Sum(
            self.left._pushdown(transposed), self.right._pushdown(transposed)
        )

    def _execute(
        self,
        config: SystemConfig,
        cost_model: CostModel,
        options: MultiplyOptions,
    ) -> ATMatrix:
        left = self.left._execute(config, cost_model, options)
        right = self.right._execute(config, cost_model, options)
        return at_add(left, right, config=config)

    def _describe(self) -> str:
        return f"({self.left._describe()} + {self.right._describe()})"


@dataclass(frozen=True, eq=False)
class Scaled(MatrixExpr):
    """Scalar multiple."""

    child: MatrixExpr
    factor: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.child.shape

    def _pushdown(self, transposed: bool) -> MatrixExpr:
        inner = self.child._pushdown(transposed)
        if isinstance(inner, Scaled):  # collapse nested scalars
            return Scaled(inner.child, inner.factor * self.factor)
        return Scaled(inner, self.factor)

    def _execute(
        self,
        config: SystemConfig,
        cost_model: CostModel,
        options: MultiplyOptions,
    ) -> ATMatrix:
        return at_scale(
            self.child._execute(config, cost_model, options), self.factor
        )

    def _describe(self) -> str:
        return f"{self.factor} * {self.child._describe()}"
