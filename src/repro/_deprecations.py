"""One funnel for every deprecation warning the library still emits.

Before this module each deprecated surface — the legacy multiply
keywords, the ``return_report=False`` result shapes, the pre-redesign
report attribute aliases — called :func:`warnings.warn` on its own
schedule, which meant a migration-era application saw the same warning
on every call of a hot loop.  Now every deprecated path routes through
:func:`warn_once`, keyed by a stable *site* string, so each distinct
deprecated usage warns exactly once per process and stays silent
afterwards.

The site registry is process-global and thread-safe.  Tests that assert
warning behavior reset it between cases with :func:`reset` (the test
suite does this from an autouse fixture); library code never resets.

The removal schedule for everything funneled through here is documented
in docs/API.md ("Deprecation policy and removal schedule").
"""

from __future__ import annotations

import threading
import warnings

#: Release in which every surface warned about through this module is
#: scheduled for removal (see docs/API.md for the per-surface table).
REMOVAL_RELEASE = "2.0"

_seen: set[str] = set()
_lock = threading.Lock()


def warn_once(site: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a :class:`DeprecationWarning`, once per site.

    ``site`` identifies the deprecated usage (e.g. ``"atmult:legacy:\
    memory_limit_bytes"`` or ``"BaseReport.wall_seconds"``); the first
    call for a site warns, every later call is a no-op.  Returns whether
    the warning was emitted.
    """
    with _lock:
        if site in _seen:
            return False
        _seen.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def seen_sites() -> frozenset[str]:
    """The deprecated sites that have warned so far (diagnostics)."""
    with _lock:
        return frozenset(_seen)


def reset() -> None:
    """Forget every warned site so the next use warns again (tests)."""
    with _lock:
        _seen.clear()
