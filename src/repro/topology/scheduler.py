"""Two-level worker-team scheduler with a simulated clock.

Paper section III-F describes two parallelization levels: worker *teams*
(one per socket, inter-tile parallelism) and threads within a team
(intra-tile parallelism).  All tile products of one tile-row/tile-column
pair run sequentially on one team; different pairs run on different
teams concurrently.

This scheduler replays the :class:`~repro.topology.trace.TaskRecord`
stream of an ATMULT run on a simulated machine: each pair is dispatched
to the team pinned to its preferred node (or, with ``work_stealing``, to
the earliest-finishing team), task durations are scaled by an intra-team
speedup model plus a remote-access penalty, and the result is the
simulated makespan — enabling the paper's placement/scheduling
comparisons on a single-core host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulerError
from .system import SystemTopology
from .trace import TaskRecord


@dataclass
class ScheduleResult:
    """Outcome of a simulated schedule."""

    makespan_seconds: float
    team_busy_seconds: list[float]
    remote_bytes: int
    local_bytes: int
    tasks: int

    @property
    def parallel_efficiency(self) -> float:
        """Busy time over (teams x makespan); 1.0 means perfect balance."""
        if not self.team_busy_seconds or self.makespan_seconds == 0.0:
            return 1.0
        total_busy = sum(self.team_busy_seconds)
        return total_busy / (len(self.team_busy_seconds) * self.makespan_seconds)

    @property
    def remote_fraction(self) -> float:
        """Fraction of bytes read from remote memory nodes."""
        total = self.remote_bytes + self.local_bytes
        return self.remote_bytes / total if total else 0.0


@dataclass
class WorkerTeamScheduler:
    """Simulates ATMULT's two-level parallel execution.

    Parameters
    ----------
    topology:
        The simulated machine (teams = sockets).
    intra_team_efficiency:
        Fraction of linear speedup realized inside a team (accounts for
        the sub-linear scaling of sparse kernels the paper observed on
        plain CSR).
    honor_pinning:
        When True, each pair executes on the team of its preferred node
        (paper policy).  When False, pairs are assigned round-robin
        ignoring placement — the comparison baseline.
    work_stealing:
        When True, a pair whose preferred team is backlogged may run on
        the earliest-available team instead (costs remote accesses).
    model_cache_pollution:
        When True, a task whose read set exceeds the socket's LLC is
        charged memory-bandwidth time for the overflow bytes — the
        "cache pollution" effect paper section III-F warns about when
        tiles outgrow the cache or too many tiles are touched at once.
    """

    topology: SystemTopology
    intra_team_efficiency: float = 0.7
    honor_pinning: bool = True
    work_stealing: bool = False
    model_cache_pollution: bool = False

    def run(self, tasks: list[TaskRecord]) -> ScheduleResult:
        """Replay tasks and return the simulated schedule outcome."""
        teams = self.topology.sockets
        clocks = [0.0] * teams
        remote_bytes = 0
        local_bytes = 0
        speedup = max(
            1.0, self.topology.cores_per_socket * self.intra_team_efficiency
        )
        bandwidth = self.topology.memory_bandwidth_bytes_per_s

        for pair, pair_tasks in _group_by_pair(tasks):
            preferred = pair_tasks[0].team_node % teams
            if not self.honor_pinning:
                team = (pair[0] * 31 + pair[1]) % teams
            elif self.work_stealing:
                earliest = min(range(teams), key=clocks.__getitem__)
                team = (
                    earliest
                    if clocks[preferred] > clocks[earliest] + _pair_cost(pair_tasks, speedup)
                    else preferred
                )
            else:
                team = preferred
            for task in pair_tasks:
                execute_node = team
                task_remote = task.remote_bytes(execute_node)
                task_local = task.total_bytes - task_remote
                remote_bytes += task_remote
                local_bytes += task_local
                penalty = (
                    task_remote / bandwidth * self.topology.remote_access_penalty
                )
                if self.model_cache_pollution:
                    overflow = max(0, task.total_bytes - self.topology.llc_bytes)
                    penalty += overflow / bandwidth
                clocks[team] += task.seconds / speedup + penalty
        makespan = max(clocks) if clocks else 0.0
        return ScheduleResult(
            makespan_seconds=makespan,
            team_busy_seconds=clocks,
            remote_bytes=remote_bytes,
            local_bytes=local_bytes,
            tasks=len(tasks),
        )


def _group_by_pair(
    tasks: list[TaskRecord],
) -> list[tuple[tuple[int, int], list[TaskRecord]]]:
    groups: dict[tuple[int, int], list[TaskRecord]] = {}
    for task in tasks:
        groups.setdefault(task.pair, []).append(task)
    for pair, pair_tasks in groups.items():
        nodes = {t.team_node for t in pair_tasks}
        if len(nodes) > 1:
            raise SchedulerError(
                f"pair {pair} has tasks with conflicting preferred nodes {nodes}"
            )
    return sorted(groups.items())


def _pair_cost(pair_tasks: list[TaskRecord], speedup: float) -> float:
    return sum(t.seconds for t in pair_tasks) / speedup
