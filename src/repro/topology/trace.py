"""Task records emitted by ATMULT for the topology simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskRecord:
    """One tile-row/tile-column multiplication task.

    Attributes
    ----------
    pair:
        The ``(ti, tj)`` tile-row/tile-column pair the task belongs to;
        all tasks of a pair run on the same worker team, one after
        another (paper section III-F).
    team_node:
        Preferred NUMA node: the node holding the A tile-row, to which
        the worker team is pinned.
    seconds:
        Measured (or predicted) execution time of the task.
    bytes_by_node:
        Payload bytes the task reads, keyed by the NUMA node they live
        on; used to charge remote-access penalties.
    """

    pair: tuple[int, int]
    team_node: int
    seconds: float
    bytes_by_node: dict[int, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_node.values())

    def remote_bytes(self, node: int) -> int:
        """Bytes that are remote when the task executes on ``node``."""
        return sum(b for n, b in self.bytes_by_node.items() if n != node)
