"""Simulated machine topology: sockets, cores, LLC and NUMA placement.

The paper runs on a four-socket NUMA machine and pins worker teams to
sockets, distributes tile-rows round-robin over memory nodes and relies on
first-touch allocation for the result (section III-F).  Those are all
*policies over topology parameters*; this subpackage models the topology
(:class:`SystemTopology`), applies the placement policies
(:mod:`~repro.topology.numa`) and replays recorded multiplication tasks
through a two-level worker-team scheduler with a simulated clock
(:mod:`~repro.topology.scheduler`), so the paper's scheduling and
placement experiments run without multi-socket hardware.
"""

from .system import SystemTopology
from .detect import detect_topology
from .numa import distribute_tile_rows, first_touch_node
from .scheduler import ScheduleResult, WorkerTeamScheduler
from .trace import TaskRecord

__all__ = [
    "SystemTopology",
    "detect_topology",
    "distribute_tile_rows",
    "first_touch_node",
    "ScheduleResult",
    "WorkerTeamScheduler",
    "TaskRecord",
]
