"""Host topology autodetection (Linux sysfs).

Builds a :class:`~repro.topology.system.SystemTopology` from the running
machine: socket count and core count from ``/sys/devices/system/cpu``,
LLC size from the deepest cache index.  Every probe degrades gracefully —
missing files fall back to a single-socket default — so the function is
safe on any platform.
"""

from __future__ import annotations

import os
from pathlib import Path

from .system import SystemTopology

_CPU_ROOT = Path("/sys/devices/system/cpu")


def _read_int(path: Path) -> int | None:
    try:
        return int(path.read_text().strip())
    except (OSError, ValueError):
        return None


def _read_size(path: Path) -> int | None:
    """Parse sysfs cache sizes like ``24576K``."""
    try:
        text = path.read_text().strip()
    except OSError:
        return None
    multiplier = 1
    if text.endswith(("K", "k")):
        multiplier, text = 1024, text[:-1]
    elif text.endswith(("M", "m")):
        multiplier, text = 1024 * 1024, text[:-1]
    try:
        return int(text) * multiplier
    except ValueError:
        return None


def detect_topology(root: str | os.PathLike | None = None) -> SystemTopology:
    """Probe the host and return its topology (best effort).

    Parameters
    ----------
    root:
        Override of the sysfs CPU root, for tests.
    """
    cpu_root = Path(root) if root is not None else _CPU_ROOT
    cpus = sorted(
        entry
        for entry in (cpu_root.glob("cpu[0-9]*") if cpu_root.is_dir() else [])
        if entry.name[3:].isdigit()
    )
    if not cpus:
        count = os.cpu_count() or 1
        return SystemTopology(sockets=1, cores_per_socket=count)

    packages: dict[int, set[int]] = {}
    threads_per_core: dict[tuple[int, int], int] = {}
    llc_bytes: int | None = None
    for cpu in cpus:
        package = _read_int(cpu / "topology" / "physical_package_id")
        core = _read_int(cpu / "topology" / "core_id")
        if package is None:
            package = 0
        if core is None:
            core = int(cpu.name[3:])
        packages.setdefault(package, set()).add(core)
        threads_per_core[(package, core)] = (
            threads_per_core.get((package, core), 0) + 1
        )
        if llc_bytes is None:
            cache_root = cpu / "cache"
            if cache_root.is_dir():
                best_level = -1
                for index in cache_root.glob("index*"):
                    level = _read_int(index / "level")
                    size = _read_size(index / "size")
                    if level is not None and size is not None and level > best_level:
                        best_level = level
                        llc_bytes = size

    sockets = max(1, len(packages))
    cores_per_socket = max(1, max(len(cores) for cores in packages.values()))
    smt = max(1, max(threads_per_core.values(), default=1))
    kwargs = {
        "sockets": sockets,
        "cores_per_socket": cores_per_socket,
        "smt": smt,
    }
    if llc_bytes:
        kwargs["llc_bytes"] = llc_bytes
    return SystemTopology(**kwargs)
