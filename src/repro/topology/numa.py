"""NUMA placement policies for AT Matrices.

Paper section III-F: since it is unknown whether a matrix will be the
left or the right multiplication operand, *all* matrices are horizontally
partitioned the same way — tile-rows are distributed round-robin over the
memory nodes.  Worker teams are pinned to the socket of their A tile-row,
and because the team allocates the target tiles it writes, the result
inherits A's distribution through the first-touch policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .system import SystemTopology

if TYPE_CHECKING:  # avoid a circular import at runtime (core imports topology)
    from ..core.atmatrix import ATMatrix


def distribute_tile_rows(matrix: ATMatrix, topology: SystemTopology) -> ATMatrix:
    """Assign every tile to a memory node, round-robin by tile-row.

    The tile-row of a tile is its index in the matrix's row-cut
    decomposition; all tiles of one tile-row land on the same node.
    Mutates the tile ``numa_node`` fields in place and returns the matrix
    for chaining.
    """
    cuts = matrix.row_cuts()
    strip_of_row0 = {r0: i for i, r0 in enumerate(cuts[:-1])}
    for tile in matrix.tiles:
        # A tile starts exactly at one of the cuts by construction.
        strip = strip_of_row0.get(tile.row0)
        if strip is None:
            # Tiles spanning several strips anchor at their first strip.
            strip = max(i for i, r0 in enumerate(cuts[:-1]) if r0 <= tile.row0)
        tile.numa_node = strip % topology.memory_nodes
    return matrix


def first_touch_node(tile_row_node: int) -> int:
    """Node where a result tile lands under the Linux first-touch policy.

    The worker team pinned to the A tile-row's socket performs the first
    write, so the target tile is allocated on that same node.
    """
    return tile_row_node


def placement_histogram(matrix: ATMatrix, topology: SystemTopology) -> dict[int, int]:
    """Bytes resident per memory node (for balance diagnostics)."""
    histogram = {node: 0 for node in range(topology.memory_nodes)}
    for tile in matrix.tiles:
        histogram[tile.numa_node % topology.memory_nodes] = (
            histogram.get(tile.numa_node % topology.memory_nodes, 0)
            + tile.memory_bytes()
        )
    return histogram
