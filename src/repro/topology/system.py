"""System topology description.

A :class:`SystemTopology` captures the machine parameters the paper's
decisions depend on: socket count, cores per socket, LLC size and the
relative cost of remote (cross-socket) memory accesses.  The paper's
evaluation machine — a four-socket Intel E7-4870 with 10 cores per socket
and hyperthreading — is available as :func:`SystemTopology.paper_machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import SystemConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class SystemTopology:
    """Simulated multi-socket machine.

    Parameters
    ----------
    sockets:
        Number of CPU sockets, each with its own memory node and LLC.
        ATMULT spawns one worker team per socket.
    cores_per_socket:
        Threads available to one worker team (intra-tile parallelism).
    llc_bytes:
        Last-level cache per socket; feeds the tile-size bounds.
    remote_access_penalty:
        Relative slowdown of reading remote memory vs. local memory
        (e.g. 0.5 means remote bytes cost 1.5x local bytes).
    memory_bandwidth_bytes_per_s:
        Local-node streaming bandwidth used to convert bytes into
        simulated seconds.
    smt:
        Hardware threads per core (hyperthreading factor).
    """

    sockets: int = 1
    cores_per_socket: int = 1
    llc_bytes: int = 384 * 1024
    remote_access_penalty: float = 0.5
    memory_bandwidth_bytes_per_s: float = 8.0e9
    smt: int = 1

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigError(f"sockets must be >= 1, got {self.sockets}")
        if self.cores_per_socket < 1:
            raise ConfigError(
                f"cores_per_socket must be >= 1, got {self.cores_per_socket}"
            )
        if self.llc_bytes <= 0:
            raise ConfigError(f"llc_bytes must be positive, got {self.llc_bytes}")
        if self.remote_access_penalty < 0:
            raise ConfigError("remote_access_penalty must be >= 0")
        if self.memory_bandwidth_bytes_per_s <= 0:
            raise ConfigError("memory_bandwidth_bytes_per_s must be positive")
        if self.smt < 1:
            raise ConfigError(f"smt must be >= 1, got {self.smt}")

    @property
    def total_threads(self) -> int:
        """Hardware threads across the machine."""
        return self.sockets * self.cores_per_socket * self.smt

    @property
    def memory_nodes(self) -> int:
        """NUMA memory nodes (one per socket)."""
        return self.sockets

    def system_config(self, **overrides: Any) -> SystemConfig:
        """Derive the tiling :class:`SystemConfig` from this topology."""
        params: dict[str, Any] = {"llc_bytes": self.llc_bytes}
        params.update(overrides)
        return SystemConfig(**params)

    @classmethod
    def paper_machine(cls) -> SystemTopology:
        """The paper's four-socket Intel E7-4870 evaluation system."""
        return cls(
            sockets=4,
            cores_per_socket=10,
            llc_bytes=24 * 1024 * 1024,
            remote_access_penalty=0.7,
            memory_bandwidth_bytes_per_s=30.0e9,
            smt=2,
        )

    @classmethod
    def scaled_default(cls, sockets: int = 2) -> SystemTopology:
        """A small simulated machine matched to the scaled benchmarks."""
        return cls(sockets=sockets, cores_per_socket=4, llc_bytes=384 * 1024)
