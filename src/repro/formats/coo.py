"""COO (coordinate / triple) staging format.

The paper loads raw matrices into "a temporary, unordered staging
representation, which is simply a table of the matrix tuples" (section
II-C1).  :class:`COOMatrix` is that table: three parallel numpy arrays of
``(row, col, value)``.  It supports duplicate summation, Z-ordering, and
size accounting in the paper's ``<int, int, double>`` binary triple format
(Table I's "Bin. Size" column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from .._types import FloatArray, IndexArray
from ..errors import FormatError, ShapeError
from ..zorder.morton import morton_encode

#: Bytes per COO triple: two 4-byte ints plus one 8-byte double.
COO_TRIPLE_BYTES = 16


@dataclass
class COOMatrix:
    """A sparse matrix as parallel coordinate/value arrays.

    The arrays are owned (never aliased to caller data after construction)
    and may be in any element order unless a method documents otherwise.
    """

    rows: int
    cols: int
    row_ids: IndexArray
    col_ids: IndexArray
    values: FloatArray

    def __init__(
        self,
        rows: int,
        cols: int,
        row_ids: ArrayLike,
        col_ids: ArrayLike,
        values: ArrayLike,
        *,
        check: bool = True,
        copy: bool = True,
    ) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.row_ids = np.array(row_ids, dtype=np.int64, copy=copy).ravel()
        self.col_ids = np.array(col_ids, dtype=np.int64, copy=copy).ravel()
        self.values = np.array(values, dtype=np.float64, copy=copy).ravel()
        if check:
            self._validate()

    def _validate(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ShapeError(f"dimensions must be positive, got {self.shape}")
        if not (len(self.row_ids) == len(self.col_ids) == len(self.values)):
            raise FormatError("COO arrays must have equal lengths")
        if self.nnz:
            if self.row_ids.min() < 0 or self.col_ids.min() < 0:
                raise FormatError("negative coordinates in COO matrix")
            if self.row_ids.max() >= self.rows or self.col_ids.max() >= self.cols:
                raise FormatError("COO coordinates outside matrix dimensions")

    # -- constructors ------------------------------------------------------
    @classmethod
    def empty(cls, rows: int, cols: int) -> COOMatrix:
        """A matrix of the given shape with no stored elements."""
        zero = np.empty(0, dtype=np.int64)
        return cls(rows, cols, zero, zero, np.empty(0, dtype=np.float64), copy=False)

    @classmethod
    def from_dense(cls, array: ArrayLike) -> COOMatrix:
        """Extract the non-zero entries of a 2-D numpy array."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ShapeError(f"expected a 2-D array, got ndim={array.ndim}")
        row_ids, col_ids = np.nonzero(array)
        return cls(array.shape[0], array.shape[1], row_ids, col_ids, array[row_ids, col_ids])

    # -- basic properties ----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted individually)."""
        return len(self.values)

    @property
    def density(self) -> float:
        """Population density ``rho = nnz / (rows * cols)``."""
        return self.nnz / (self.rows * self.cols)

    def memory_bytes(self) -> int:
        """Size in the paper's binary triple format (Table I, "Bin. Size")."""
        return self.nnz * COO_TRIPLE_BYTES

    # -- transformations -----------------------------------------------------
    def sum_duplicates(self) -> COOMatrix:
        """A copy with duplicate coordinates summed and zeros dropped,
        sorted row-major."""
        if not self.nnz:
            return COOMatrix.empty(self.rows, self.cols)
        keys = self.row_ids * self.cols + self.col_ids
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = self.values[order]
        boundaries = np.empty(len(keys), dtype=bool)
        boundaries[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        summed = np.add.reduceat(values, starts)
        unique_keys = keys[starts]
        keep = summed != 0.0
        unique_keys = unique_keys[keep]
        summed = summed[keep]
        return COOMatrix(
            self.rows,
            self.cols,
            unique_keys // self.cols,
            unique_keys % self.cols,
            summed,
            check=False,
            copy=False,
        )

    def z_ordered(self, *, copy: bool = True) -> COOMatrix:
        """A copy with elements sorted by their Morton (Z) code.

        This is the "locality-aware element reordering" step of paper
        section II-C1 that makes every quadtree quadrant contiguous.
        """
        if not self.nnz:
            return COOMatrix.empty(self.rows, self.cols)
        order = np.argsort(morton_encode(self.row_ids, self.col_ids), kind="stable")
        return COOMatrix(
            self.rows,
            self.cols,
            self.row_ids[order],
            self.col_ids[order],
            self.values[order],
            check=False,
            copy=copy,
        )

    def transpose(self) -> COOMatrix:
        """The transposed matrix (coordinates swapped)."""
        return COOMatrix(
            self.cols, self.rows, self.col_ids, self.row_ids, self.values, check=False
        )

    def extract_window(
        self, row0: int, row1: int, col0: int, col1: int
    ) -> COOMatrix:
        """Entries inside the half-open window, re-based to window origin."""
        if not (0 <= row0 <= row1 <= self.rows and 0 <= col0 <= col1 <= self.cols):
            raise ShapeError(
                f"window [{row0}:{row1}, {col0}:{col1}] outside {self.shape}"
            )
        mask = (
            (self.row_ids >= row0)
            & (self.row_ids < row1)
            & (self.col_ids >= col0)
            & (self.col_ids < col1)
        )
        return COOMatrix(
            max(1, row1 - row0),
            max(1, col1 - col0),
            self.row_ids[mask] - row0,
            self.col_ids[mask] - col0,
            self.values[mask],
            check=False,
            copy=False,
        )

    def to_dense(self) -> FloatArray:
        """Materialize as a 2-D numpy array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.row_ids, self.col_ids), self.values)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        if self.shape != other.shape:
            return False
        a, b = self.sum_duplicates(), other.sum_duplicates()
        return (
            np.array_equal(a.row_ids, b.row_ids)
            and np.array_equal(a.col_ids, b.col_ids)
            and np.array_equal(a.values, b.values)
        )

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
