"""Conversions between COO, CSR and dense representations.

The dynamic optimizer of ATMULT performs just-in-time tile conversions
(paper section III-C); these helpers are that conversion layer.  Every
function returns a new object; nothing aliases caller-owned buffers.
"""

from __future__ import annotations

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix
from .dense import DenseMatrix


def coo_to_csr(matrix: COOMatrix) -> CSRMatrix:
    """COO staging table -> CSR (duplicates summed, columns sorted)."""
    return CSRMatrix.from_arrays_unsorted(
        matrix.rows, matrix.cols, matrix.row_ids, matrix.col_ids, matrix.values
    )


def coo_to_dense(matrix: COOMatrix) -> DenseMatrix:
    """COO staging table -> dense array (duplicates summed)."""
    return DenseMatrix(matrix.to_dense(), copy=False)


def csr_to_coo(matrix: CSRMatrix) -> COOMatrix:
    """CSR -> COO triple table (row-major element order)."""
    rows = np.repeat(np.arange(matrix.rows, dtype=np.int64), matrix.row_nnz())
    return COOMatrix(
        matrix.rows, matrix.cols, rows, matrix.indices, matrix.values, check=False
    )


def csr_to_dense(matrix: CSRMatrix) -> DenseMatrix:
    """CSR -> dense array."""
    return DenseMatrix(matrix.to_dense(), copy=False)


def dense_to_coo(matrix: DenseMatrix) -> COOMatrix:
    """Dense array -> COO table of the non-zero entries."""
    return COOMatrix.from_dense(matrix.array)


def dense_to_csr(matrix: DenseMatrix) -> CSRMatrix:
    """Dense array -> CSR of the non-zero entries."""
    row_ids, col_ids = np.nonzero(matrix.array)
    return CSRMatrix.from_arrays_unsorted(
        matrix.rows,
        matrix.cols,
        row_ids.astype(np.int64),
        col_ids.astype(np.int64),
        matrix.array[row_ids, col_ids],
        sum_duplicates=False,
    )
