"""Row-major dense matrix with referenced (leading-dimension) windows.

The paper's referenced submatrix multiplication exploits the BLAS ``gemm``
convention that an operand may live inside a larger array, addressed by an
offset plus a leading dimension ``lda`` (section III-B).  A
:class:`DenseMatrix` wraps a row-major numpy array; :meth:`window_view`
returns the equivalent of that offset/leading-dimension addressing — a
zero-copy numpy view.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from .._types import FloatArray
from ..config import S_DENSE
from ..errors import FormatError, ShapeError


class DenseMatrix:
    """A dense row-major matrix of doubles."""

    # _structure_fp caches the engine's topology fingerprint and _nnz the
    # non-zero count (both lazily set; stale if the backing array is
    # mutated in place, like every other derived statistic).
    __slots__ = ("array", "_structure_fp", "_nnz")

    array: FloatArray

    def __init__(self, array: ArrayLike, *, copy: bool = True) -> None:
        array = np.array(array, dtype=np.float64, copy=copy)
        if array.ndim != 2:
            raise FormatError(f"expected a 2-D array, got ndim={array.ndim}")
        if array.shape[0] <= 0 or array.shape[1] <= 0:
            raise ShapeError(f"dimensions must be positive, got {array.shape}")
        if not array.flags.c_contiguous:
            array = np.ascontiguousarray(array)
        self.array = array

    @classmethod
    def zeros(cls, rows: int, cols: int) -> DenseMatrix:
        """An all-zero matrix of the given shape."""
        if rows <= 0 or cols <= 0:
            raise ShapeError(f"dimensions must be positive, got ({rows}, {cols})")
        return cls(np.zeros((rows, cols), dtype=np.float64), copy=False)

    # -- basic properties ----------------------------------------------------
    @property
    def rows(self) -> int:
        return self.array.shape[0]

    @property
    def cols(self) -> int:
        return self.array.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.array.shape

    @property
    def nnz(self) -> int:
        """Number of non-zero entries (by value, not storage)."""
        cached = getattr(self, "_nnz", None)
        if cached is None:
            cached = int(np.count_nonzero(self.array))
            self._nnz = cached
        return cached

    @property
    def density(self) -> float:
        """Population density by value."""
        return self.nnz / (self.rows * self.cols)

    def memory_bytes(self) -> int:
        """Paper-model dense footprint: ``S_d`` bytes per cell."""
        return self.rows * self.cols * S_DENSE

    # -- windows ---------------------------------------------------------------
    def window_view(self, row0: int, row1: int, col0: int, col1: int) -> FloatArray:
        """Zero-copy view of the half-open window (the ``lda`` trick)."""
        if not (0 <= row0 <= row1 <= self.rows and 0 <= col0 <= col1 <= self.cols):
            raise ShapeError(
                f"window [{row0}:{row1}, {col0}:{col1}] outside {self.shape}"
            )
        return self.array[row0:row1, col0:col1]

    def extract_window(self, row0: int, row1: int, col0: int, col1: int) -> DenseMatrix:
        """A standalone copy of the windowed submatrix."""
        return DenseMatrix(self.window_view(row0, row1, col0, col1))

    # -- utilities ---------------------------------------------------------------
    def to_dense(self) -> FloatArray:
        """The backing array (owned copy)."""
        return self.array.copy()

    def transpose(self) -> DenseMatrix:
        """The transposed matrix (materialized row-major)."""
        return DenseMatrix(self.array.T)

    def __repr__(self) -> str:
        return f"DenseMatrix(shape={self.shape}, nnz={self.nnz})"
