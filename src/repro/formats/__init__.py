"""Plain matrix storage formats used beneath the AT Matrix.

These are the "common matrix representations" of paper section III-A:
row-major dense arrays, CSR with per-row sorted column ids, and a COO
staging table used while loading/reordering.  The AT Matrix composes tiles
of these formats; the multiplication kernels consume them directly so any
library providing the same layouts could be plugged in.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .dense import DenseMatrix
from .convert import coo_to_csr, coo_to_dense, csr_to_coo, csr_to_dense, dense_to_coo, dense_to_csr
from .matrix_market import read_matrix_market, write_matrix_market
from .serialize import load_at_matrix, save_at_matrix
from .ell import ELLMatrix
from .bcsr import BCSRMatrix
from .interop import csr_from_scipy, from_numpy, from_scipy, to_scipy_coo, to_scipy_csr

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "DenseMatrix",
    "ELLMatrix",
    "BCSRMatrix",
    "coo_to_csr",
    "coo_to_dense",
    "csr_to_coo",
    "csr_to_dense",
    "dense_to_coo",
    "dense_to_csr",
    "read_matrix_market",
    "write_matrix_market",
    "save_at_matrix",
    "load_at_matrix",
    "from_scipy",
    "csr_from_scipy",
    "to_scipy_coo",
    "to_scipy_csr",
    "from_numpy",
]
