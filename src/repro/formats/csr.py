"""Compressed Sparse Row (CSR) format, from scratch on numpy arrays.

CSR stores one row-pointer array (``indptr``, length ``rows + 1``) plus the
column ids and values of all non-zeros in row-major order (paper Fig. 1).
Per paper section III-B the column ids inside every row are kept sorted at
creation time so that referenced submatrix multiplications can locate a
column range with binary search instead of scanning whole rows.

Memory accounting follows the paper's ``S_sp = 16`` bytes per element
(value + coordinate).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from .._types import FloatArray, IndexArray
from ..config import S_SPARSE
from ..errors import FormatError, ShapeError


class CSRMatrix:
    """A sparse matrix in CSR layout with per-row sorted column indices."""

    # _structure_fp caches the engine's topology fingerprint (lazily set
    # by repro.engine.fingerprint; absent until first fingerprinting).
    __slots__ = ("rows", "cols", "indptr", "indices", "values", "_keys", "_structure_fp")

    rows: int
    cols: int
    indptr: IndexArray
    indices: IndexArray
    values: FloatArray

    def __init__(
        self,
        rows: int,
        cols: int,
        indptr: ArrayLike,
        indices: ArrayLike,
        values: ArrayLike,
        *,
        check: bool = True,
        copy: bool = True,
    ) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.indptr = np.array(indptr, dtype=np.int64, copy=copy).ravel()
        self.indices = np.array(indices, dtype=np.int64, copy=copy).ravel()
        self.values = np.array(values, dtype=np.float64, copy=copy).ravel()
        self._keys: IndexArray | None = None
        if check:
            self._validate()

    def _validate(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ShapeError(f"dimensions must be positive, got {self.shape}")
        if len(self.indptr) != self.rows + 1:
            raise FormatError(
                f"indptr length {len(self.indptr)} != rows + 1 = {self.rows + 1}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if len(self.indices) != len(self.values):
            raise FormatError("indices and values must have equal lengths")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.cols:
                raise FormatError("column indices outside matrix width")
            # Sorted-within-row invariant (needed for binary column search).
            # Positions where a new row starts are exempt from the check;
            # trailing empty rows give row starts == nnz, which are clipped.
            row_starts = self.indptr[1:-1]
            row_starts = row_starts[row_starts < self.nnz]
            interior = np.ones(self.nnz, dtype=bool)
            interior[row_starts] = False
            if np.any((np.diff(self.indices) <= 0) & interior[1:]):
                raise FormatError("column indices must be strictly increasing per row")

    # -- constructors -------------------------------------------------------
    @classmethod
    def empty(cls, rows: int, cols: int) -> CSRMatrix:
        """A matrix of the given shape with no stored elements."""
        return cls(
            rows,
            cols,
            np.zeros(rows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            check=False,
            copy=False,
        )

    @classmethod
    def from_arrays_unsorted(
        cls,
        rows: int,
        cols: int,
        row_ids: ArrayLike,
        col_ids: ArrayLike,
        values: ArrayLike,
        *,
        sum_duplicates: bool = True,
    ) -> CSRMatrix:
        """Build from unordered coordinate arrays (sorting + dedup here)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        col_ids = np.asarray(col_ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(row_ids) == len(col_ids) == len(values)):
            raise FormatError("coordinate arrays must have equal lengths")
        if not len(values):
            return cls.empty(rows, cols)
        keys = row_ids * np.int64(cols) + col_ids
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        if sum_duplicates:
            boundaries = np.empty(len(keys), dtype=bool)
            boundaries[0] = True
            np.not_equal(keys[1:], keys[:-1], out=boundaries[1:])
            starts = np.flatnonzero(boundaries)
            values = np.add.reduceat(values, starts)
            keys = keys[starts]
            # Exact cancellations are dropped, matching COO semantics.
            keep = values != 0.0
            if not keep.all():
                keys = keys[keep]
                values = values[keep]
            if not len(values):
                return cls.empty(rows, cols)
        sorted_rows = keys // cols
        sorted_cols = keys % cols
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.add.at(indptr, sorted_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(rows, cols, indptr, sorted_cols, values, copy=False)

    # -- basic properties ----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def density(self) -> float:
        """Population density ``rho = nnz / (rows * cols)``."""
        return self.nnz / (self.rows * self.cols)

    def row_nnz(self) -> IndexArray:
        """Non-zero count of every row (length ``rows``)."""
        return np.diff(self.indptr)

    def memory_bytes(self) -> int:
        """Paper-model CSR footprint: ``S_sp`` bytes per stored element."""
        return self.nnz * S_SPARSE

    def sorted_keys(self) -> IndexArray:
        """Globally sorted row-major element keys ``row * cols + col``.

        Because CSR stores rows in order and columns sorted within each
        row, this array is ascending, so any rectangular window resolves
        to per-row ranges with one vectorized binary search.  Computed
        lazily and cached (adds 8 bytes per non-zero on first use).
        """
        if self._keys is None:
            rows = np.repeat(np.arange(self.rows, dtype=np.int64), self.row_nnz())
            self._keys = rows * np.int64(self.cols) + self.indices
        return self._keys

    def window_ranges(
        self, row0: int, row1: int, col0: int, col1: int
    ) -> tuple[IndexArray, IndexArray]:
        """Per-row ``(lo, hi)`` storage-index bounds of a half-open window."""
        if col0 == 0 and col1 == self.cols:
            return self.indptr[row0:row1], self.indptr[row0 + 1 : row1 + 1]
        keys = self.sorted_keys()
        row_range = np.arange(row0, row1, dtype=np.int64) * np.int64(self.cols)
        lo = np.searchsorted(keys, row_range + col0, side="left")
        hi = np.searchsorted(keys, row_range + col1, side="left")
        return lo, hi

    # -- element access --------------------------------------------------------
    def row_slice(self, row: int) -> tuple[IndexArray, FloatArray]:
        """``(column ids, values)`` views of one row."""
        start, end = self.indptr[row], self.indptr[row + 1]
        return self.indices[start:end], self.values[start:end]

    def window_mask(
        self, row0: int, row1: int, col0: int, col1: int
    ) -> tuple[IndexArray, IndexArray, FloatArray]:
        """Entries inside a half-open window as ``(rows, cols, values)``,
        re-based to the window origin.

        Row ranges are resolved through ``indptr`` (free); the column range
        uses per-row binary search over the sorted column ids, mirroring
        the referenced-submatrix access path of paper section III-B.
        """
        if not (0 <= row0 <= row1 <= self.rows and 0 <= col0 <= col1 <= self.cols):
            raise ShapeError(
                f"window [{row0}:{row1}, {col0}:{col1}] outside {self.shape}"
            )
        lo, hi = self.window_ranges(row0, row1, col0, col1)
        lengths = hi - lo
        total = int(lengths.sum())
        if not total:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        take = _segment_gather_indices(lo, lengths)
        out_rows = np.repeat(np.arange(row1 - row0, dtype=np.int64), lengths)
        return out_rows, self.indices[take] - col0, self.values[take]

    def extract_window(self, row0: int, row1: int, col0: int, col1: int) -> CSRMatrix:
        """A standalone CSR matrix holding the windowed submatrix."""
        rows, cols, values = self.window_mask(row0, row1, col0, col1)
        return CSRMatrix.from_arrays_unsorted(
            max(1, row1 - row0),
            max(1, col1 - col0),
            rows,
            cols,
            values,
            sum_duplicates=False,
        )

    def column_nnz(self) -> IndexArray:
        """Non-zero count of every column (length ``cols``)."""
        counts = np.zeros(self.cols, dtype=np.int64)
        if self.nnz:
            np.add.at(counts, self.indices, 1)
        return counts

    def diagonal(self) -> FloatArray:
        """The main diagonal as a dense vector (missing entries are 0)."""
        out = np.zeros(min(self.rows, self.cols), dtype=np.float64)
        for row in range(len(out)):
            cols, vals = self.row_slice(row)
            position = np.searchsorted(cols, row)
            if position < len(cols) and cols[position] == row:
                out[row] = vals[position]
        return out

    # -- conversions / utilities ------------------------------------------------
    def to_dense(self) -> FloatArray:
        """Materialize as a 2-D numpy array."""
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            rows = np.repeat(np.arange(self.rows, dtype=np.int64), self.row_nnz())
            out[rows, self.indices] = self.values
        return out

    def transpose(self) -> CSRMatrix:
        """The transposed matrix as a new CSR matrix."""
        if not self.nnz:
            return CSRMatrix.empty(self.cols, self.rows)
        rows = np.repeat(np.arange(self.rows, dtype=np.int64), self.row_nnz())
        return CSRMatrix.from_arrays_unsorted(
            self.cols, self.rows, self.indices, rows, self.values, sum_duplicates=False
        )

    def scale(self, factor: float) -> CSRMatrix:
        """A copy with all values multiplied by ``factor``."""
        return CSRMatrix(
            self.rows,
            self.cols,
            self.indptr,
            self.indices,
            self.values * factor,
            check=False,
        )

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


def _segment_gather_indices(starts: IndexArray, lengths: IndexArray) -> IndexArray:
    """Flat gather indices for variable-length segments.

    Produces ``concat(arange(s, s + l) for s, l in zip(starts, lengths))``
    without a Python loop.
    """
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(starts - _exclusive_cumsum(lengths), lengths)
    return np.arange(total, dtype=np.int64) + offsets


def _exclusive_cumsum(values: IndexArray) -> IndexArray:
    out = np.empty(len(values), dtype=np.int64)
    out[0] = 0
    np.cumsum(values[:-1], out=out[1:])
    return out
