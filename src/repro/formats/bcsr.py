"""BCSR (block compressed sparse row) format.

The register-blocking representation of Vuduc et al. the paper surveys
(section V-C: "their maximum block size is 3x3 — hence, their focus is
rather on microscopic tuning than on high-level tile optimizations").
BCSR stores small fixed-size dense blocks instead of single elements:
a CSR structure over the ``ceil(m/r) x ceil(n/c)`` block grid with an
``(nblocks, r, c)`` payload array.

Included to contrast the paper's macroscopic adaptive tiles against
microscopic register blocking in the SpMV format comparison.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError, ShapeError
from .csr import CSRMatrix


class BCSRMatrix:
    """Fixed-size dense-block CSR."""

    __slots__ = ("rows", "cols", "block_rows", "block_cols", "indptr", "indices", "blocks")

    def __init__(
        self,
        rows: int,
        cols: int,
        block_rows: int,
        block_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        blocks: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.block_rows = int(block_rows)
        self.block_cols = int(block_cols)
        self.indptr = np.array(indptr, dtype=np.int64)
        self.indices = np.array(indices, dtype=np.int64)
        self.blocks = np.array(blocks, dtype=np.float64)
        if check:
            self._validate()

    def _validate(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ShapeError(f"dimensions must be positive, got {self.shape}")
        if self.block_rows <= 0 or self.block_cols <= 0:
            raise FormatError("block dimensions must be positive")
        grid_rows = -(-self.rows // self.block_rows)
        grid_cols = -(-self.cols // self.block_cols)
        if len(self.indptr) != grid_rows + 1:
            raise FormatError(
                f"indptr length {len(self.indptr)} != block rows + 1 = {grid_rows + 1}"
            )
        if self.blocks.shape != (len(self.indices), self.block_rows, self.block_cols):
            raise FormatError(
                f"blocks shape {self.blocks.shape} inconsistent with "
                f"{len(self.indices)} blocks of {self.block_rows}x{self.block_cols}"
            )
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= grid_cols
        ):
            raise FormatError("block column indices outside the block grid")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_csr(
        cls, matrix: CSRMatrix, block_rows: int = 3, block_cols: int = 3
    ) -> BCSRMatrix:
        """Convert from CSR; occupied grid cells become dense blocks."""
        grid_cols = -(-matrix.cols // block_cols)
        rows = np.repeat(np.arange(matrix.rows, dtype=np.int64), matrix.row_nnz())
        cols = matrix.indices
        cell_keys = (rows // block_rows) * grid_cols + (cols // block_cols)
        order = np.argsort(cell_keys, kind="stable")
        cell_sorted = cell_keys[order]
        unique_cells, starts = np.unique(cell_sorted, return_index=True)
        # Sliced after the append so an empty matrix yields zero cell
        # ranges rather than the spurious single range [_, 0].
        ends = np.append(starts, len(cell_sorted))[1:]
        blocks = np.zeros(
            (len(unique_cells), block_rows, block_cols), dtype=np.float64
        )
        rows_sorted = rows[order]
        cols_sorted = cols[order]
        values_sorted = matrix.values[order]
        for i, (start, end) in enumerate(zip(starts, ends, strict=True)):
            local_rows = rows_sorted[start:end] % block_rows
            local_cols = cols_sorted[start:end] % block_cols
            blocks[i, local_rows, local_cols] = values_sorted[start:end]
        grid_rows = -(-matrix.rows // block_rows)
        block_row_ids = unique_cells // grid_cols
        indptr = np.zeros(grid_rows + 1, dtype=np.int64)
        np.add.at(indptr, block_row_ids + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            matrix.rows,
            matrix.cols,
            block_rows,
            block_cols,
            indptr,
            unique_cells % grid_cols,
            blocks,
            check=False,
        )

    # -- properties ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def num_blocks(self) -> int:
        return len(self.indices)

    @property
    def nnz(self) -> int:
        """Non-zeros by value (blocks may contain explicit zeros)."""
        return int(np.count_nonzero(self.blocks))

    def memory_bytes(self) -> int:
        """Payload bytes: full blocks plus one id per block."""
        return self.blocks.size * 8 + self.num_blocks * 8

    @property
    def fill_ratio(self) -> float:
        """Stored cells per actual non-zero (>= 1; the BCSR overhead)."""
        nnz = self.nnz
        return self.blocks.size / nnz if nnz else 1.0

    # -- operations ----------------------------------------------------------
    def spmv(self, vector: np.ndarray) -> np.ndarray:
        """``y = A @ x`` via per-block dense gemv contributions."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if len(vector) != self.cols:
            raise ShapeError(f"vector length {len(vector)} != cols {self.cols}")
        padded_cols = -(-self.cols // self.block_cols) * self.block_cols
        x = np.zeros(padded_cols)
        x[: self.cols] = vector
        segments = x.reshape(-1, self.block_cols)
        out = np.zeros((-(-self.rows // self.block_rows), self.block_rows))
        if self.num_blocks:
            # (nblocks, r, c) @ (nblocks, c) -> (nblocks, r), reduced per
            # block row with a segmented sum.
            contributions = np.einsum(
                "brc,bc->br", self.blocks, segments[self.indices]
            )
            lengths = np.diff(self.indptr)
            occupied = np.flatnonzero(lengths)
            out[occupied] = np.add.reduceat(
                contributions, self.indptr[occupied], axis=0
            )
        return out.ravel()[: self.rows]

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (explicit zeros dropped)."""
        if not self.num_blocks:
            return CSRMatrix.empty(self.rows, self.cols)
        block_rows = np.repeat(
            np.arange(len(self.indptr) - 1, dtype=np.int64), np.diff(self.indptr)
        )
        nz_block, nz_r, nz_c = np.nonzero(self.blocks)
        rows = block_rows[nz_block] * self.block_rows + nz_r
        cols = self.indices[nz_block] * self.block_cols + nz_c
        keep = (rows < self.rows) & (cols < self.cols)
        return CSRMatrix.from_arrays_unsorted(
            self.rows,
            self.cols,
            rows[keep],
            cols[keep],
            self.blocks[nz_block, nz_r, nz_c][keep],
            sum_duplicates=False,
        )

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    def __repr__(self) -> str:
        return (
            f"BCSRMatrix(shape={self.shape}, "
            f"block={self.block_rows}x{self.block_cols}, "
            f"blocks={self.num_blocks}, fill={self.fill_ratio:.2f})"
        )
