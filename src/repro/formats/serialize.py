"""Persistence of AT Matrices as ``.npz`` archives.

The partitioning of a large matrix costs about as much as one
multiplication (paper Fig. 7), so a system keeping matrices around —
the paper's main-memory DBMS setting — wants to persist the *partitioned*
form.  :func:`save_at_matrix` stores the tile directory and payloads in
a single compressed numpy archive; :func:`load_at_matrix` restores the
matrix without re-running the partitioner.

Layout: one header array describing the tiles (position, extent, kind)
plus, per tile ``i``, either ``dense_i`` or the CSR triple
``indptr_i`` / ``indices_i`` / ``values_i``.
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..config import SystemConfig
from ..core.atmatrix import ATMatrix
from ..core.tile import Tile
from ..errors import ParseError
from ..kinds import StorageKind
from .csr import CSRMatrix
from .dense import DenseMatrix

#: Archive format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


def save_at_matrix(matrix: ATMatrix, target: str | Path | BinaryIO) -> None:
    """Serialize an AT Matrix (tiles + config) to an ``.npz`` archive."""
    header = np.array(
        [
            [
                tile.row0,
                tile.col0,
                tile.rows,
                tile.cols,
                1 if tile.kind is StorageKind.DENSE else 0,
                tile.numa_node,
            ]
            for tile in matrix.tiles
        ],
        dtype=np.int64,
    ).reshape(len(matrix.tiles), 6)
    config = matrix.config
    assert config.b_atomic is not None
    meta = np.array(
        [
            FORMAT_VERSION,
            matrix.rows,
            matrix.cols,
            config.llc_bytes,
            config.alpha,
            config.beta,
            config.b_atomic,
            config.dense_element_bytes,
            config.sparse_element_bytes,
        ],
        dtype=np.int64,
    )
    arrays: dict[str, np.ndarray] = {"meta": meta, "tiles": header}
    for i, tile in enumerate(matrix.tiles):
        if isinstance(tile.data, DenseMatrix):
            arrays[f"dense_{i}"] = tile.data.array
        else:
            arrays[f"indptr_{i}"] = tile.data.indptr
            arrays[f"indices_{i}"] = tile.data.indices
            arrays[f"values_{i}"] = tile.data.values
    np.savez_compressed(target, **arrays)


def load_at_matrix(source: str | Path | BinaryIO) -> ATMatrix:
    """Restore an AT Matrix saved with :func:`save_at_matrix`."""
    with np.load(source) as archive:
        try:
            meta = archive["meta"]
            header = archive["tiles"]
        except KeyError as exc:
            raise ParseError(f"not an AT Matrix archive: missing {exc}") from exc
        if meta[0] != FORMAT_VERSION:
            raise ParseError(
                f"unsupported AT Matrix archive version {int(meta[0])}"
                f" (expected {FORMAT_VERSION})"
            )
        rows, cols = int(meta[1]), int(meta[2])
        config = SystemConfig(
            llc_bytes=int(meta[3]),
            alpha=int(meta[4]),
            beta=int(meta[5]),
            b_atomic=int(meta[6]),
            dense_element_bytes=int(meta[7]),
            sparse_element_bytes=int(meta[8]),
        )
        tiles = []
        for i, (row0, col0, t_rows, t_cols, is_dense, node) in enumerate(header):
            if is_dense:
                payload: CSRMatrix | DenseMatrix = DenseMatrix(
                    archive[f"dense_{i}"], copy=False
                )
                kind = StorageKind.DENSE
            else:
                payload = CSRMatrix(
                    int(t_rows),
                    int(t_cols),
                    archive[f"indptr_{i}"],
                    archive[f"indices_{i}"],
                    archive[f"values_{i}"],
                )
                kind = StorageKind.SPARSE
            tiles.append(
                Tile(
                    int(row0),
                    int(col0),
                    int(t_rows),
                    int(t_cols),
                    kind,
                    payload,
                    numa_node=int(node),
                )
            )
    return ATMatrix(rows, cols, config, tiles)
