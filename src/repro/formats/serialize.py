"""Persistence of AT Matrices as ``.npz`` archives.

The partitioning of a large matrix costs about as much as one
multiplication (paper Fig. 7), so a system keeping matrices around —
the paper's main-memory DBMS setting — wants to persist the *partitioned*
form.  :func:`save_at_matrix` stores the tile directory and payloads in
a single compressed numpy archive; :func:`load_at_matrix` restores the
matrix without re-running the partitioner.

Layout: one header array describing the tiles (position, extent, kind)
plus, per tile ``i``, either ``dense_i`` or the CSR triple
``indptr_i`` / ``indices_i`` / ``values_i``.

Durability (format v2): archives written to a path land atomically
(temp file + fsync + rename via :func:`~repro.ioutil.atomic_write`, so
a crash mid-save never leaves a truncated archive), and a ``checksums``
member maps every array name to its CRC-32C.  :func:`load_at_matrix`
verifies those checksums and raises
:class:`~repro.errors.IntegrityError` on a mismatch; unreadable input —
truncation, garbage, a flipped byte in the compressed stream — raises a
clear :class:`~repro.errors.ParseError` instead of an opaque numpy
error.  Version-1 archives (no checksums) still load.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..config import SystemConfig
from ..core.atmatrix import ATMatrix
from ..core.tile import Tile
from ..errors import IntegrityError, ParseError
from ..ioutil import atomic_write, crc32c
from ..kinds import StorageKind
from .csr import CSRMatrix
from .dense import DenseMatrix

#: Archive format version (bumped on incompatible layout changes).
FORMAT_VERSION = 2

#: Versions :func:`load_at_matrix` accepts (v1 predates checksums).
SUPPORTED_VERSIONS = frozenset({1, 2})


def _array_crc(array: np.ndarray) -> int:
    return crc32c(np.ascontiguousarray(array).tobytes())


def save_at_matrix(matrix: ATMatrix, target: str | Path | BinaryIO) -> None:
    """Serialize an AT Matrix (tiles + config) to an ``.npz`` archive.

    Path targets are written atomically; a ``.npz`` suffix is appended
    when missing (mirroring ``np.savez``).  Every array member's
    CRC-32C is stored in the ``checksums`` member.
    """
    header = np.array(
        [
            [
                tile.row0,
                tile.col0,
                tile.rows,
                tile.cols,
                1 if tile.kind is StorageKind.DENSE else 0,
                tile.numa_node,
            ]
            for tile in matrix.tiles
        ],
        dtype=np.int64,
    ).reshape(len(matrix.tiles), 6)
    config = matrix.config
    assert config.b_atomic is not None
    meta = np.array(
        [
            FORMAT_VERSION,
            matrix.rows,
            matrix.cols,
            config.llc_bytes,
            config.alpha,
            config.beta,
            config.b_atomic,
            config.dense_element_bytes,
            config.sparse_element_bytes,
        ],
        dtype=np.int64,
    )
    arrays: dict[str, np.ndarray] = {"meta": meta, "tiles": header}
    for i, tile in enumerate(matrix.tiles):
        if isinstance(tile.data, DenseMatrix):
            arrays[f"dense_{i}"] = tile.data.array
        else:
            arrays[f"indptr_{i}"] = tile.data.indptr
            arrays[f"indices_{i}"] = tile.data.indices
            arrays[f"values_{i}"] = tile.data.values
    checksums = {name: _array_crc(array) for name, array in arrays.items()}
    arrays["checksums"] = np.array(json.dumps(checksums))
    if isinstance(target, (str, Path)):
        path = Path(target)
        if path.suffix != ".npz":  # np.savez appends it; keep that contract
            path = path.with_name(path.name + ".npz")
        with atomic_write(path) as handle:
            np.savez_compressed(handle, **arrays)
    else:
        np.savez_compressed(target, **arrays)


def read_archive_arrays(
    source: str | Path | BinaryIO,
) -> tuple[dict[str, np.ndarray], dict[str, int] | None]:
    """Raw archive members plus the stored checksum map (``None`` on v1).

    Low-level accessor shared by :func:`load_at_matrix` and the deep
    verifier (:func:`repro.resilience.integrity.verify_archive`), which
    must inspect payloads without trusting any constructor validation.
    Propagates the underlying read errors unwrapped.
    """
    arrays: dict[str, np.ndarray] = {}
    checksums: dict[str, int] | None = None
    with np.load(source, allow_pickle=False) as archive:
        for name in archive.files:
            if name == "checksums":
                checksums = json.loads(str(archive[name][()]))
            else:
                arrays[name] = archive[name]
    return arrays, checksums


def load_at_matrix(source: str | Path | BinaryIO) -> ATMatrix:
    """Restore an AT Matrix saved with :func:`save_at_matrix`.

    Raises :class:`ParseError` for unreadable or truncated input and
    :class:`IntegrityError` when a version-2 archive's content does not
    match its stored checksums.
    """
    try:
        arrays, checksums = read_archive_arrays(source)
    except FileNotFoundError:
        raise
    except (OSError, EOFError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise ParseError(f"not a readable AT Matrix archive: {exc}") from exc
    try:
        meta = arrays["meta"]
        header = arrays["tiles"]
    except KeyError as exc:
        raise ParseError(f"not an AT Matrix archive: missing {exc}") from exc
    if len(meta) < 9:
        raise ParseError("not an AT Matrix archive: truncated meta member")
    if int(meta[0]) not in SUPPORTED_VERSIONS:
        raise ParseError(
            f"unsupported AT Matrix archive version {int(meta[0])}"
            f" (supported: {sorted(SUPPORTED_VERSIONS)})"
        )
    if checksums is not None:
        mismatched = sorted(
            name
            for name, expected in checksums.items()
            if name not in arrays or _array_crc(arrays[name]) != expected
        )
        if mismatched:
            raise IntegrityError(
                "AT Matrix archive failed its CRC-32C verification "
                f"(corrupt member(s): {', '.join(mismatched)})"
            )
    rows, cols = int(meta[1]), int(meta[2])
    config = SystemConfig(
        llc_bytes=int(meta[3]),
        alpha=int(meta[4]),
        beta=int(meta[5]),
        b_atomic=int(meta[6]),
        dense_element_bytes=int(meta[7]),
        sparse_element_bytes=int(meta[8]),
    )
    tiles = []
    try:
        for i, (row0, col0, t_rows, t_cols, is_dense, node) in enumerate(header):
            if is_dense:
                payload: CSRMatrix | DenseMatrix = DenseMatrix(
                    arrays[f"dense_{i}"], copy=False
                )
                kind = StorageKind.DENSE
            else:
                payload = CSRMatrix(
                    int(t_rows),
                    int(t_cols),
                    arrays[f"indptr_{i}"],
                    arrays[f"indices_{i}"],
                    arrays[f"values_{i}"],
                )
                kind = StorageKind.SPARSE
            tiles.append(
                Tile(
                    int(row0),
                    int(col0),
                    int(t_rows),
                    int(t_cols),
                    kind,
                    payload,
                    numa_node=int(node),
                )
            )
    except KeyError as exc:
        raise ParseError(
            f"not an AT Matrix archive: missing payload member {exc}"
        ) from exc
    return ATMatrix(rows, cols, config, tiles)
