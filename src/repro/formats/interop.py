"""Interoperability with scipy.sparse and numpy.

These adapters let a downstream user feed existing scipy/numpy data into
the AT Matrix pipeline (and get it back out) without touching internal
formats.  scipy is an *optional* dependency: the functions that need it
raise a clear ImportError when it is missing; the library core never
imports it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix
from .csr import CSRMatrix

if TYPE_CHECKING:  # pragma: no cover
    import scipy.sparse


def _require_scipy() -> Any:
    try:
        import scipy.sparse as sparse
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise ImportError(
            "scipy is required for scipy.sparse interop; install scipy or "
            "use COOMatrix/CSRMatrix constructors directly"
        ) from exc
    return sparse


def from_scipy(matrix: scipy.sparse.spmatrix) -> COOMatrix:
    """Convert any scipy.sparse matrix into a COO staging matrix."""
    _require_scipy()
    coo = matrix.tocoo()
    return COOMatrix(
        coo.shape[0],
        coo.shape[1],
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        coo.data.astype(np.float64),
    )


def csr_from_scipy(matrix: scipy.sparse.spmatrix) -> CSRMatrix:
    """Convert any scipy.sparse matrix into the library's CSR format."""
    sparse = _require_scipy()
    csr = sparse.csr_matrix(matrix)
    csr.sum_duplicates()
    csr.sort_indices()
    return CSRMatrix(
        csr.shape[0],
        csr.shape[1],
        csr.indptr.astype(np.int64),
        csr.indices.astype(np.int64),
        csr.data.astype(np.float64),
    )


def to_scipy_coo(matrix: COOMatrix) -> scipy.sparse.coo_matrix:
    """Export a COO staging matrix as ``scipy.sparse.coo_matrix``."""
    sparse = _require_scipy()
    return sparse.coo_matrix(
        (matrix.values, (matrix.row_ids, matrix.col_ids)), shape=matrix.shape
    )


def to_scipy_csr(matrix: CSRMatrix) -> scipy.sparse.csr_matrix:
    """Export the library's CSR format as ``scipy.sparse.csr_matrix``."""
    sparse = _require_scipy()
    return sparse.csr_matrix(
        (matrix.values, matrix.indices, matrix.indptr), shape=matrix.shape
    )


def from_numpy(array: np.ndarray) -> COOMatrix:
    """Stage a dense numpy array (non-zeros extracted)."""
    array = np.asarray(array)
    if array.ndim != 2:
        raise FormatError(f"expected a 2-D array, got ndim={array.ndim}")
    return COOMatrix.from_dense(array)
