"""ELLPACK (ELL) sparse format.

One of the alternative representations the paper surveys (section V-A:
"The data representations used are either CSR, ELLPACK storage (ELL),
the coordinate storage format (COO), or blocked representations").  ELL
pads every row to the maximum row width, storing column ids and values
in dense ``rows x width`` arrays — great for vector units when row
lengths are even, wasteful when one row is much longer than the rest.

Provided so the SpMV format comparison that motivated the paper's choice
of CSR can be reproduced (see ``benchmarks/bench_spmv_formats.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError, ShapeError
from .csr import CSRMatrix

#: Column-id sentinel for padding slots.
PAD = -1


class ELLMatrix:
    """ELLPACK storage: fixed-width padded rows."""

    __slots__ = ("rows", "cols", "indices", "data")

    def __init__(
        self,
        rows: int,
        cols: int,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        self.rows = int(rows)
        self.cols = int(cols)
        self.indices = np.array(indices, dtype=np.int64)
        self.data = np.array(data, dtype=np.float64)
        if check:
            self._validate()

    def _validate(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ShapeError(f"dimensions must be positive, got {self.shape}")
        if self.indices.shape != self.data.shape:
            raise FormatError("indices and data must have identical shapes")
        if self.indices.ndim != 2 or self.indices.shape[0] != self.rows:
            raise FormatError(
                f"expected ({self.rows}, width) arrays, got {self.indices.shape}"
            )
        valid = self.indices != PAD
        if valid.any():
            cols_used = self.indices[valid]
            if cols_used.min() < 0 or cols_used.max() >= self.cols:
                raise FormatError("column indices outside matrix width")
        if ((~valid) & (self.data != 0.0)).any():
            raise FormatError("padding slots must hold zero values")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_csr(cls, matrix: CSRMatrix) -> ELLMatrix:
        """Convert from CSR, padding to the maximum row width."""
        row_nnz = matrix.row_nnz()
        width = int(row_nnz.max()) if matrix.nnz else 0
        indices = np.full((matrix.rows, max(width, 0)), PAD, dtype=np.int64)
        data = np.zeros((matrix.rows, max(width, 0)), dtype=np.float64)
        for row in range(matrix.rows):
            start, end = matrix.indptr[row], matrix.indptr[row + 1]
            count = end - start
            indices[row, :count] = matrix.indices[start:end]
            data[row, :count] = matrix.values[start:end]
        return cls(matrix.rows, matrix.cols, indices, data, check=False)

    # -- properties ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.rows, self.cols

    @property
    def width(self) -> int:
        """Padded row width (max nnz per row)."""
        return self.indices.shape[1]

    @property
    def nnz(self) -> int:
        return int((self.indices != PAD).sum())

    def memory_bytes(self) -> int:
        """Footprint including padding: 16 bytes per slot (id + value)."""
        return self.indices.size * 16

    @property
    def padding_fraction(self) -> float:
        """Share of slots wasted on padding."""
        if not self.indices.size:
            return 0.0
        return 1.0 - self.nnz / self.indices.size

    # -- operations ----------------------------------------------------------
    def spmv(self, vector: np.ndarray) -> np.ndarray:
        """``y = A @ x``: fully vectorized over the padded arrays."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if len(vector) != self.cols:
            raise ShapeError(f"vector length {len(vector)} != cols {self.cols}")
        if not self.indices.size:
            return np.zeros(self.rows)
        gathered = vector[np.where(self.indices == PAD, 0, self.indices)]
        return (self.data * gathered).sum(axis=1)

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (padding dropped)."""
        valid = self.indices != PAD
        rows = np.repeat(np.arange(self.rows, dtype=np.int64), valid.sum(axis=1))
        return CSRMatrix.from_arrays_unsorted(
            self.rows, self.cols, rows, self.indices[valid], self.data[valid],
            sum_duplicates=False,
        )

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    def __repr__(self) -> str:
        return (
            f"ELLMatrix(shape={self.shape}, width={self.width}, "
            f"padding={self.padding_fraction:.1%})"
        )
