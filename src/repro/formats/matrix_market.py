"""Matrix Market (.mtx) reader and writer.

Supports the subset of the format the sparse-matrix community (and the
Florida/SuiteSparse collection the paper draws on) actually uses:

* ``matrix coordinate real|integer|pattern general|symmetric|skew-symmetric``
* ``matrix array real|integer general``

Coordinate entries are 1-based in the file and converted to 0-based
:class:`~repro.formats.coo.COOMatrix` coordinates.  Symmetric and
skew-symmetric matrices are expanded to their full (general) form on read,
matching how multiplication code expects to consume them.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import ParseError
from ..ioutil import atomic_write
from .coo import COOMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_VALID_FIELDS = {"real", "integer", "pattern"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source: str | Path | TextIO) -> COOMatrix:
    """Parse a Matrix Market file (path or open text stream) into COO."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read_stream(handle)
    return _read_stream(source)


def write_matrix_market(
    matrix: COOMatrix, target: str | Path | TextIO, *, comment: str = ""
) -> None:
    """Serialize a COO matrix as ``matrix coordinate real general``.

    Path targets are written atomically (temp file + rename), so an
    interrupted export never leaves a truncated ``.mtx`` behind.
    """
    if isinstance(target, (str, Path)):
        with atomic_write(target, mode="w", encoding="utf-8") as handle:
            _write_stream(matrix, handle, comment)
    else:
        _write_stream(matrix, target, comment)


def loads(text: str) -> COOMatrix:
    """Parse Matrix Market content from a string."""
    return _read_stream(io.StringIO(text))


def dumps(matrix: COOMatrix, *, comment: str = "") -> str:
    """Serialize a COO matrix to a Matrix Market string."""
    buffer = io.StringIO()
    _write_stream(matrix, buffer, comment)
    return buffer.getvalue()


def _read_stream(stream: TextIO) -> COOMatrix:
    header = stream.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise ParseError(f"missing {_HEADER_PREFIX} banner")
    parts = header.strip().split()
    if len(parts) != 5 or parts[1] != "matrix":
        raise ParseError(f"malformed banner: {header.strip()!r}")
    layout, field, symmetry = parts[2], parts[3].lower(), parts[4].lower()
    if field not in _VALID_FIELDS:
        raise ParseError(f"unsupported field type {field!r}")
    if symmetry not in _VALID_SYMMETRIES:
        raise ParseError(f"unsupported symmetry {symmetry!r}")
    if layout == "coordinate":
        return _read_coordinate(stream, field, symmetry)
    if layout == "array":
        if symmetry != "general":
            raise ParseError("array layout only supported with general symmetry")
        return _read_array(stream, field)
    raise ParseError(f"unsupported layout {layout!r}")


def _next_data_line(stream: TextIO) -> str:
    for line in stream:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            return stripped
    raise ParseError("unexpected end of file")


def _read_coordinate(stream: TextIO, field: str, symmetry: str) -> COOMatrix:
    sizes = _next_data_line(stream).split()
    if len(sizes) != 3:
        raise ParseError(f"expected 'rows cols nnz' size line, got {sizes!r}")
    try:
        rows, cols, nnz = (int(token) for token in sizes)
    except ValueError as exc:
        raise ParseError(f"non-integer size line: {sizes!r}") from exc
    row_ids = np.empty(nnz, dtype=np.int64)
    col_ids = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=np.float64)
    for i in range(nnz):
        tokens = _next_data_line(stream).split()
        expected = 2 if field == "pattern" else 3
        if len(tokens) < expected:
            raise ParseError(f"entry {i + 1}: expected {expected} tokens, got {tokens!r}")
        try:
            row_ids[i] = int(tokens[0]) - 1
            col_ids[i] = int(tokens[1]) - 1
            values[i] = 1.0 if field == "pattern" else float(tokens[2])
        except ValueError as exc:
            raise ParseError(f"entry {i + 1}: malformed tokens {tokens!r}") from exc
    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = row_ids != col_ids
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirrored_rows = np.concatenate([row_ids, col_ids[off_diag]])
        mirrored_cols = np.concatenate([col_ids, row_ids[off_diag]])
        values = np.concatenate([values, sign * values[off_diag]])
        row_ids, col_ids = mirrored_rows, mirrored_cols
    return COOMatrix(rows, cols, row_ids, col_ids, values)


def _read_array(stream: TextIO, field: str) -> COOMatrix:
    sizes = _next_data_line(stream).split()
    if len(sizes) != 2:
        raise ParseError(f"expected 'rows cols' size line, got {sizes!r}")
    rows, cols = int(sizes[0]), int(sizes[1])
    data = np.empty(rows * cols, dtype=np.float64)
    for i in range(rows * cols):
        token = _next_data_line(stream)
        try:
            data[i] = float(token.split()[0])
        except ValueError as exc:
            raise ParseError(f"array entry {i + 1}: malformed value {token!r}") from exc
    # Matrix Market array layout is column-major.
    dense = data.reshape((cols, rows)).T
    return COOMatrix.from_dense(dense)


def _write_stream(matrix: COOMatrix, stream: TextIO, comment: str) -> None:
    canonical = matrix.sum_duplicates()
    stream.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
    for line in comment.splitlines():
        stream.write(f"% {line}\n")
    stream.write(f"{canonical.rows} {canonical.cols} {canonical.nnz}\n")
    for row, col, value in zip(
        canonical.row_ids, canonical.col_ids, canonical.values, strict=True
    ):
        # repr of a Python float is the shortest exact decimal form.
        stream.write(f"{row + 1} {col + 1} {float(value)!r}\n")
