"""Structured failure accounting for resilient ATMULT runs.

Both execution reports (:class:`~repro.core.atmult.MultiplyReport` and
:class:`~repro.core.parallel.ParallelReport`) carry a
:class:`FailureReport` describing what went wrong and how it was
handled: per-pair outcomes plus aggregate counters.  The invariant the
resilience layer maintains is that every *raising* fault is accounted
for exactly once::

    raising faults == retries + degradations + failures

(:class:`~repro.resilience.faults.FaultPlan.raising_count` gives the
left-hand side when a seeded plan is active).  Non-raising faults show
up separately: stalls as ``deadline_violations`` (when a task deadline
is configured) and silent corruptions as ``fallbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class PairOutcome:
    """Execution outcome of one tile-row/tile-column pair task."""

    pair: tuple[int, int]
    #: total attempts, including degradation re-runs
    attempts: int = 0
    #: re-attempts after a transient failure
    retries: int = 0
    #: memory-pressure events absorbed by degrading this pair
    degradations: int = 0
    #: attempts discarded for exceeding the task deadline
    deadline_violations: int = 0
    #: reference-kernel re-executions after a guard violation
    fallbacks: int = 0
    #: the final attempt finished over deadline but was accepted
    late: bool = False
    #: the pair exhausted its retry budget
    failed: bool = False
    #: ``repr`` of the final error for failed pairs
    error: str | None = None


@dataclass
class WorkerRecord:
    """Lifecycle of one supervised worker process."""

    worker_id: int
    pid: int | None = None
    #: heartbeats observed by the supervisor
    heartbeats: int = 0
    #: pairs this worker completed
    pairs_completed: int = 0
    #: the worker died (crash, SIGKILL, missed heartbeats, deadline)
    died: bool = False
    #: human-readable cause of death, when it died
    cause: str | None = None


@dataclass
class FailureReport:
    """Aggregate failure statistics of one (possibly resilient) run."""

    #: total pair attempts performed (>= number of pairs)
    attempts: int = 0
    #: transient failures recovered by re-attempting the pair
    retries: int = 0
    #: memory-pressure events absorbed by degradation
    degradations: int = 0
    #: attempts discarded for exceeding the task deadline
    deadline_violations: int = 0
    #: guard violations recovered via the reference kernel
    fallbacks: int = 0
    #: pairs that exhausted their retry budget
    failures: int = 0
    #: pairs restored from a checkpoint journal instead of re-executed
    pairs_resumed: int = 0
    #: supervised worker processes that died mid-run
    worker_deaths: int = 0
    #: pairs reassigned to a surviving worker after their worker died
    pairs_reassigned: int = 0
    #: pairs quarantined after repeatedly killing their worker
    pairs_quarantined: int = 0
    #: per-worker lifecycle records (process execution only)
    workers: dict[int, WorkerRecord] = field(default_factory=dict)
    #: per-pair outcome details (only pairs that needed resilience, plus failures)
    pair_outcomes: dict[tuple[int, int], PairOutcome] = field(default_factory=dict)
    #: ``[(pair, exception), ...]`` captured when running without a policy
    pair_errors: list[tuple[tuple[int, int], BaseException]] = field(
        default_factory=list
    )

    @property
    def handled(self) -> int:
        """Faults absorbed without failing the run."""
        return self.retries + self.degradations + self.fallbacks

    @property
    def clean(self) -> bool:
        """True when the run needed no resilience at all."""
        return not (
            self.retries
            or self.degradations
            or self.deadline_violations
            or self.fallbacks
            or self.failures
            or self.worker_deaths
            or self.pairs_quarantined
            or self.pair_errors
        )

    # Concurrent callers serialize these mutators externally: threaded
    # retries go through ResilientPairRunner._finish (which holds its
    # _lock) or the executor's busy_lock, and the supervisor's dispatch
    # loop is the sole writer of its report.  The report itself stays a
    # plain value object so it pickles cleanly across process shards.
    def record_error(self, pair: tuple[int, int], error: BaseException) -> None:
        self.pair_errors.append((pair, error))  # repro-lint: disable=RPR012

    def merge_outcome(self, outcome: PairOutcome) -> None:
        """Fold one pair's outcome into the aggregate counters."""
        self.attempts += outcome.attempts  # repro-lint: disable=RPR012
        self.retries += outcome.retries  # repro-lint: disable=RPR012
        self.degradations += outcome.degradations  # repro-lint: disable=RPR012
        self.deadline_violations += (  # repro-lint: disable=RPR012
            outcome.deadline_violations
        )
        self.fallbacks += outcome.fallbacks  # repro-lint: disable=RPR012
        if outcome.failed:
            self.failures += 1  # repro-lint: disable=RPR012
        if (
            outcome.retries
            or outcome.degradations
            or outcome.deadline_violations
            or outcome.fallbacks
            or outcome.failed
            or outcome.late
        ):
            self.pair_outcomes[outcome.pair] = outcome  # repro-lint: disable=RPR012

    def summary(self) -> str:
        """One-line human-readable digest."""
        resumed = f", {self.pairs_resumed} pairs resumed" if self.pairs_resumed else ""
        if self.clean:
            return (
                f"clean run ({self.attempts} attempts{resumed}, "
                "no faults handled)"
            )
        parts = [f"{self.attempts} attempts"]
        if self.pairs_resumed:
            parts.append(f"{self.pairs_resumed} pairs resumed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.degradations:
            parts.append(f"{self.degradations} degradations")
        if self.deadline_violations:
            parts.append(f"{self.deadline_violations} deadline violations")
        if self.fallbacks:
            parts.append(f"{self.fallbacks} reference fallbacks")
        if self.worker_deaths:
            parts.append(f"{self.worker_deaths} worker deaths")
        if self.pairs_reassigned:
            parts.append(f"{self.pairs_reassigned} pairs reassigned")
        if self.pairs_quarantined:
            parts.append(f"{self.pairs_quarantined} pairs quarantined")
        if self.failures:
            parts.append(f"{self.failures} failed pairs")
        if self.pair_errors:
            parts.append(f"{len(self.pair_errors)} captured errors")
        return ", ".join(parts)


def aggregate_message(pair_errors: list[tuple[Any, BaseException]], total: int) -> str:
    """Message for an aggregated :class:`~repro.errors.TaskFailedError`."""
    failed = len(pair_errors)
    shown = ", ".join(
        f"{pair}: {type(error).__name__}" for pair, error in pair_errors[:4]
    )
    suffix = ", ..." if failed > 4 else ""
    return f"{failed} of {total} pair tasks failed ({shown}{suffix})"
