"""Graceful degradation of ATMULT under memory pressure.

When :class:`~repro.errors.MemoryLimitError` fires mid-run — a real
budget violation detected while materializing tiles, or a simulated
spike injected by a fault plan — the run should not abort: paper
section III-E's water-level machinery already knows how to trade
density for memory.  :class:`DegradationState` keeps the shared,
mutable view of that trade-off during one multiplication:

* the current effective write threshold (starts at the value chosen up
  front by :func:`~repro.density.water_level.water_level_threshold`);
* the *remaining* estimated histogram — the product's block-density
  estimate with regions of already-materialized pairs zeroed out;
* the bytes already committed to finished tiles.

``degrade()`` re-runs the water-level sweep on the remaining histogram
against the remaining budget and installs the resulting threshold; when
that does not strictly raise the level (or no real limit is set), it
escalates past the least-dense block that is still eligible for dense
storage, so every degradation step demotes at least one future dense
target to sparse.  The failing pair itself is re-run with its
accumulator demoted to sparse by the retry layer.  After enough steps
the threshold reaches infinity and every remaining target is sparse —
the sparsest layout the engine has; if even that violates the SLA, the
end-of-run enforcement raises as before.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from ..config import SystemConfig
from ..density.map import DensityMap
from ..density.water_level import water_level_threshold
from ..errors import MemoryLimitError
from ..observe import session as observe_session


class DegradationState:
    """Shared memory-pressure state of one resilient multiplication."""

    def __init__(
        self,
        estimate: DensityMap | None,
        memory_limit_bytes: float | None,
        config: SystemConfig,
        initial_threshold: float,
    ) -> None:
        self._config = config
        if memory_limit_bytes is None or math.isinf(memory_limit_bytes):
            self._limit: float | None = None
        else:
            self._limit = float(memory_limit_bytes)
        self._estimate = estimate
        self._remaining = estimate.grid.copy() if estimate is not None else None
        self._completed_bytes = 0.0
        self._threshold = float(initial_threshold)
        self._lock = threading.Lock()
        #: number of degradation steps performed
        self.degradations = 0

    @property
    def threshold(self) -> float:
        """The current effective write threshold."""
        with self._lock:
            return self._threshold

    @property
    def completed_bytes(self) -> float:
        with self._lock:
            return self._completed_bytes

    @property
    def exhausted(self) -> bool:
        """True once every remaining target is forced sparse."""
        with self._lock:
            return math.isinf(self._threshold)

    def note_completed(
        self, r0: int, r1: int, c0: int, c1: int, nbytes: float
    ) -> None:
        """Mark a pair region as materialized, removing it from the histogram."""
        with self._lock:
            self._completed_bytes += nbytes
            if self._remaining is None or self._estimate is None:
                return
            block = self._estimate.block
            br1 = -(-r1 // block)  # ceil division
            bc1 = -(-c1 // block)
            self._remaining[r0 // block : br1, c0 // block : bc1] = 0.0

    def over_budget(self, extra_bytes: float) -> bool:
        """Would committing ``extra_bytes`` more exceed the memory limit?"""
        if self._limit is None:
            return False
        with self._lock:
            return self._completed_bytes + extra_bytes > self._limit

    def degrade(self) -> float:
        """Raise the write threshold one step; returns the new threshold.

        Strictly monotone: each call either adopts a higher water level
        recomputed from the remaining histogram and budget, or escalates
        past the least-dense still-dense-eligible block.
        """
        with self._lock:
            self.degradations += 1
            current = self._threshold
            if math.isinf(current):
                return current
            candidate = -math.inf
            if (
                self._remaining is not None
                and self._estimate is not None
                and self._limit is not None
            ):
                remaining_budget = self._limit - self._completed_bytes
                if remaining_budget > 0:
                    remaining_map = DensityMap(
                        self._estimate.rows,
                        self._estimate.cols,
                        self._estimate.block,
                        self._remaining,
                    )
                    try:
                        level = water_level_threshold(
                            remaining_map, remaining_budget, self._config
                        )
                        candidate = level.threshold
                    except MemoryLimitError:
                        candidate = math.inf
                else:
                    candidate = math.inf
            if candidate <= current:
                candidate = self._escalate_locked(current)
            self._threshold = float(candidate)
            observe_session.gauge("degradation.threshold").set(
                self._threshold if math.isfinite(self._threshold) else -1.0
            )
            observe_session.counter("degradation.steps").inc()
            return self._threshold

    def _escalate_locked(self, current: float) -> float:
        """The lowest threshold strictly above ``current`` that demotes
        at least one remaining dense-eligible block (or ``inf``)."""
        if self._remaining is None:
            return math.inf
        eligible = self._remaining[self._remaining >= current]
        if eligible.size == 0:
            return math.inf
        lowest = float(eligible.min())
        escalated = float(np.nextafter(lowest, np.inf))
        return escalated if escalated > current else math.inf
