"""The supervised multiprocess shard executor.

:func:`run_supervised` is the ``execution="processes"`` backend of
:func:`~repro.engine.executor.execute_plan`: it shards the planned
tile pairs across OS worker processes (one shard per simulated socket,
:func:`~repro.engine.shard.assign_shards`), ships the operands through
the v2 archive serialization, and supervises the workers with per-worker
heartbeats, per-pair dispatch deadlines and liveness checks.

This is the **only** module in ``src/repro`` allowed to import
``multiprocessing`` (repro-lint rule RPR008): process lifecycle is a
resilience concern, and confining it here keeps every other layer
testable in-process.

Supervision protocol
--------------------
Supervisor → worker: one ``SimpleQueue`` per worker carrying
``((ti, tj), dispatch_attempt)`` tasks and a ``None`` shutdown sentinel.
Only the supervisor writes these queues and only the owning worker reads
them, so a SIGKILLed worker cannot corrupt anybody else's channel.

Worker → supervisor: **files only** — heartbeat files, per-pair done
files, and the shared checkpoint journal, all atomically written.  A
worker flushes a pair's journal record durably *before* writing its done
file, so a result the supervisor adopts can never vanish with its
worker.

Failure handling
----------------
A worker is declared dead when its process exits, its heartbeat file
goes stale, or its current pair exceeds the dispatch deadline (the
latter two get a SIGKILL first).  Unfinished pairs of a dead worker are
reassigned to surviving workers; a pair whose execution killed its
worker twice is *quarantined* — recorded as a failed
:class:`~repro.resilience.report.PairOutcome` instead of retried
forever.  When no workers survive and work remains, a replacement
worker is spawned.  Supervisor-level restarts resume bit-identically
through the :class:`~repro.resilience.checkpoint.CheckpointStore`
journal: recomputing a reassigned pair is deterministic, and adopted
tiles round-trip through the journal's exact float bytes.
"""

from __future__ import annotations

import json
import multiprocessing
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.report import PHASE_MULTIPLY, ParallelReport
from ..core.tile import Tile
from ..errors import OperationCancelledError, TaskFailedError
from ..observe import Observation
from ..observe import session as observe_session
from ..resilience.report import PairOutcome, WorkerRecord, aggregate_message
from .cancel import CancelToken
from .checkpoint import CheckpointStore
from .faults import active_plan
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig
    from ..core.atmatrix import ATMatrix
    from ..cost.model import CostModel
    from ..engine.plan import ExecutionPlan
    from ..engine.shard import PairCoords

__all__ = ["processes_available", "run_supervised"]

_span = observe_session.tracer_span

#: Heartbeats may be late by this factor before a worker counts as hung.
_HEARTBEAT_GRACE = 5.0

#: Default allowance (seconds) for a worker that has not heartbeat
#: *yet*: spawn platforms re-import the world before ``worker_main``
#: runs, and the staleness window alone would bury a slow-starting
#: worker unborn.  Configurable per run via
#: ``MultiplyOptions.startup_grace_seconds`` / ``--startup-grace``.
_STARTUP_GRACE = 10.0

#: A pair that killed its worker this many times is quarantined.
_QUARANTINE_KILLS = 2

#: Supervisor poll cadence (seconds): done files and liveness checks.
_POLL_SECONDS = 0.005


def processes_available() -> bool:
    """Whether this platform can run the multiprocess backend.

    ``multiprocessing`` needs working OS semaphores; platforms without
    them (some containers, WebAssembly builds) raise ``ImportError`` on
    the synchronize module, and callers fall back to threads.
    """
    try:
        import multiprocessing.synchronize  # noqa: F401 — probe only
    except ImportError:  # pragma: no cover - platform-specific
        return False
    return True


class _Worker:
    """Supervisor-side state of one worker process."""

    def __init__(
        self, worker_id: int, process: Any, queue: Any, shard_index: int = 0
    ) -> None:
        self.worker_id = worker_id
        self.process = process
        self.queue = queue
        self.shard_index = shard_index
        self.record = WorkerRecord(worker_id=worker_id, pid=process.pid)
        #: dispatched-but-unconfirmed tasks, oldest first:
        #: ``[coords, dispatch_attempt, head_since]``
        self.in_flight: list[list[Any]] = []
        self.last_beat = 0
        self.last_beat_change = time.monotonic()
        self.sentinel_sent = False

    def alive(self) -> bool:
        return bool(self.process.is_alive())


def run_supervised(
    plan: ExecutionPlan,
    at_a: ATMatrix,
    at_b: ATMatrix,
    *,
    config: SystemConfig,
    cost_model: CostModel,
    resilience: RetryPolicy | None = None,
    obs: Observation | None = None,
    workers: int = 2,
    heartbeat_interval: float = 0.25,
    pair_deadline_seconds: float | None = None,
    checkpoint: CheckpointStore | None = None,
    checkpoint_flush_pairs: int = 1,
    cancel: CancelToken | None = None,
    startup_grace_seconds: float = _STARTUP_GRACE,
) -> tuple[ATMatrix, ParallelReport]:
    """Execute ``plan`` on supervised worker processes.

    Returns the same ``(ATMatrix, ParallelReport)`` shape as the thread
    backend; ``report.failure`` additionally carries ``worker_deaths``,
    ``pairs_reassigned``, ``pairs_quarantined`` and per-worker
    :class:`~repro.resilience.report.WorkerRecord` entries.

    ``checkpoint_flush_pairs`` is accepted for interface parity but the
    journal is flushed after *every* pair here: the journal doubles as
    the worker → supervisor result channel, so durability per pair is
    what makes a worker death lose nothing.

    A tripped ``cancel`` token is observed at the dispatch loop's poll
    cadence: workers are killed, the journal is flushed (already
    per-pair durable) and the run unwinds with
    :class:`~repro.errors.OperationCancelledError`, leaving every
    adopted pair resumable.  ``startup_grace_seconds`` bounds how long
    a fresh worker may take to post its first heartbeat.
    """
    del checkpoint_flush_pairs  # journal-as-IPC forces per-pair flushes
    # Imported here, not at module top: engine.shard pulls in the
    # executor, which lazily imports this module for mode dispatch.
    from ..core.atmatrix import ATMatrix as _ATMatrix
    from ..engine import shard

    worker_count = max(1, int(workers))
    report = ParallelReport(workers=worker_count, observation=obs)
    failure = report.failure
    if obs is not None:
        obs.metrics.gauge("workers").set(worker_count)
    report.pairs = len(plan.pairs)

    with tempfile.TemporaryDirectory(prefix="repro-shard-") as tmp:
        run_dir = Path(tmp)
        store = checkpoint if checkpoint is not None else CheckpointStore(
            run_dir / "journal"
        )
        completed: dict[PairCoords, Tile | None] = store.begin(plan)
        for coords in completed:
            failure.pairs_resumed += 1
        pending: list[Any] = [
            pair for pair in plan.pairs if (pair.ti, pair.tj) not in completed
        ]

        parent_plan = active_plan()
        shard_config = shard.ShardConfig(
            config=config,
            cost_model=cost_model,
            resilience=resilience,
            heartbeat_interval=heartbeat_interval,
            journal_dir=str(store.directory),
            fault_spec=parent_plan.spec() if parent_plan is not None else None,
            b_is_a=at_b is at_a,
            startup_grace=startup_grace_seconds,
        )

        start = time.perf_counter()
        done_pairs: dict[PairCoords, dict[str, Any]] = {}
        quarantined: set[PairCoords] = set()
        if pending:
            shard.prepare_run_dir(run_dir, plan, at_a, at_b, shard_config)
            done_pairs, quarantined = _supervise(
                plan, pending, run_dir, store, shard_config, report, obs,
                worker_count, pair_deadline_seconds, cancel,
            )
        report.phase_seconds[PHASE_MULTIPLY] = time.perf_counter() - start

        result_tiles: list[Tile] = []
        for pair in plan.pairs:
            coords = (pair.ti, pair.tj)
            if coords in completed:
                tile = completed[coords]
            elif coords in done_pairs and not done_pairs[coords].get("failed"):
                tile = store.load_pair(coords)
            else:
                continue
            if tile is not None:
                result_tiles.append(tile)

    result = _ATMatrix(plan.shape[0], plan.shape[1], config, result_tiles)
    limit = plan.memory_limit_bytes
    if limit is not None:
        from ..core.atmult import enforce_memory_limit

        enforce_start = time.perf_counter()
        with _span(obs, "memory_limit_enforce"):
            enforce_memory_limit(result, limit)
        report.add_phase("optimize", time.perf_counter() - enforce_start)
    if failure.pair_errors:
        raise TaskFailedError(
            aggregate_message(failure.pair_errors, len(plan.pairs)),
            pair_errors=failure.pair_errors,
            report=report,
        )
    return result, report


def _make_context() -> Any:
    """Fork where possible (workers inherit loaded modules), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _supervise(
    plan: ExecutionPlan,
    pending: list[Any],
    run_dir: Path,
    store: CheckpointStore,
    shard_config: Any,
    report: ParallelReport,
    obs: Observation | None,
    worker_count: int,
    pair_deadline_seconds: float | None,
    cancel: CancelToken | None = None,
) -> tuple[dict[PairCoords, dict[str, Any]], set[PairCoords]]:
    """The dispatch-and-liveness loop; returns (done, quarantined)."""
    from ..engine import shard

    failure = report.failure
    ctx = _make_context()
    shards = shard.assign_shards(pending, worker_count)
    #: pairs killed back into the pool by a worker death, dispatched first
    retry_pool: list[PairCoords] = []
    dispatch_counts: dict[PairCoords, int] = {}
    kill_blame: dict[PairCoords, int] = {}
    done_pairs: dict[PairCoords, dict[str, Any]] = {}
    quarantined: set[PairCoords] = set()
    total = len(pending)
    worker_flushes: dict[int, int] = {}
    worker_conversions: dict[int, int] = {}
    next_worker_id = 0
    workers: dict[int, _Worker] = {}

    def spawn_worker(shard_index: int) -> _Worker:
        nonlocal next_worker_id
        worker_id = next_worker_id
        next_worker_id += 1
        queue = ctx.SimpleQueue()
        process = ctx.Process(
            target=shard.worker_main,
            args=(worker_id, str(run_dir), queue),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        process.start()
        worker = _Worker(worker_id, process, queue, shard_index)
        worker.record.pid = process.pid
        workers[worker_id] = worker
        failure.workers[worker_id] = worker.record
        return worker

    def next_task(worker: _Worker) -> PairCoords | None:
        if retry_pool:
            return retry_pool.pop(0)
        # A worker starts on its own socket's shard and steals from the
        # others once that drains (replacements steal from everywhere).
        own = worker.shard_index % worker_count
        order = [own] + [i for i in range(worker_count) if i != own]
        for index in order:
            if shards[index]:
                return shards[index].pop(0)
        return None

    def dispatch(worker: _Worker) -> bool:
        coords = next_task(worker)
        if coords is None:
            return False
        dispatch_counts[coords] = dispatch_counts.get(coords, 0) + 1
        attempt = dispatch_counts[coords]
        head_since = time.monotonic() if not worker.in_flight else None
        worker.in_flight.append([coords, attempt, head_since])
        with _span(
            obs, "shard.dispatch", "shard",
            {"worker": worker.worker_id, "ti": coords[0], "tj": coords[1],
             "attempt": attempt} if obs is not None else None,
        ):
            worker.queue.put((coords, attempt))
        return True

    def adopt_done(worker: _Worker, payload: dict[str, Any]) -> None:
        coords = (int(payload["pair"][0]), int(payload["pair"][1]))
        done_pairs[coords] = payload
        outcome = payload.get("outcome") or {}
        failure.merge_outcome(
            PairOutcome(
                pair=coords,
                attempts=int(outcome.get("attempts", 1)),
                retries=int(outcome.get("retries", 0)),
                degradations=int(outcome.get("degradations", 0)),
                deadline_violations=int(outcome.get("deadline_violations", 0)),
                fallbacks=int(outcome.get("fallbacks", 0)),
                late=bool(outcome.get("late", False)),
                failed=bool(outcome.get("failed", False)),
                error=outcome.get("error"),
            )
        )
        parent_plan = active_plan()
        if parent_plan is not None and payload.get("events"):
            parent_plan.absorb_wire(payload["events"])
        busy = float(payload.get("busy_seconds", 0.0))
        lane = f"shard-{worker.worker_id}"
        report.worker_busy_seconds[lane] = (
            report.worker_busy_seconds.get(lane, 0.0) + busy
        )
        worker_flushes[worker.worker_id] = int(payload.get("flushes", 0))
        worker_conversions[worker.worker_id] = int(payload.get("conversions", 0))
        if obs is not None:
            obs.metrics.counter(f"worker.busy_seconds.{lane}").inc(busy)
        if payload.get("failed"):
            failure.record_error(
                coords, TaskFailedError(str(payload.get("error")), pair=coords)
            )
        else:
            report.products += int(payload.get("products", 0))
            report.pairs_executed += 1
            report.merge_kernel_counts(
                {str(k): int(v) for k, v in payload.get("kernel_counts", {}).items()}
            )
            worker.record.pairs_completed += 1

    def read_done(coords: PairCoords) -> dict[str, Any] | None:
        path = shard.done_file(run_dir, coords)
        if not path.exists():
            return None
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):  # pragma: no cover - torn read impossible
            return None                # (atomic writes), racing unlink only
        path.unlink(missing_ok=True)
        return loaded if isinstance(loaded, dict) else None

    def check_heartbeat(worker: _Worker) -> bool:
        """Refresh heartbeat state; False when the worker looks hung."""
        path = shard.heartbeat_file(run_dir, worker.worker_id)
        if path.exists():
            try:
                beat = int(
                    json.loads(path.read_text(encoding="utf-8")).get("beat", 0)
                )
            except (OSError, ValueError):
                beat = worker.last_beat
            if beat != worker.last_beat:
                worker.last_beat = beat
                worker.last_beat_change = time.monotonic()
                worker.record.heartbeats = beat
                if obs is not None:
                    obs.tracer.instant(
                        "worker.heartbeat", "shard",
                        {"worker": worker.worker_id, "beat": beat},
                    )
        stale_after = max(
            _HEARTBEAT_GRACE * shard_config.heartbeat_interval, 1.0
        )
        if worker.last_beat == 0:
            # No first beat yet: the worker is still importing/starting.
            stale_after = max(stale_after, shard_config.startup_grace)
        return time.monotonic() - worker.last_beat_change <= stale_after

    def bury(worker: _Worker, cause: str) -> None:
        """Account a dead worker and reassign or quarantine its pairs."""
        if worker.alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)
        worker.record.died = True
        worker.record.cause = cause
        failure.worker_deaths += 1
        observe_session.counter("supervisor.worker_deaths").inc()
        blamed = False
        for coords, _attempt, _head in list(worker.in_flight):
            late = read_done(coords)
            if late is not None:
                # The pair actually finished (and flushed) before death.
                adopt_done(worker, late)
                continue
            if not blamed:
                # Oldest unfinished task is the one that was executing.
                blamed = True
                kill_blame[coords] = kill_blame.get(coords, 0) + 1
                if kill_blame[coords] >= _QUARANTINE_KILLS:
                    quarantined.add(coords)
                    failure.pairs_quarantined += 1
                    observe_session.counter("supervisor.pairs_quarantined").inc()
                    error = TaskFailedError(
                        f"pair {coords} quarantined after killing "
                        f"{kill_blame[coords]} workers",
                        pair=coords,
                    )
                    failure.merge_outcome(
                        PairOutcome(
                            pair=coords,
                            attempts=dispatch_counts.get(coords, 0),
                            failed=True,
                            error=repr(error),
                        )
                    )
                    failure.record_error(coords, error)
                    continue
            retry_pool.append(coords)
            failure.pairs_reassigned += 1
            observe_session.counter("supervisor.pairs_reassigned").inc()
            with _span(
                obs, "shard.reassign", "shard",
                {"worker": worker.worker_id, "ti": coords[0], "tj": coords[1]}
                if obs is not None else None,
            ):
                pass
        worker.in_flight.clear()
        del workers[worker.worker_id]

    def remaining() -> int:
        return total - len(done_pairs) - len(quarantined)

    crew = [spawn_worker(index) for index in range(worker_count)]
    try:
        for worker in crew:
            # Pipeline depth 2: the worker always has the next pair
            # queued, so it never idles on the supervisor's poll cadence.
            dispatch(worker)
            dispatch(worker)
        while remaining() > 0:
            if cancel is not None:
                # Cancellation lands between dispatches: pairs already
                # on a worker finish and are adopted via their durable
                # done files on the *next* run's resume.
                cancel.check()
            now = time.monotonic()
            for worker in list(workers.values()):
                # Adopt results head-first, in dispatch order.
                while worker.in_flight:
                    head = worker.in_flight[0]
                    payload = read_done(head[0])
                    if payload is None:
                        break
                    worker.in_flight.pop(0)
                    if worker.in_flight and worker.in_flight[0][2] is None:
                        worker.in_flight[0][2] = time.monotonic()
                    adopt_done(worker, payload)
                    dispatch(worker)
                if not worker.alive():
                    bury(worker, "process exited")
                    continue
                if not check_heartbeat(worker):
                    bury(
                        worker,
                        f"missed heartbeats for "
                        f"{now - worker.last_beat_change:.2f}s",
                    )
                    continue
                if (
                    pair_deadline_seconds is not None
                    and worker.in_flight
                    and worker.in_flight[0][2] is not None
                    and now - worker.in_flight[0][2] > pair_deadline_seconds
                ):
                    bury(
                        worker,
                        f"pair {worker.in_flight[0][0]} exceeded the "
                        f"{pair_deadline_seconds}s dispatch deadline",
                    )
                    continue
                if not worker.in_flight:
                    dispatch(worker)
            if remaining() > 0 and not workers:
                replacement = spawn_worker(0)
                dispatch(replacement)
                dispatch(replacement)
            time.sleep(_POLL_SECONDS)
    except (KeyboardInterrupt, OperationCancelledError):
        for worker in workers.values():
            worker.process.kill()
        for worker in workers.values():
            worker.process.join(timeout=5.0)
        store.flush()
        report.checkpoint_flushes = sum(worker_flushes.values()) + store.flushes
        raise
    finally:
        for worker in workers.values():
            if not worker.sentinel_sent:
                worker.sentinel_sent = True
                worker.queue.put(None)
        deadline = time.monotonic() + 10.0
        for worker in workers.values():
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.alive():  # pragma: no cover - stuck worker backstop
                worker.process.kill()
                worker.process.join(timeout=5.0)

    store.flush()
    report.conversions = sum(worker_conversions.values())
    report.checkpoint_flushes = sum(worker_flushes.values()) + store.flushes
    return done_pairs, quarantined
