"""Cooperative cancellation tokens with optional deadlines.

A :class:`CancelToken` is the one-way signal a coordinator (the matrix
service worker, a drain handler, a CLI signal handler) hands to a
long-running multiplication.  The execution layers never poll wall-clock
deadlines themselves; they call :meth:`CancelToken.check` at tile-pair
boundaries and let the token decide whether the run should stop — either
because someone called :meth:`CancelToken.cancel` or because the token's
deadline budget expired.

Deadlines are measured against :func:`time.monotonic` captured at
construction, so a token created with ``deadline_seconds=30`` expires 30
seconds later regardless of wall-clock adjustments.  Tokens are
thread-safe: the service's asyncio loop cancels them while executor
threads and the supervisor dispatch loop poll them.
"""

from __future__ import annotations

import threading
import time

from ..errors import DeadlineExceededError, OperationCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """Thread-safe cooperative cancellation flag with an optional deadline.

    Parameters
    ----------
    deadline_seconds:
        Total budget from *now* (monotonic).  ``None`` means no deadline;
        the token only trips via :meth:`cancel`.

    The token is one-way: once cancelled (explicitly or by deadline
    expiry) it never resets.  ``cancelled`` / ``check`` report deadline
    expiry even if nobody called :meth:`cancel`.
    """

    def __init__(self, *, deadline_seconds: float | None = None) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds}"
            )
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason: str | None = None
        self._deadline: float | None = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )

    def cancel(self, reason: str | None = None) -> None:
        """Trip the token.  The first recorded reason wins."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        """True once cancelled explicitly or past the deadline."""
        with self._lock:
            return self._cancelled_locked()

    @property
    def reason(self) -> str | None:
        """The reason recorded by :meth:`cancel` (``None`` for deadline)."""
        with self._lock:
            return self._reason

    @property
    def deadline_expired(self) -> bool:
        """True when the deadline (if any) has passed."""
        with self._lock:
            return self._deadline_expired_locked()

    def remaining(self) -> float | None:
        """Seconds left in the deadline budget (``None`` = unbounded).

        Never negative: an expired deadline reports ``0.0``.
        """
        with self._lock:
            if self._deadline is None:
                return None
            return max(0.0, self._deadline - time.monotonic())

    def check(self) -> None:
        """Raise if the token has tripped; otherwise return.

        Raises :class:`~repro.errors.DeadlineExceededError` when the
        deadline expired and :class:`~repro.errors.OperationCancelledError`
        for explicit cancellation.  Deadline expiry takes precedence so a
        drain-cancelled job whose deadline also lapsed reports the
        stronger condition.
        """
        with self._lock:
            if self._deadline_expired_locked():
                raise DeadlineExceededError(
                    "operation deadline expired", reason=self._reason
                )
            if self._cancelled:
                raise OperationCancelledError(
                    "operation cancelled"
                    + (f": {self._reason}" if self._reason else ""),
                    reason=self._reason,
                )

    def _cancelled_locked(self) -> bool:
        return self._cancelled or self._deadline_expired_locked()

    def _deadline_expired_locked(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline
