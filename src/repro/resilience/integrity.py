"""Deep structural and checksum verification of matrix data at rest.

The executor's result guard (:mod:`repro.resilience.guard`) validates
tiles the moment they are produced; this module is the complementary
*at-rest* verifier for data that has lived outside the process — loaded
archives, checkpoint journals, or long-held in-memory matrices that may
have been corrupted by a buggy kernel or bit rot.  ``repro verify``
drives it from the CLI.

Verification is collecting, not fail-fast: every violation found is
reported as an :class:`IntegrityViolation` with a stable machine-readable
``code``, so one pass over a damaged archive names *all* problems.  The
violation classes:

==================  =====================================================
``csr-indptr``      indptr length/endpoints wrong or not monotone
``csr-index-bounds``  a column index outside ``[0, cols)``
``csr-column-order``  column ids not strictly increasing within a row
``csr-values``      values/indices length mismatch or non-finite value
``dense-nonfinite``   NaN or infinity in a dense payload
``tile-shape``      a tile payload's shape differs from its directory entry
``tile-bounds``     a tile extends outside the matrix bounds
``tile-overlap``    two tiles of one directory overlap (disjointness)
``archive-checksum``  stored CRC-32C does not match the array bytes
``archive-structure`` a required archive member is missing or malformed
``archive-unreadable``  the file cannot be opened or decompressed at all
==================  =====================================================

:func:`verify_at_matrix` / :func:`verify_csr` / :func:`verify_dense`
check live objects; :func:`verify_archive` checks a serialized ``.npz``
without trusting any constructor validation (a corrupted archive must
produce a report, not a stack trace).  :func:`check_integrity` is the
raising wrapper used by loaders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import IntegrityError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..ioutil import crc32c
from ..observe import session as observe_session

__all__ = [
    "IntegrityViolation",
    "check_integrity",
    "verify_archive",
    "verify_at_matrix",
    "verify_csr",
    "verify_dense",
]


@dataclass(frozen=True)
class IntegrityViolation:
    """One provable defect found by the verifier."""

    #: machine-readable violation class (see the module table)
    code: str
    #: human-readable description with the offending values
    message: str
    #: where in the verified object the defect sits (tile index, array name)
    location: str = ""

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.code}{where}: {self.message}"


# ---------------------------------------------------------------------------
# payload verifiers (shared by the live-object and archive paths)
# ---------------------------------------------------------------------------


def _verify_csr_arrays(
    rows: int,
    cols: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    location: str,
) -> list[IntegrityViolation]:
    """CSR invariants over raw arrays (no ``CSRMatrix`` construction)."""
    out: list[IntegrityViolation] = []
    if len(indptr) != rows + 1:
        out.append(
            IntegrityViolation(
                "csr-indptr",
                f"indptr has length {len(indptr)}, expected rows + 1 = {rows + 1}",
                location,
            )
        )
        return out  # row walk below would be meaningless
    if len(indptr) and (indptr[0] != 0 or indptr[-1] != len(indices)):
        out.append(
            IntegrityViolation(
                "csr-indptr",
                f"indptr endpoints ({int(indptr[0])}, {int(indptr[-1])}) != "
                f"(0, nnz={len(indices)})",
                location,
            )
        )
    if np.any(np.diff(indptr) < 0):
        first = int(np.flatnonzero(np.diff(indptr) < 0)[0])
        out.append(
            IntegrityViolation(
                "csr-indptr",
                f"indptr decreases at row {first}",
                location,
            )
        )
        return out  # per-row slices are untrustworthy from here on
    if len(indices) != len(values):
        out.append(
            IntegrityViolation(
                "csr-values",
                f"indices ({len(indices)}) and values ({len(values)}) "
                "have different lengths",
                location,
            )
        )
    elif len(values) and not np.isfinite(values).all():
        bad = int(np.flatnonzero(~np.isfinite(values))[0])
        out.append(
            IntegrityViolation(
                "csr-values",
                f"non-finite stored value at position {bad}",
                location,
            )
        )
    if len(indices):
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= cols:
            out.append(
                IntegrityViolation(
                    "csr-index-bounds",
                    f"column indices span [{lo}, {hi}] outside [0, {cols})",
                    location,
                )
            )
        else:
            # Sorted-within-row invariant; row starts are exempt.
            row_starts = indptr[1:-1]
            row_starts = row_starts[row_starts < len(indices)]
            interior = np.ones(len(indices), dtype=bool)
            interior[row_starts] = False
            broken = (np.diff(indices) <= 0) & interior[1:]
            if np.any(broken):
                position = int(np.flatnonzero(broken)[0]) + 1
                row = int(np.searchsorted(indptr, position, side="right")) - 1
                out.append(
                    IntegrityViolation(
                        "csr-column-order",
                        f"column indices not strictly increasing in row {row}",
                        location,
                    )
                )
    return out


def verify_csr(
    matrix: CSRMatrix, *, location: str = "csr"
) -> list[IntegrityViolation]:
    """Deep-check a CSR payload's structural invariants."""
    return _verify_csr_arrays(
        matrix.rows,
        matrix.cols,
        matrix.indptr,
        matrix.indices,
        matrix.values,
        location,
    )


def verify_dense(
    matrix: DenseMatrix, *, location: str = "dense"
) -> list[IntegrityViolation]:
    """Deep-check a dense payload (finiteness)."""
    if np.isfinite(matrix.array).all():
        return []
    bad = np.argwhere(~np.isfinite(matrix.array))[0]
    return [
        IntegrityViolation(
            "dense-nonfinite",
            f"non-finite value at ({int(bad[0])}, {int(bad[1])})",
            location,
        )
    ]


# ---------------------------------------------------------------------------
# tile directories
# ---------------------------------------------------------------------------


def _verify_directory(
    rows: int,
    cols: int,
    extents: list[tuple[int, int, int, int]],
) -> list[IntegrityViolation]:
    """Bounds and pairwise disjointness of a tile directory.

    ``extents`` holds ``(row0, col0, tile_rows, tile_cols)`` per tile.
    Coverage means every tile lies inside the matrix (regions *without*
    a tile are implicitly zero, so gaps are legal); disjointness means
    no element belongs to two tiles.
    """
    out: list[IntegrityViolation] = []
    for index, (r0, c0, tr, tc) in enumerate(extents):
        if tr <= 0 or tc <= 0 or r0 < 0 or c0 < 0 or r0 + tr > rows or c0 + tc > cols:
            out.append(
                IntegrityViolation(
                    "tile-bounds",
                    f"tile [{r0}:{r0 + tr}, {c0}:{c0 + tc}] outside "
                    f"matrix bounds {rows} x {cols}",
                    f"tile {index}",
                )
            )
    # Sweep in row-major order; only neighbors with overlapping row
    # ranges can collide, which keeps the scan near-linear for the
    # row-aligned directories the partitioner emits.
    order = sorted(range(len(extents)), key=lambda i: (extents[i][0], extents[i][1]))
    for position, i in enumerate(order):
        r0, c0, tr, tc = extents[i]
        for j in order[position + 1 :]:
            s0, d0, sr, sc = extents[j]
            if s0 >= r0 + tr:
                break  # sorted by row0: nothing below can overlap i's rows
            if r0 < s0 + sr and s0 < r0 + tr and c0 < d0 + sc and d0 < c0 + tc:
                out.append(
                    IntegrityViolation(
                        "tile-overlap",
                        f"tiles {i} and {j} overlap: "
                        f"[{r0}:{r0 + tr}, {c0}:{c0 + tc}] vs "
                        f"[{s0}:{s0 + sr}, {d0}:{d0 + sc}]",
                        f"tile {i}",
                    )
                )
    return out


def verify_at_matrix(matrix: Any) -> list[IntegrityViolation]:
    """Deep-check an :class:`~repro.core.atmatrix.ATMatrix`.

    Verifies the tile directory (bounds, disjointness) and every tile
    payload (CSR structure, dense finiteness, shape consistency).
    """
    with observe_session.maybe_span("integrity.verify", attrs={"kind": "at"}):
        violations = _verify_directory(
            matrix.rows,
            matrix.cols,
            [(t.row0, t.col0, t.rows, t.cols) for t in matrix.tiles],
        )
        for index, tile in enumerate(matrix.tiles):
            location = f"tile {index}"
            if tile.data.shape != (tile.rows, tile.cols):
                violations.append(
                    IntegrityViolation(
                        "tile-shape",
                        f"payload shape {tile.data.shape} != directory "
                        f"extent {(tile.rows, tile.cols)}",
                        location,
                    )
                )
                continue
            if isinstance(tile.data, CSRMatrix):
                violations.extend(verify_csr(tile.data, location=location))
            else:
                violations.extend(verify_dense(tile.data, location=location))
        observe_session.counter("integrity.violations").inc(len(violations))
        return violations


# ---------------------------------------------------------------------------
# serialized archives
# ---------------------------------------------------------------------------


def verify_archive(path: str | Path) -> list[IntegrityViolation]:
    """Deep-check a ``save_at_matrix`` archive without trusting loaders.

    Reads the raw arrays, verifies every stored CRC-32C (format v2;
    v1 archives carry none and skip this stage), then re-runs the full
    structural verification on the raw payloads.  An archive that cannot
    be opened at all — truncation, a flipped byte in the compressed
    stream, not a zip — yields a single ``archive-unreadable`` violation
    rather than raising.
    """
    from ..formats.serialize import read_archive_arrays

    with observe_session.maybe_span("integrity.verify", attrs={"kind": "archive"}):
        try:
            arrays, checksums = read_archive_arrays(path)
        except Exception as error:  # noqa: BLE001 — any failure mode is a finding
            observe_session.counter("integrity.violations").inc()
            return [
                IntegrityViolation(
                    "archive-unreadable",
                    f"{type(error).__name__}: {error}",
                    str(path),
                )
            ]
        violations = _verify_archive_checksums(arrays, checksums)
        violations.extend(_verify_archive_structure(arrays))
        observe_session.counter("integrity.violations").inc(len(violations))
        return violations


def _verify_archive_checksums(
    arrays: dict[str, np.ndarray], checksums: dict[str, int] | None
) -> list[IntegrityViolation]:
    if checksums is None:  # format v1: no checksums to verify
        return []
    out: list[IntegrityViolation] = []
    for name, expected in sorted(checksums.items()):
        if name not in arrays:
            out.append(
                IntegrityViolation(
                    "archive-structure",
                    f"checksummed member {name!r} missing from the archive",
                    name,
                )
            )
            continue
        actual = crc32c(arrays[name].tobytes())
        if actual != expected:
            out.append(
                IntegrityViolation(
                    "archive-checksum",
                    f"CRC-32C mismatch: stored {expected:#010x}, "
                    f"computed {actual:#010x}",
                    name,
                )
            )
    for name in sorted(arrays):
        if name != "checksums" and name not in checksums:
            out.append(
                IntegrityViolation(
                    "archive-structure",
                    f"member {name!r} carries no checksum",
                    name,
                )
            )
    return out


def _verify_archive_structure(
    arrays: dict[str, np.ndarray],
) -> list[IntegrityViolation]:
    """Structural verification of the raw archive members."""
    out: list[IntegrityViolation] = []
    meta = arrays.get("meta")
    header = arrays.get("tiles")
    if meta is None or len(meta) < 9 or header is None:
        out.append(
            IntegrityViolation(
                "archive-structure",
                "meta/tiles members missing or truncated",
                "meta",
            )
        )
        return out
    rows, cols = int(meta[1]), int(meta[2])
    extents: list[tuple[int, int, int, int]] = []
    for i, entry in enumerate(header):
        if len(entry) != 6:
            out.append(
                IntegrityViolation(
                    "archive-structure",
                    f"tile directory entry {i} has {len(entry)} fields, expected 6",
                    f"tile {i}",
                )
            )
            continue
        row0, col0, t_rows, t_cols, is_dense, _node = (int(x) for x in entry)
        extents.append((row0, col0, t_rows, t_cols))
        location = f"tile {i}"
        if is_dense:
            dense = arrays.get(f"dense_{i}")
            if dense is None:
                out.append(
                    IntegrityViolation(
                        "archive-structure", "dense payload missing", location
                    )
                )
            elif dense.shape != (t_rows, t_cols):
                out.append(
                    IntegrityViolation(
                        "tile-shape",
                        f"payload shape {dense.shape} != directory "
                        f"extent {(t_rows, t_cols)}",
                        location,
                    )
                )
            elif not np.isfinite(dense).all():
                out.append(
                    IntegrityViolation(
                        "dense-nonfinite", "non-finite value in payload", location
                    )
                )
        else:
            triple = tuple(
                arrays.get(f"{part}_{i}") for part in ("indptr", "indices", "values")
            )
            if any(member is None for member in triple):
                out.append(
                    IntegrityViolation(
                        "archive-structure", "CSR payload arrays missing", location
                    )
                )
                continue
            indptr, indices, values = triple
            assert indptr is not None and indices is not None and values is not None
            out.extend(
                _verify_csr_arrays(t_rows, t_cols, indptr, indices, values, location)
            )
    out.extend(_verify_directory(rows, cols, extents))
    return out


# ---------------------------------------------------------------------------
# raising front door
# ---------------------------------------------------------------------------


def check_integrity(target: Any) -> None:
    """Verify ``target`` and raise :class:`IntegrityError` on any violation.

    ``target`` may be an archive path, an AT Matrix, or a bare
    CSR/dense payload.
    """
    if isinstance(target, (str, Path)):
        violations = verify_archive(target)
    elif isinstance(target, CSRMatrix):
        violations = verify_csr(target)
    elif isinstance(target, DenseMatrix):
        violations = verify_dense(target)
    else:
        violations = verify_at_matrix(target)
    if violations:
        shown = "; ".join(violation.render() for violation in violations[:4])
        suffix = "; ..." if len(violations) > 4 else ""
        raise IntegrityError(
            f"{len(violations)} integrity violation(s): {shown}{suffix}",
            violations=violations,
        )
