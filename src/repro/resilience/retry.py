"""Bounded retries with deterministic backoff for pair tasks.

A :class:`RetryPolicy` bounds how hard the execution layer tries to save
one tile-row/tile-column pair before declaring it failed: a maximum
number of attempts, exponential backoff between attempts with
deterministic (seeded-hash) jitter, an optional per-attempt deadline,
and a separate budget for memory-pressure degradations.

:class:`ResilientPairRunner` implements the attempt loop shared by the
sequential (:func:`repro.core.atmult.atmult`) and parallel
(:func:`repro.core.parallel.parallel_atmult`) executors.  It is generic:
the executor passes a ``compute(force_sparse)`` closure plus optional
``validate``/``fallback`` closures, and the runner handles

* transient exceptions → bounded re-attempts (``retries``);
* :class:`~repro.errors.MemoryLimitError` → degradation: notify the
  shared :class:`~repro.resilience.degrade.DegradationState` (raising
  the global write threshold) and re-run this pair with its accumulator
  demoted to sparse (``degradations``);
* attempts finishing over the task deadline → discarded and re-run
  while budget remains; the final attempt's late result is accepted
  best-effort (``deadline_violations``, ``late``);
* guard violations → one re-execution through the reference kernel with
  fault injection suppressed (``fallbacks``).

Exhaustion raises :class:`~repro.errors.RetryExhaustedError` carrying
the pair coordinates, the attempt count, and the last error.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from ..errors import (
    ConfigError,
    MemoryLimitError,
    ResultCorruptionError,
    RetryExhaustedError,
)
from ..observe import session as observe_session
from .degrade import DegradationState
from .faults import stable_unit, suppress_faults, task_scope
from .report import FailureReport, PairOutcome


@dataclass(frozen=True)
class RetryPolicy:
    """How persistently one pair task is retried before failing the run.

    Parameters
    ----------
    max_attempts:
        Total attempts allowed per pair (1 = no retries).
    backoff_base_seconds / backoff_factor / backoff_max_seconds:
        Exponential backoff between attempts: attempt ``n`` sleeps
        ``min(base * factor**(n-1), max)`` scaled by the jitter.
    jitter_fraction:
        Deterministic jitter: the sleep is scaled by a factor drawn
        from ``[1 - jitter_fraction, 1]`` via a stable hash of the pair
        and attempt number, so concurrent retries de-synchronize without
        breaking reproducibility.
    task_deadline_seconds:
        Per-attempt deadline; attempts finishing later are discarded
        and re-run while budget remains (the final attempt is accepted
        late).  ``None`` disables the deadline.
    max_degradations:
        Memory-pressure events absorbed per pair before giving up.
    validate_results:
        Run the result guard on every finished tile.
    fallback_to_reference:
        Re-execute guard-rejected pairs with the reference kernel.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.002
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 0.25
    jitter_fraction: float = 0.25
    task_deadline_seconds: float | None = None
    max_degradations: int = 8
    validate_results: bool = True
    fallback_to_reference: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_seconds < 0:
            raise ConfigError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_seconds < 0:
            raise ConfigError(
                f"backoff_max_seconds must be >= 0, got {self.backoff_max_seconds}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigError(
                f"jitter_fraction must lie in [0, 1], got {self.jitter_fraction}"
            )
        if self.task_deadline_seconds is not None and self.task_deadline_seconds <= 0:
            raise ConfigError(
                f"task_deadline_seconds must be positive, got "
                f"{self.task_deadline_seconds}"
            )
        if self.max_degradations < 0:
            raise ConfigError(
                f"max_degradations must be >= 0, got {self.max_degradations}"
            )

    def backoff_seconds(self, task: Any, attempt: int) -> float:
        """Deterministic backoff before re-attempt number ``attempt``."""
        base = min(
            self.backoff_max_seconds,
            self.backoff_base_seconds * self.backoff_factor ** max(0, attempt - 1),
        )
        if base <= 0.0:
            return 0.0
        scale = 1.0 - self.jitter_fraction * stable_unit("backoff", task, attempt)
        return base * scale


class ResilientPairRunner:
    """Executes pair tasks under a :class:`RetryPolicy`.

    One runner is shared by all workers of a run; it owns the lock that
    guards the :class:`~repro.resilience.report.FailureReport`.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        report: FailureReport,
        degradation: DegradationState | None = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy
        self.report = report
        self.degradation = degradation
        self._sleep = sleep
        self._lock = threading.Lock()

    def run(
        self,
        pair: tuple[int, int],
        compute: Callable[[bool], Any],
        *,
        validate: Callable[[Any], None] | None = None,
        fallback: Callable[[bool], Any] | None = None,
    ) -> Any:
        """Run ``compute`` for one pair until it succeeds or the budget ends.

        ``compute(force_sparse)`` performs the pair's tile products from
        scratch and returns the executor's result object; it is called
        with ``force_sparse=True`` after a memory-pressure degradation.
        ``validate(result)`` may raise
        :class:`~repro.errors.ResultCorruptionError`; ``fallback`` is the
        reference re-execution used to recover from that.
        """
        policy = self.policy
        outcome = PairOutcome(pair=pair)
        force_sparse = False
        iteration = 0
        transient_attempts = 0
        degradations = 0
        while True:
            iteration += 1
            outcome.attempts += 1
            observe_session.counter("resilience.attempts").inc()
            started = time.perf_counter()
            try:
                with task_scope(pair, iteration):
                    result = compute(force_sparse)
            except MemoryLimitError as error:
                degradations += 1
                if degradations > policy.max_degradations:
                    self._fail(outcome, pair, iteration, error)
                outcome.degradations += 1
                observe_session.counter("resilience.degradations").inc()
                self._instant("degrade", pair, iteration)
                if self.degradation is not None:
                    self.degradation.degrade()
                force_sparse = True
                continue
            except Exception as error:  # noqa: BLE001 — kernels may raise anything
                transient_attempts += 1
                if transient_attempts >= policy.max_attempts:
                    self._fail(outcome, pair, iteration, error)
                outcome.retries += 1
                observe_session.counter("resilience.retries").inc()
                self._instant("retry", pair, iteration)
                delay = policy.backoff_seconds(pair, transient_attempts)
                if delay > 0.0:
                    self._sleep(delay)
                continue
            elapsed = time.perf_counter() - started
            if (
                policy.task_deadline_seconds is not None
                and elapsed > policy.task_deadline_seconds
            ):
                if transient_attempts + 1 < policy.max_attempts:
                    transient_attempts += 1
                    outcome.deadline_violations += 1
                    observe_session.counter("resilience.deadline_violations").inc()
                    self._instant("deadline_violation", pair, iteration)
                    continue
                outcome.late = True  # best effort: accept the final late result
            if validate is not None and policy.validate_results:
                try:
                    validate(result)
                except ResultCorruptionError:
                    outcome.fallbacks += 1
                    observe_session.counter("resilience.fallbacks").inc()
                    self._instant("fallback", pair, iteration)
                    if fallback is not None and policy.fallback_to_reference:
                        with suppress_faults():
                            result = fallback(force_sparse)
            self._finish(outcome)
            return result

    @staticmethod
    def _instant(event: str, pair: tuple[int, int], iteration: int) -> None:
        """Mark a resilience event in the active trace, if any."""
        obs = observe_session.current()
        if obs is not None:
            obs.tracer.instant(
                f"resilience.{event}",
                "resilience",
                {"ti": pair[0], "tj": pair[1], "attempt": iteration},
            )

    def _finish(self, outcome: PairOutcome) -> None:
        with self._lock:
            self.report.merge_outcome(outcome)

    def _fail(
        self, outcome: PairOutcome, pair: tuple[int, int], attempts: int, error: BaseException
    ) -> None:
        outcome.failed = True
        outcome.error = repr(error)
        observe_session.counter("resilience.failures").inc()
        self._finish(outcome)
        raise RetryExhaustedError(
            f"pair {pair} failed after {attempts} attempts: {error}",
            pair=pair,
            attempts=attempts,
            last_error=error,
        ) from error
