"""Result guard: validate finished tiles, fall back to reference kernels.

Fast vectorized kernels are the components most likely to hide a silent
defect (a windowing bug, a misbehaving BLAS, an injected corruption).
The guard checks every finalized tile against invariants that are cheap
to test and independent of the kernel implementation:

* the payload shape matches the pair's region;
* every stored value is finite;
* the population does not exceed the region's area, nor — with a
  generous slack — the bound implied by the density estimate.

A violation raises :class:`~repro.errors.ResultCorruptionError`; the
retry layer then re-executes the pair once through
:func:`reference_tile_product`, which routes sparse-sparse products to
the loop-based Gustavson oracle of :mod:`repro.kernels.reference` and
bypasses the dynamic optimizer's conversions, with fault injection
suppressed.  The reference result is accepted as ground truth.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ResultCorruptionError

#: Estimated-density slack: a tile may exceed its estimated population by
#: this factor before the guard calls it corrupt.  The estimate is an
#: expectation under block independence, so real matrices overshoot it
#: routinely — the bound only catches gross corruption (e.g. a kernel
#: writing into the wrong region).
NNZ_SLACK = 8.0

#: Small tiles are exempt from the estimate bound: at a few hundred
#: elements the estimator's variance dwarfs any slack factor.
NNZ_FLOOR = 512


def validate_tile(
    payload: Any,
    rows: int,
    cols: int,
    estimated_density: float | None = None,
    *,
    pair: tuple[int, int] | None = None,
    slack: float = NNZ_SLACK,
    floor: int = NNZ_FLOOR,
) -> None:
    """Check one finalized tile payload; raise on violation.

    ``payload`` is a :class:`~repro.formats.dense.DenseMatrix` or
    :class:`~repro.formats.csr.CSRMatrix` produced by an accumulator's
    ``finalize()``.
    """
    if payload.shape != (rows, cols):
        raise ResultCorruptionError(
            f"pair {pair}: tile shape {payload.shape} != region ({rows}, {cols})",
            pair=pair,
            reason="shape",
        )
    array = getattr(payload, "array", None)
    values = array if array is not None else payload.values
    if values.size and not bool(np.isfinite(values).all()):
        raise ResultCorruptionError(
            f"pair {pair}: tile contains non-finite values",
            pair=pair,
            reason="non-finite",
        )
    area = rows * cols
    nnz = payload.nnz
    if nnz > area:
        raise ResultCorruptionError(
            f"pair {pair}: nnz {nnz} exceeds region area {area}",
            pair=pair,
            reason="nnz-bound",
        )
    if estimated_density is not None and estimated_density > 0.0:
        allowed = min(area, max(floor, area * min(1.0, slack * estimated_density)))
        if nnz > allowed:
            raise ResultCorruptionError(
                f"pair {pair}: nnz {nnz} exceeds the density estimate's bound "
                f"{allowed:.0f} (estimated density {estimated_density:.4f}, "
                f"slack {slack})",
                pair=pair,
                reason="nnz-bound",
            )


def reference_tile_product(
    a: Any, wa: Any, b: Any, wb: Any, out: Any, row0: int = 0, col0: int = 0
) -> None:
    """Dispatch one windowed tile product through the reference path.

    Sparse-sparse products run the loop-based Gustavson oracle directly
    (no registry swap, so concurrent fallbacks cannot race on the global
    kernel table); mixed and dense products keep the vectorized kernels,
    which the reference suite validates independently.
    """
    # Late imports: resilience must stay importable from the kernel
    # registry without a circular package initialization.
    from ..formats.csr import CSRMatrix
    from ..kernels.reference import reference_spsp_kernel
    from ..kernels.registry import run_tile_product

    if isinstance(a, CSRMatrix) and isinstance(b, CSRMatrix):
        if wa.is_empty() or wb.is_empty():
            return
        reference_spsp_kernel(a, wa, b, wb, out, row0, col0)
    else:
        run_tile_product(a, wa, b, wb, out, row0, col0)
