"""Crash-safe checkpointing of in-flight ATMULT executions.

A multiplication over a big AT Matrix runs long enough that an
unattended process crash — OOM kill, node reboot, ``kill -9`` — must not
cost the whole run (see ``docs/RESILIENCE.md``).  The
:class:`CheckpointStore` journals every *completed* tile-pair of an
:class:`~repro.engine.plan.ExecutionPlan` to a spill directory:

``<dir>/MANIFEST.json``
    The plan fingerprint, result shape and pair count the journal
    belongs to, written before the first record.
``<dir>/pairs/pair-<ti>-<tj>.npz``
    One record per completed pair: a JSON meta member (plan
    fingerprint, pair coordinates, tile geometry and kind, CRC-32C of
    the payload bytes) plus the result-tile payload arrays.  Pairs
    whose product is all-zero are recorded with ``empty=true`` and no
    payload so a resume does not re-execute them either.

Every file lands via :func:`~repro.ioutil.atomic_write` (temp file +
fsync + rename), so a crash leaves either a complete record or no
record — never a torn one.  On resume the store validates the manifest
against the *current* plan's fingerprint (mismatched topology raises
:class:`~repro.errors.PlanMismatchError`) and every record's checksum
(corruption raises :class:`~repro.errors.IntegrityError`), then hands
:func:`~repro.engine.executor.execute_plan` the completed tiles so only
unfinished pairs run.

The granularity of recovery is the flush interval
(:attr:`~repro.engine.options.MultiplyOptions.checkpoint_flush_pairs`):
a crash costs at most the pairs buffered since the last flush.
"""

from __future__ import annotations

import contextlib
import json
import threading
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.tile import Tile
from ..errors import IntegrityError, PlanMismatchError
from ..formats.csr import CSRMatrix
from ..formats.dense import DenseMatrix
from ..ioutil import atomic_write, atomic_write_text, crc32c
from ..kinds import StorageKind
from ..observe import session as observe_session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.plan import ExecutionPlan

    PairCoords = tuple[int, int]

__all__ = ["CheckpointStore"]

#: Checkpoint journal layout version.
JOURNAL_VERSION = 1

_MANIFEST = "MANIFEST.json"
_PAIR_DIR = "pairs"


def _record_name(ti: int, tj: int) -> str:
    return f"pair-{ti:05d}-{tj:05d}.npz"


def _payload_arrays(tile: Tile) -> dict[str, np.ndarray]:
    if isinstance(tile.data, DenseMatrix):
        return {"dense": tile.data.array}
    return {
        "indptr": tile.data.indptr,
        "indices": tile.data.indices,
        "values": tile.data.values,
    }


def _payload_crc(arrays: dict[str, np.ndarray]) -> int:
    """Chained CRC-32C over the payload arrays in stable name order."""
    crc = 0
    for name in sorted(arrays):
        crc = crc32c(np.ascontiguousarray(arrays[name]).tobytes(), crc)
    return crc


class CheckpointStore:
    """A durable journal of completed tile-pairs under one plan.

    The store is safe to share between the executor's worker threads:
    records are buffered under a lock and written out in batches by
    :meth:`flush`.  Lifecycle::

        store = CheckpointStore(directory, resume=True)
        completed = store.begin(plan)      # {} on a fresh run
        ... execute_plan(..., checkpoint=store)  # records + flushes
        store.flush()                      # final drain

    Attributes
    ----------
    directory:
        The spill directory (created on demand).
    flushes, records_written:
        Lifetime counters, surfaced by the executor's report.
    """

    def __init__(self, directory: str | Path, *, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.resume = resume
        self.flushes = 0
        self.records_written = 0
        self._plan_fingerprint: str | None = None
        self._buffer: dict[tuple[int, int], Tile | None] = {}
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    def begin(self, plan: ExecutionPlan) -> dict[PairCoords, Tile | None]:
        """Bind the store to ``plan`` and return the pairs already done.

        On a resumed run with a matching journal this loads and
        validates every record; on a fresh run (or ``resume=False``) any
        stale journal content is cleared and an empty mapping returned.
        """
        with self._lock:
            return self._begin_locked(plan)

    def _begin_locked(self, plan: ExecutionPlan) -> dict[PairCoords, Tile | None]:
        self._plan_fingerprint = plan.fingerprint
        self._buffer.clear()
        pair_dir = self.directory / _PAIR_DIR
        pair_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / _MANIFEST
        completed: dict[tuple[int, int], Tile | None] = {}
        if self.resume and manifest_path.exists():
            manifest = self._read_manifest(manifest_path)
            if manifest.get("plan") != plan.fingerprint:
                raise PlanMismatchError(
                    "checkpoint journal belongs to a different plan "
                    f"(journal {str(manifest.get('plan'))[:12]}... vs "
                    f"plan {plan.fingerprint[:12]}...); point --checkpoint-dir "
                    "at a fresh directory or drop --resume"
                )
            for record_path in sorted(pair_dir.glob("pair-*.npz")):
                coords, tile = self._load_record(record_path)
                completed[coords] = tile
            observe_session.counter("checkpoint.records_loaded").inc(len(completed))
            return completed
        # Fresh run: a stale journal under this directory belongs to a
        # previous invocation and must not leak into this one.
        for record_path in pair_dir.glob("pair-*.npz"):
            with contextlib.suppress(OSError):
                record_path.unlink()
        manifest = {
            "version": JOURNAL_VERSION,
            "plan": plan.fingerprint,
            "shape": list(plan.shape),
            "pairs": len(plan.pairs),
        }
        atomic_write_text(manifest_path, json.dumps(manifest, indent=2) + "\n")
        return completed

    def attach(self, fingerprint: str) -> None:
        """Bind to an already-begun journal without touching its content.

        Supervised worker processes share one journal directory with the
        supervisor, which alone runs :meth:`begin` (manifest, stale-record
        cleanup, resume loading).  Workers attach with the plan
        fingerprint shipped to them and then only :meth:`record` /
        :meth:`flush`; concurrent workers write disjoint record files,
        each atomically, so no cross-process locking is needed.
        """
        with self._lock:
            self._plan_fingerprint = str(fingerprint)
            (self.directory / _PAIR_DIR).mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _read_manifest(path: Path) -> dict[str, Any]:
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise IntegrityError(
                f"checkpoint manifest {path} is unreadable: {error}"
            ) from error
        if not isinstance(loaded, dict) or loaded.get("version") != JOURNAL_VERSION:
            raise IntegrityError(
                f"checkpoint manifest {path} has unsupported layout "
                f"(expected version {JOURNAL_VERSION})"
            )
        return loaded

    # -- recording ---------------------------------------------------------
    def record(self, coords: PairCoords, tile: Tile | None) -> None:
        """Buffer one completed pair (``None`` for an all-zero product)."""
        with self._lock:
            self._buffer[coords] = tile

    def pending(self) -> int:
        """Number of buffered records not yet flushed to disk."""
        with self._lock:
            return len(self._buffer)

    def flush(self) -> int:
        """Write every buffered record durably; returns the count."""
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        if not self._buffer:
            return 0
        drained = sorted(self._buffer.items())
        self._buffer.clear()
        with observe_session.maybe_span(
            "checkpoint.flush", attrs={"records": len(drained)}
        ):
            for coords, tile in drained:
                self._write_record_locked(coords, tile)
        self.flushes += 1
        self.records_written += len(drained)
        observe_session.counter("checkpoint.flushes").inc()
        observe_session.counter("checkpoint.records").inc(len(drained))
        return len(drained)

    def _write_record_locked(self, coords: PairCoords, tile: Tile | None) -> None:
        assert self._plan_fingerprint is not None, "flush before begin()"
        arrays = {} if tile is None else _payload_arrays(tile)
        meta: dict[str, Any] = {
            "version": JOURNAL_VERSION,
            "plan": self._plan_fingerprint,
            "pair": list(coords),
            "empty": tile is None,
            "crc": _payload_crc(arrays),
        }
        if tile is not None:
            meta.update(
                kind=tile.kind.value,
                row0=tile.row0,
                col0=tile.col0,
                rows=tile.rows,
                cols=tile.cols,
                numa_node=tile.numa_node,
            )
        target = self.directory / _PAIR_DIR / _record_name(*coords)
        with atomic_write(target) as handle:
            np.savez_compressed(handle, meta=np.array(json.dumps(meta)), **arrays)

    # -- resume ------------------------------------------------------------
    def load_pair(self, coords: PairCoords) -> Tile | None:
        """Load one journaled pair record (``None`` for an empty product).

        The supervisor's result-collection path: a worker reports a pair
        done only after durably flushing its record, so the record must
        exist — a missing or corrupt file raises
        :class:`~repro.errors.IntegrityError`.
        """
        path = self.directory / _PAIR_DIR / _record_name(*coords)
        if not path.exists():
            raise IntegrityError(
                f"checkpoint record for pair {coords} is missing from "
                f"{self.directory} (worker reported it complete)"
            )
        _, tile = self._load_record(path)
        return tile

    def _load_record(self, path: Path) -> tuple[PairCoords, Tile | None]:
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"][()]))
                arrays = {
                    name: archive[name] for name in archive.files if name != "meta"
                }
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as error:
            raise IntegrityError(
                f"checkpoint record {path} is unreadable: {error}"
            ) from error
        if meta.get("plan") != self._plan_fingerprint:
            raise IntegrityError(
                f"checkpoint record {path} belongs to a different plan"
            )
        actual = _payload_crc(arrays)
        if actual != meta.get("crc"):
            raise IntegrityError(
                f"checkpoint record {path} failed its CRC-32C check "
                f"(stored {meta.get('crc')}, computed {actual})"
            )
        coords = (int(meta["pair"][0]), int(meta["pair"][1]))
        if meta.get("empty"):
            return coords, None
        kind = StorageKind(meta["kind"])
        if kind is StorageKind.DENSE:
            payload: CSRMatrix | DenseMatrix = DenseMatrix(
                arrays["dense"], copy=False
            )
        else:
            payload = CSRMatrix(
                int(meta["rows"]),
                int(meta["cols"]),
                arrays["indptr"],
                arrays["indices"],
                arrays["values"],
            )
        tile = Tile(
            int(meta["row0"]),
            int(meta["col0"]),
            int(meta["rows"]),
            int(meta["cols"]),
            kind,
            payload,
            numa_node=int(meta.get("numa_node", 0)),
        )
        return coords, tile
