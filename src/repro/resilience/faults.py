"""Deterministic, seeded fault injection for the execution stack.

A :class:`FaultPlan` decides — purely from a seed and the identity of the
hook site — whether a fault fires at a given point of an ATMULT run.  The
decision is a hash of ``(seed, kind, site, task, iteration, extra)``, so
it is reproducible bit-for-bit regardless of thread scheduling: the same
plan injects the same faults into the same tile products on every run.

Four fault kinds model the failure modes of long-running sparse chains:

``KERNEL_ERROR``
    a transient exception raised before a tile-product kernel runs
    (:class:`InjectedFaultError`), standing in for flaky library calls,
    bit flips surfacing as exceptions, or cancelled sub-requests;
``STALL``
    a worker stall — the hook sleeps ``stall_seconds`` — which surfaces
    as a task-deadline violation under a
    :class:`~repro.resilience.retry.RetryPolicy`;
``MEMORY_PRESSURE``
    a simulated memory spike raising :class:`~repro.errors.MemoryLimitError`,
    driving the graceful-degradation path
    (:mod:`repro.resilience.degrade`);
``CORRUPTION``
    a silent result corruption — a NaN poked into the pair's accumulator
    after a kernel ran — which only the result guard
    (:mod:`repro.resilience.guard`) can catch.

Hook points live in :func:`repro.kernels.registry.run_tile_product`
(sites ``"kernel"`` pre-kernel and the post-kernel corruption hook) and
in the pair loops of :mod:`repro.core.atmult` /
:mod:`repro.core.parallel` (site ``"pair"``).  The hooks are no-ops —
one global ``None`` check — unless a plan is activated with
:func:`inject_faults`.
"""

from __future__ import annotations

import enum
import hashlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from collections.abc import Iterator
from typing import Any

from ..errors import ConfigError, MemoryLimitError, TaskFailedError


class InjectedFaultError(TaskFailedError):
    """A transient failure raised on purpose by an active fault plan."""


class FaultKind(enum.Enum):
    """The failure modes a :class:`FaultPlan` can inject."""

    KERNEL_ERROR = "kernel_error"
    STALL = "stall"
    MEMORY_PRESSURE = "memory_pressure"
    CORRUPTION = "corruption"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for accounting."""

    kind: FaultKind
    site: str
    task: Any
    iteration: int
    extra: Any = None


def stable_unit(*parts: Any) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from hashable parts.

    Uses SHA-256 over the ``repr`` of the parts, so the value is stable
    across processes, platforms, and thread interleavings.
    """
    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _rate(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


class FaultPlan:
    """A seeded schedule of injected faults.

    Rates are evaluated independently at every hook firing; a rate of
    0.1 at the ``"kernel"`` site injects a fault into roughly 10% of the
    tile products of a run.  The plan records every injected event
    (thread-safely), so tests can reconcile the execution layer's
    :class:`~repro.resilience.report.FailureReport` against the ground
    truth: every raising fault must end up retried, degraded, or failed.
    """

    def __init__(
        self,
        seed: int,
        *,
        kernel_error_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 0.005,
        memory_pressure_rate: float = 0.0,
        corruption_rate: float = 0.0,
    ) -> None:
        self.seed = int(seed)
        self.kernel_error_rate = _rate(kernel_error_rate, "kernel_error_rate")
        self.stall_rate = _rate(stall_rate, "stall_rate")
        self.memory_pressure_rate = _rate(memory_pressure_rate, "memory_pressure_rate")
        self.corruption_rate = _rate(corruption_rate, "corruption_rate")
        if stall_seconds < 0:
            raise ConfigError(f"stall_seconds must be >= 0, got {stall_seconds}")
        self.stall_seconds = float(stall_seconds)
        self.events: list[FaultEvent] = []
        self._lock = threading.Lock()

    # -- deterministic decisions -----------------------------------------
    def draw(self, kind: FaultKind, site: str, task: Any, iteration: int, extra: Any) -> float:
        return stable_unit(self.seed, kind.value, site, task, iteration, extra)

    def record(
        self, kind: FaultKind, site: str, task: Any, iteration: int, extra: Any
    ) -> None:
        event = FaultEvent(kind, site, task, iteration, extra)
        with self._lock:
            self.events.append(event)

    # -- accounting ------------------------------------------------------
    def count(self, kind: FaultKind) -> int:
        """Number of injected events of one kind."""
        with self._lock:
            return sum(1 for event in self.events if event.kind is kind)

    @property
    def injected(self) -> int:
        """Total number of injected events of all kinds."""
        with self._lock:
            return len(self.events)

    @property
    def raising_count(self) -> int:
        """Events that raised an exception (kernel errors + memory spikes)."""
        with self._lock:
            return sum(
                1
                for event in self.events
                if event.kind in (FaultKind.KERNEL_ERROR, FaultKind.MEMORY_PRESSURE)
            )

    def reset(self) -> None:
        """Forget all recorded events (e.g. between measurement runs)."""
        with self._lock:
            self.events.clear()


# The active plan is process-global: fault injection is a test/chaos
# harness, not a per-request feature, and the hook must stay a single
# ``is None`` check on the hot path.
_ACTIVE: FaultPlan | None = None

#: Identity of the task the current thread of control is executing,
#: set by the retry layer so decisions are keyed per (task, attempt).
_TASK: ContextVar[tuple[Any, int]] = ContextVar("repro-fault-task", default=(None, 0))
_SUPPRESS: ContextVar[bool] = ContextVar("repro-fault-suppress", default=False)


def active_plan() -> FaultPlan | None:
    """The currently installed fault plan, if any."""
    return _ACTIVE


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the context (process-global)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


@contextmanager
def task_scope(task: Any, iteration: int) -> Iterator[None]:
    """Tag the current context with a task identity and attempt number."""
    token = _TASK.set((task, iteration))
    try:
        yield
    finally:
        _TASK.reset(token)


@contextmanager
def suppress_faults() -> Iterator[None]:
    """Disable injection in the current context (recovery paths)."""
    token = _SUPPRESS.set(True)
    try:
        yield
    finally:
        _SUPPRESS.reset(token)


def fire_hooks(site: str, extra: Any = None) -> None:
    """Evaluate the active plan at a named hook site.

    May sleep (``STALL``), raise :class:`~repro.errors.MemoryLimitError`
    (``MEMORY_PRESSURE``) or raise :class:`InjectedFaultError`
    (``KERNEL_ERROR``); a no-op when no plan is active or faults are
    suppressed.
    """
    plan = _ACTIVE
    if plan is None or _SUPPRESS.get():
        return
    task, iteration = _TASK.get()
    if plan.stall_rate and (
        plan.draw(FaultKind.STALL, site, task, iteration, extra) < plan.stall_rate
    ):
        plan.record(FaultKind.STALL, site, task, iteration, extra)
        time.sleep(plan.stall_seconds)
    if plan.memory_pressure_rate and (
        plan.draw(FaultKind.MEMORY_PRESSURE, site, task, iteration, extra)
        < plan.memory_pressure_rate
    ):
        plan.record(FaultKind.MEMORY_PRESSURE, site, task, iteration, extra)
        raise MemoryLimitError(
            f"injected memory-pressure spike at {site!r} for task {task!r}"
        )
    if plan.kernel_error_rate and (
        plan.draw(FaultKind.KERNEL_ERROR, site, task, iteration, extra)
        < plan.kernel_error_rate
    ):
        plan.record(FaultKind.KERNEL_ERROR, site, task, iteration, extra)
        raise InjectedFaultError(
            f"injected transient kernel failure at {site!r} for task {task!r}",
            pair=task,
        )


def fire_corruption(site: str, accumulator: Any, extra: Any = None) -> None:
    """Possibly poke a NaN into ``accumulator`` (post-kernel hook).

    Silent by design: only the result guard can detect it.
    """
    plan = _ACTIVE
    if plan is None or _SUPPRESS.get() or not plan.corruption_rate:
        return
    task, iteration = _TASK.get()
    if plan.draw(FaultKind.CORRUPTION, site, task, iteration, extra) >= plan.corruption_rate:
        return
    plan.record(FaultKind.CORRUPTION, site, task, iteration, extra)
    import numpy as np

    array = getattr(accumulator, "array", None)
    if array is not None and array.size:
        array.flat[0] = np.nan
    else:
        accumulator.add_triples(
            0,
            0,
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.array([np.nan]),
        )
