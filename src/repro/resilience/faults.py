"""Deterministic, seeded fault injection for the execution stack.

A :class:`FaultPlan` decides — purely from a seed and the identity of the
hook site — whether a fault fires at a given point of an ATMULT run.  The
decision is a hash of ``(seed, kind, site, task, iteration, extra)``, so
it is reproducible bit-for-bit regardless of thread scheduling: the same
plan injects the same faults into the same tile products on every run.

Four fault kinds model the failure modes of long-running sparse chains:

``KERNEL_ERROR``
    a transient exception raised before a tile-product kernel runs
    (:class:`InjectedFaultError`), standing in for flaky library calls,
    bit flips surfacing as exceptions, or cancelled sub-requests;
``STALL``
    a worker stall — the hook sleeps ``stall_seconds`` — which surfaces
    as a task-deadline violation under a
    :class:`~repro.resilience.retry.RetryPolicy`;
``MEMORY_PRESSURE``
    a simulated memory spike raising :class:`~repro.errors.MemoryLimitError`,
    driving the graceful-degradation path
    (:mod:`repro.resilience.degrade`);
``CORRUPTION``
    a silent result corruption — a NaN poked into the pair's accumulator
    after a kernel ran — which only the result guard
    (:mod:`repro.resilience.guard`) can catch;
``WORKER_CRASH``
    a hard worker death — ``SIGKILL`` delivered to the current process
    before a listed pair runs — which only the process supervisor
    (:mod:`repro.resilience.supervisor`) can survive.  Ignored under
    thread execution: killing the process would kill the whole run.

Because every decision is a pure function of the seed and the hook-site
identity, a plan can be reduced to a picklable :class:`FaultPlanSpec`,
shipped to worker processes, and rebuilt there: ``--inject-faults``
reproduces the same pair-level failures under ``--execution=processes``
as under threads.

Hook points live in :func:`repro.kernels.registry.run_tile_product`
(sites ``"kernel"`` pre-kernel and the post-kernel corruption hook) and
in the pair loops of :mod:`repro.core.atmult` /
:mod:`repro.core.parallel` (site ``"pair"``).  The hooks are no-ops —
one global ``None`` check — unless a plan is activated with
:func:`inject_faults`.
"""

from __future__ import annotations

import enum
import hashlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from collections.abc import Iterator
from typing import Any

from ..errors import ConfigError, MemoryLimitError, TaskFailedError


class InjectedFaultError(TaskFailedError):
    """A transient failure raised on purpose by an active fault plan."""


class FaultKind(enum.Enum):
    """The failure modes a :class:`FaultPlan` can inject."""

    KERNEL_ERROR = "kernel_error"
    STALL = "stall"
    MEMORY_PRESSURE = "memory_pressure"
    CORRUPTION = "corruption"
    WORKER_CRASH = "worker_crash"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for accounting."""

    kind: FaultKind
    site: str
    task: Any
    iteration: int
    extra: Any = None


def stable_unit(*parts: Any) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from hashable parts.

    Uses SHA-256 over the ``repr`` of the parts, so the value is stable
    across processes, platforms, and thread interleavings.
    """
    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _rate(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


class FaultPlan:
    """A seeded schedule of injected faults.

    Rates are evaluated independently at every hook firing; a rate of
    0.1 at the ``"kernel"`` site injects a fault into roughly 10% of the
    tile products of a run.  The plan records every injected event
    (thread-safely), so tests can reconcile the execution layer's
    :class:`~repro.resilience.report.FailureReport` against the ground
    truth: every raising fault must end up retried, degraded, or failed.
    """

    def __init__(
        self,
        seed: int,
        *,
        kernel_error_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_seconds: float = 0.005,
        memory_pressure_rate: float = 0.0,
        corruption_rate: float = 0.0,
        worker_crash_pairs: tuple[tuple[int, int], ...] = (),
        worker_crash_attempts: int = 1,
    ) -> None:
        self.seed = int(seed)
        self.kernel_error_rate = _rate(kernel_error_rate, "kernel_error_rate")
        self.stall_rate = _rate(stall_rate, "stall_rate")
        self.memory_pressure_rate = _rate(memory_pressure_rate, "memory_pressure_rate")
        self.corruption_rate = _rate(corruption_rate, "corruption_rate")
        if stall_seconds < 0:
            raise ConfigError(f"stall_seconds must be >= 0, got {stall_seconds}")
        self.stall_seconds = float(stall_seconds)
        self.worker_crash_pairs = tuple(
            (int(ti), int(tj)) for ti, tj in worker_crash_pairs
        )
        if worker_crash_attempts < 0:
            raise ConfigError(
                f"worker_crash_attempts must be >= 0, got {worker_crash_attempts}"
            )
        self.worker_crash_attempts = int(worker_crash_attempts)
        self.events: list[FaultEvent] = []
        self._lock = threading.Lock()

    def spec(self) -> FaultPlanSpec:
        """The picklable description this plan can be rebuilt from."""
        return FaultPlanSpec(
            seed=self.seed,
            kernel_error_rate=self.kernel_error_rate,
            stall_rate=self.stall_rate,
            stall_seconds=self.stall_seconds,
            memory_pressure_rate=self.memory_pressure_rate,
            corruption_rate=self.corruption_rate,
            worker_crash_pairs=self.worker_crash_pairs,
            worker_crash_attempts=self.worker_crash_attempts,
        )

    # -- deterministic decisions -----------------------------------------
    def draw(self, kind: FaultKind, site: str, task: Any, iteration: int, extra: Any) -> float:
        return stable_unit(self.seed, kind.value, site, task, iteration, extra)

    def record(
        self, kind: FaultKind, site: str, task: Any, iteration: int, extra: Any
    ) -> None:
        event = FaultEvent(kind, site, task, iteration, extra)
        with self._lock:
            self.events.append(event)

    # -- accounting ------------------------------------------------------
    def count(self, kind: FaultKind) -> int:
        """Number of injected events of one kind."""
        with self._lock:
            return sum(1 for event in self.events if event.kind is kind)

    @property
    def injected(self) -> int:
        """Total number of injected events of all kinds."""
        with self._lock:
            return len(self.events)

    @property
    def raising_count(self) -> int:
        """Events that raised an exception (kernel errors + memory spikes)."""
        with self._lock:
            return sum(
                1
                for event in self.events
                if event.kind in (FaultKind.KERNEL_ERROR, FaultKind.MEMORY_PRESSURE)
            )

    def reset(self) -> None:
        """Forget all recorded events (e.g. between measurement runs)."""
        with self._lock:
            self.events.clear()

    # -- cross-process accounting ----------------------------------------
    def absorb_wire(self, events: list[dict[str, Any]]) -> None:
        """Merge events recorded by a worker process (wire format)."""
        for wire in events:
            task = wire.get("task")
            self.record(
                FaultKind(wire["kind"]),
                str(wire["site"]),
                tuple(task) if isinstance(task, list) else task,
                int(wire["iteration"]),
                wire.get("extra"),
            )


def event_to_wire(event: FaultEvent) -> dict[str, Any]:
    """A JSON-safe description of one event (worker → supervisor)."""
    extra = event.extra
    if not isinstance(extra, (str, int, float, bool, type(None))):
        extra = repr(extra)
    task: Any = event.task
    if isinstance(task, tuple):
        task = list(task)
    return {
        "kind": event.kind.value,
        "site": event.site,
        "task": task,
        "iteration": event.iteration,
        "extra": extra,
    }


@dataclass(frozen=True)
class FaultPlanSpec:
    """A picklable :class:`FaultPlan` description for worker processes.

    The plan object itself carries a lock and the recorded-event list,
    so it cannot cross a process boundary; the spec carries only the
    seed and rates — everything a worker needs to rebuild a plan that
    makes bit-identical injection decisions.
    """

    seed: int
    kernel_error_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.005
    memory_pressure_rate: float = 0.0
    corruption_rate: float = 0.0
    worker_crash_pairs: tuple[tuple[int, int], ...] = ()
    worker_crash_attempts: int = 1

    def build(self) -> FaultPlan:
        """A fresh plan making the same decisions as the original."""
        return FaultPlan(
            self.seed,
            kernel_error_rate=self.kernel_error_rate,
            stall_rate=self.stall_rate,
            stall_seconds=self.stall_seconds,
            memory_pressure_rate=self.memory_pressure_rate,
            corruption_rate=self.corruption_rate,
            worker_crash_pairs=self.worker_crash_pairs,
            worker_crash_attempts=self.worker_crash_attempts,
        )


# The active plan is process-global: fault injection is a test/chaos
# harness, not a per-request feature, and the hook must stay a single
# ``is None`` check on the hot path.
_ACTIVE: FaultPlan | None = None

#: Identity of the task the current thread of control is executing,
#: set by the retry layer so decisions are keyed per (task, attempt).
_TASK: ContextVar[tuple[Any, int]] = ContextVar("repro-fault-task", default=(None, 0))
_SUPPRESS: ContextVar[bool] = ContextVar("repro-fault-suppress", default=False)


def active_plan() -> FaultPlan | None:
    """The currently installed fault plan, if any."""
    return _ACTIVE


def clear_active() -> None:
    """Drop any installed fault plan (worker-process initialization).

    A forked worker inherits the parent's process-global plan object —
    including its recorded events and lock — which must not be mutated
    from the child; workers clear it and install a fresh plan rebuilt
    from the shipped :class:`FaultPlanSpec`.
    """
    global _ACTIVE
    _ACTIVE = None


def fire_worker_crash(pair: tuple[int, int], dispatch_attempt: int) -> None:
    """Kill the current process if the active plan schedules it.

    Called by supervised workers right before executing ``pair``; the
    crash fires while ``dispatch_attempt`` (1-based, counted by the
    supervisor across reassignments) is within the plan's
    ``worker_crash_attempts`` budget, so a crashing pair eventually
    succeeds on a later dispatch — or, with a large budget, exercises
    the supervisor's quarantine path.  A no-op outside the supervisor
    (thread and sequential execution never call it).
    """
    plan = _ACTIVE
    if plan is None or _SUPPRESS.get():
        return
    if (
        tuple(pair) in plan.worker_crash_pairs
        and dispatch_attempt <= plan.worker_crash_attempts
    ):
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the context (process-global)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


@contextmanager
def task_scope(task: Any, iteration: int) -> Iterator[None]:
    """Tag the current context with a task identity and attempt number."""
    token = _TASK.set((task, iteration))
    try:
        yield
    finally:
        _TASK.reset(token)


@contextmanager
def suppress_faults() -> Iterator[None]:
    """Disable injection in the current context (recovery paths)."""
    token = _SUPPRESS.set(True)
    try:
        yield
    finally:
        _SUPPRESS.reset(token)


def fire_hooks(site: str, extra: Any = None) -> None:
    """Evaluate the active plan at a named hook site.

    May sleep (``STALL``), raise :class:`~repro.errors.MemoryLimitError`
    (``MEMORY_PRESSURE``) or raise :class:`InjectedFaultError`
    (``KERNEL_ERROR``); a no-op when no plan is active or faults are
    suppressed.
    """
    plan = _ACTIVE
    if plan is None or _SUPPRESS.get():
        return
    task, iteration = _TASK.get()
    if plan.stall_rate and (
        plan.draw(FaultKind.STALL, site, task, iteration, extra) < plan.stall_rate
    ):
        plan.record(FaultKind.STALL, site, task, iteration, extra)
        time.sleep(plan.stall_seconds)
    if plan.memory_pressure_rate and (
        plan.draw(FaultKind.MEMORY_PRESSURE, site, task, iteration, extra)
        < plan.memory_pressure_rate
    ):
        plan.record(FaultKind.MEMORY_PRESSURE, site, task, iteration, extra)
        raise MemoryLimitError(
            f"injected memory-pressure spike at {site!r} for task {task!r}"
        )
    if plan.kernel_error_rate and (
        plan.draw(FaultKind.KERNEL_ERROR, site, task, iteration, extra)
        < plan.kernel_error_rate
    ):
        plan.record(FaultKind.KERNEL_ERROR, site, task, iteration, extra)
        raise InjectedFaultError(
            f"injected transient kernel failure at {site!r} for task {task!r}",
            pair=task,
        )


def fire_corruption(site: str, accumulator: Any, extra: Any = None) -> None:
    """Possibly poke a NaN into ``accumulator`` (post-kernel hook).

    Silent by design: only the result guard can detect it.
    """
    plan = _ACTIVE
    if plan is None or _SUPPRESS.get() or not plan.corruption_rate:
        return
    task, iteration = _TASK.get()
    if plan.draw(FaultKind.CORRUPTION, site, task, iteration, extra) >= plan.corruption_rate:
        return
    plan.record(FaultKind.CORRUPTION, site, task, iteration, extra)
    import numpy as np

    array = getattr(accumulator, "array", None)
    if array is not None and array.size:
        array.flat[0] = np.nan
    else:
        accumulator.add_triples(
            0,
            0,
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.array([np.nan]),
        )
