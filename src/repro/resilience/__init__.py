"""Resilient execution for ATMULT: faults, retries, guards, degradation.

The paper's operators assume every tile product succeeds; this package
makes the engine safe to run unattended (see ``docs/RESILIENCE.md``):

* :mod:`~repro.resilience.faults` — deterministic, seeded fault
  injection at named hook points in the kernel registry and the pair
  executors;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` and the shared
  per-pair attempt loop (bounded attempts, exponential backoff with
  deterministic jitter, per-task deadlines);
* :mod:`~repro.resilience.guard` — post-execution tile validation with
  a reference-kernel fallback;
* :mod:`~repro.resilience.degrade` — progressive write-threshold
  escalation under memory pressure via the water-level method;
* :mod:`~repro.resilience.report` — the structured
  :class:`FailureReport` attached to both executors' reports;
* :mod:`~repro.resilience.checkpoint` — the durable
  :class:`CheckpointStore` journal that makes an interrupted
  multiplication resumable across process crashes;
* :mod:`~repro.resilience.supervisor` — the supervised multiprocess
  shard executor behind ``execution="processes"`` (heartbeats, crash
  detection, pair reassignment and quarantine); imported lazily — as
  ``repro.resilience.supervisor`` — because it reaches back into the
  engine for the worker-side pair computer;
* :mod:`~repro.resilience.integrity` — the deep at-rest verifier behind
  ``repro verify`` (structural invariants plus archive checksums);
* :mod:`~repro.resilience.cancel` — :class:`CancelToken`, the
  cooperative cancellation/deadline signal the executors poll at
  tile-pair boundaries (checkpoint flushed before the run unwinds).

Pass ``resilience=RetryPolicy(...)`` to
:func:`~repro.core.atmult.atmult` or
:func:`~repro.core.parallel.parallel_atmult` to enable all of it.
"""

from .cancel import CancelToken
from .degrade import DegradationState
from .faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultPlanSpec,
    InjectedFaultError,
    active_plan,
    clear_active,
    fire_corruption,
    fire_hooks,
    fire_worker_crash,
    inject_faults,
    stable_unit,
    suppress_faults,
    task_scope,
)
from .guard import reference_tile_product, validate_tile
from .report import FailureReport, PairOutcome, WorkerRecord
from .retry import ResilientPairRunner, RetryPolicy

# Imported last: these reach back into repro.core / repro.formats, whose
# own import chains re-enter this package for the symbols bound above.
from .checkpoint import CheckpointStore  # noqa: E402
from .integrity import (  # noqa: E402
    IntegrityViolation,
    check_integrity,
    verify_archive,
    verify_at_matrix,
    verify_csr,
    verify_dense,
)

__all__ = [
    "CancelToken",
    "CheckpointStore",
    "DegradationState",
    "FailureReport",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultPlanSpec",
    "InjectedFaultError",
    "IntegrityViolation",
    "PairOutcome",
    "ResilientPairRunner",
    "RetryPolicy",
    "WorkerRecord",
    "active_plan",
    "check_integrity",
    "clear_active",
    "fire_corruption",
    "fire_hooks",
    "fire_worker_crash",
    "inject_faults",
    "reference_tile_product",
    "stable_unit",
    "suppress_faults",
    "task_scope",
    "validate_tile",
    "verify_archive",
    "verify_at_matrix",
    "verify_csr",
    "verify_dense",
]
