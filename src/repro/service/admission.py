"""Water-level admission control for the matrix service.

The paper's water-level method answers "what is the cheapest layout of
this result under a byte budget?" — the service reuses it as its
admission oracle.  For every multiply job the controller propagates the
operand density maps to the estimated result density ρ̂_C
(:func:`~repro.density.estimate.estimate_product_density`) and sweeps
the water level against the configured memory SLA:

* the sweep *fails* (:class:`~repro.errors.MemoryLimitError`): even the
  job's minimal mixed layout cannot fit the SLA → the job is rejected
  up front with a typed :class:`~repro.errors.AdmissionError`, before
  any planning or execution happens;
* the sweep succeeds: the job is admitted and its minimal footprint is
  *reserved* against the SLA.  A job whose reservation does not fit
  next to the currently running jobs waits in the queue until releases
  free budget — admission is a gate on concurrent footprint, not just a
  static check.

Admitted multiply jobs then execute with ``memory_limit_bytes`` set to
the SLA itself, so the engine's own water-level/degradation path
enforces the budget inside the job — deterministically, which keeps
plans cacheable across tenants and checkpoint journals resumable after
a crash (a limit that depended on transient load would change the plan
fingerprint between runs).

Counters: ``service.admission.admitted`` / ``.rejected``; gauge
``service.admission.in_flight_bytes``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..config import SystemConfig
from ..core.atmatrix import ATMatrix
from ..core.operands import operand_density_map
from ..density.estimate import estimate_product_density
from ..density.water_level import water_level_threshold
from ..errors import AdmissionError, MemoryLimitError
from ..observe.metrics import MetricsRegistry


@dataclass(frozen=True)
class AdmissionTicket:
    """Outcome of a successful admission check.

    ``reserved_bytes`` is what the controller will hold against the SLA
    while the job runs; ``estimated_bytes`` is the footprint of the
    job's preferred (unconstrained water-level) layout, for reporting.
    """

    reserved_bytes: float
    estimated_bytes: float


class AdmissionController:
    """Tracks the memory SLA across concurrently running jobs.

    ``memory_limit_bytes=None`` disables the SLA entirely: every job is
    admitted with a zero reservation.  The controller is thread-safe;
    the async service wraps :meth:`acquire` polling in its worker loop.
    """

    def __init__(
        self,
        memory_limit_bytes: float | None,
        *,
        config: SystemConfig,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if memory_limit_bytes is not None and memory_limit_bytes <= 0:
            raise ValueError(
                f"memory_limit_bytes must be positive, got {memory_limit_bytes}"
            )
        self.memory_limit_bytes = memory_limit_bytes
        self.config = config
        self.metrics = metrics
        self._in_flight = 0.0
        self._lock = threading.Lock()

    # -- SLA checks --------------------------------------------------------
    def check_multiply(
        self, a: ATMatrix, b: ATMatrix, *, tenant: str
    ) -> AdmissionTicket:
        """Admission decision for ``A x B`` from the estimated ρ̂_C.

        Raises :class:`AdmissionError` when the water-level sweep proves
        the SLA unsatisfiable for this product.
        """
        map_a = operand_density_map(a, self.config, structural=True)
        map_b = operand_density_map(b, self.config, structural=True)
        estimate = estimate_product_density(map_a, map_b)
        unconstrained = water_level_threshold(estimate, None, self.config)
        if self.memory_limit_bytes is None:
            return AdmissionTicket(0.0, unconstrained.total_bytes)
        try:
            bounded = water_level_threshold(
                estimate, self.memory_limit_bytes, self.config
            )
        except MemoryLimitError as error:
            self._count("service.admission.rejected")
            raise AdmissionError(
                f"job rejected: estimated result footprint breaches the "
                f"memory SLA of {self.memory_limit_bytes:.0f} B even at the "
                f"sparsest water level ({error})",
                tenant=tenant,
                estimated_bytes=unconstrained.total_bytes,
                limit_bytes=self.memory_limit_bytes,
            ) from error
        self._count("service.admission.admitted")
        return AdmissionTicket(bounded.total_bytes, unconstrained.total_bytes)

    def check_vector(self, matrix: ATMatrix, *, tenant: str) -> AdmissionTicket:
        """Admission decision for matvec/solve jobs (dense n x 1 results)."""
        footprint = float(matrix.rows) * self.config.dense_element_bytes
        if self.memory_limit_bytes is not None and footprint > self.memory_limit_bytes:
            self._count("service.admission.rejected")
            raise AdmissionError(
                f"job rejected: a dense {matrix.rows} x 1 result "
                f"({footprint:.0f} B) breaches the memory SLA of "
                f"{self.memory_limit_bytes:.0f} B",
                tenant=tenant,
                estimated_bytes=footprint,
                limit_bytes=self.memory_limit_bytes,
            )
        self._count("service.admission.admitted")
        return AdmissionTicket(footprint, footprint)

    # -- concurrent-footprint accounting -----------------------------------
    def try_acquire(self, reserved_bytes: float) -> bool:
        """Reserve ``reserved_bytes`` if it fits next to in-flight jobs.

        A reservation that fits the SLA alone is always grantable
        eventually; when nothing is in flight it is granted even if
        rounding pushed it past the limit, so admitted jobs can never
        deadlock against an empty service.
        """
        if self.memory_limit_bytes is None:
            return True
        with self._lock:
            fits = self._in_flight + reserved_bytes <= self.memory_limit_bytes
            if fits or self._in_flight == 0.0:
                self._in_flight += reserved_bytes
                self._gauge()
                return True
            return False

    def release(self, reserved_bytes: float) -> None:
        """Return a reservation made by :meth:`try_acquire`."""
        if self.memory_limit_bytes is None:
            return
        with self._lock:
            self._in_flight = max(0.0, self._in_flight - reserved_bytes)
            self._gauge()

    def remaining_bytes(self) -> float | None:
        """Budget currently free under the SLA (``None``: no SLA)."""
        if self.memory_limit_bytes is None:
            return None
        with self._lock:
            return max(0.0, self.memory_limit_bytes - self._in_flight)

    @property
    def in_flight_bytes(self) -> float:
        with self._lock:
            return self._in_flight

    # -- metrics -----------------------------------------------------------
    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service.admission.in_flight_bytes").set(
                self._in_flight
            )
