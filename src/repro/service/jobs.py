"""Job model and crash-safe job persistence for the matrix service.

Every submitted job gets its own directory under the service's job dir::

    <job_dir>/<job_id>/
        job.json      # spec + state + error + timestamps (atomic writes)
        ckpt/         # CheckpointStore spill dir (multiply jobs)
        result.npz    # dense result values + CRC-32C (atomic write)

``job.json`` is rewritten atomically on every state transition, so a
SIGKILL at any instant leaves each job either in its previous state or
its next one — never half-written.  On restart,
:meth:`JobStore.recover` returns the jobs that were queued or running
when the process died; the service re-enqueues them and multiply jobs
resume from their checkpoint journal instead of recomputing finished
tile-pairs (see docs/SERVICE.md for the recovery guarantees).
"""

from __future__ import annotations

import enum
import io
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import FormatError, IntegrityError, UnknownJobError
from ..ioutil import atomic_write, atomic_write_text, crc32c

#: Operations a job may request.
JOB_OPS = ("multiply", "matvec", "solve")


class JobState(str, enum.Enum):
    """Lifecycle of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEADLINE_EXCEEDED = "deadline_exceeded"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.DEADLINE_EXCEEDED,
        )

    @property
    def resumable(self) -> bool:
        """Terminal states a resubmission may restart from.

        Cancelled and deadline-expired jobs keep their checkpoint
        directory, so resubmitting the same job id resumes the multiply
        from the journal and completes bit-identically.
        """
        return self in (JobState.CANCELLED, JobState.DEADLINE_EXCEEDED)


@dataclass(frozen=True)
class JobSpec:
    """One tenant request, fully JSON-serializable.

    ``a`` and (for ``multiply``) ``b`` name matrices in the service's
    :class:`~repro.service.registry.MatrixRegistry`; ``rhs`` carries the
    vector operand of ``matvec``/``solve`` jobs inline.  ``params`` goes
    verbatim to the solver (``method``, ``tol``, ``max_iterations``...).

    ``deadline_seconds`` is the job's total execution budget measured
    from submission; an expired budget cancels the job cooperatively
    (``JobState.DEADLINE_EXCEEDED``, checkpoint kept).
    ``idempotency_key`` is a client-chosen token the server dedupes
    submissions by: resubmitting the same key returns the original job
    instead of executing twice.
    """

    job_id: str
    tenant: str
    op: str
    a: str
    b: str | None = None
    rhs: tuple[float, ...] | None = None
    params: dict[str, Any] = field(default_factory=dict)
    deadline_seconds: float | None = None
    idempotency_key: str | None = None

    def __post_init__(self) -> None:
        if self.op not in JOB_OPS:
            raise FormatError(f"unknown job op {self.op!r}; expected one of {JOB_OPS}")
        if self.op == "multiply" and self.b is None:
            raise FormatError("multiply jobs need a second matrix name 'b'")
        if self.op in ("matvec", "solve") and self.rhs is None:
            raise FormatError(f"{self.op} jobs need an inline 'rhs' vector")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise FormatError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )

    def to_json_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        if payload["rhs"] is not None:
            payload["rhs"] = list(payload["rhs"])
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> JobSpec:
        rhs = payload.get("rhs")
        return cls(
            job_id=str(payload["job_id"]),
            tenant=str(payload["tenant"]),
            op=str(payload["op"]),
            a=str(payload["a"]),
            b=payload.get("b"),
            rhs=tuple(float(x) for x in rhs) if rhs is not None else None,
            params=dict(payload.get("params") or {}),
            deadline_seconds=(
                float(payload["deadline_seconds"])
                if payload.get("deadline_seconds") is not None
                else None
            ),
            idempotency_key=(
                str(payload["idempotency_key"])
                if payload.get("idempotency_key") is not None
                else None
            ),
        )


@dataclass
class JobRecord:
    """A job's spec plus its mutable lifecycle state."""

    spec: JobSpec
    state: JobState = JobState.QUEUED
    error: str | None = None
    error_type: str | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    #: bytes the admission controller reserved for this job
    reserved_bytes: float = 0.0

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_json_dict(),
            "state": self.state.value,
            "error": self.error,
            "error_type": self.error_type,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "reserved_bytes": self.reserved_bytes,
        }

    @classmethod
    def from_json_dict(cls, payload: dict[str, Any]) -> JobRecord:
        return cls(
            spec=JobSpec.from_json_dict(payload["spec"]),
            state=JobState(payload["state"]),
            error=payload.get("error"),
            error_type=payload.get("error_type"),
            submitted_at=float(payload.get("submitted_at") or 0.0),
            finished_at=payload.get("finished_at"),
            reserved_bytes=float(payload.get("reserved_bytes") or 0.0),
        )


class JobStore:
    """Crash-safe persistence of job records and results.

    Purely synchronous and lock-free by design: the service serializes
    access from its event loop, and every write is atomic at the
    filesystem level, so the store itself never holds a state a crash
    could corrupt.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise FormatError(f"invalid job id {job_id!r}")
        return self.directory / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "ckpt"

    def _record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def _result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.npz"

    # -- records -----------------------------------------------------------
    def create(self, record: JobRecord) -> None:
        """Persist a fresh record (its directory must not exist yet)."""
        path = self.job_dir(record.spec.job_id)
        path.mkdir(parents=True, exist_ok=False)
        self.save(record)

    def save(self, record: JobRecord) -> None:
        """Atomically rewrite the record's ``job.json``."""
        atomic_write_text(
            self._record_path(record.spec.job_id),
            json.dumps(record.to_json_dict(), indent=2, sort_keys=True),
        )

    def load(self, job_id: str) -> JobRecord:
        path = self._record_path(job_id)
        if not path.exists():
            raise UnknownJobError(f"unknown job id {job_id!r}")
        payload = json.loads(path.read_text())
        return JobRecord.from_json_dict(payload)

    def load_all(self) -> list[JobRecord]:
        """Every persisted record, oldest submission first."""
        records = []
        for entry in sorted(self.directory.iterdir()):
            if entry.is_dir() and (entry / "job.json").exists():
                records.append(self.load(entry.name))
        records.sort(key=lambda record: record.submitted_at)
        return records

    def recover(self) -> list[JobRecord]:
        """Records interrupted by a crash: still queued or running."""
        return [record for record in self.load_all() if not record.state.terminal]

    # -- results -----------------------------------------------------------
    def save_result(self, job_id: str, values: np.ndarray) -> int:
        """Persist the job's dense result; returns its CRC-32C digest."""
        array = np.ascontiguousarray(values, dtype=np.float64)
        digest = crc32c(array.tobytes())
        buffer = io.BytesIO()
        np.savez(buffer, values=array, crc=np.array([digest], dtype=np.uint32))
        with atomic_write(self._result_path(job_id), mode="wb") as handle:
            handle.write(buffer.getvalue())
        return digest

    def load_result(self, job_id: str) -> np.ndarray:
        """The persisted result values, CRC-verified."""
        path = self._result_path(job_id)
        if not path.exists():
            raise UnknownJobError(f"job {job_id!r} has no stored result")
        with np.load(path) as archive:
            values = np.asarray(archive["values"], dtype=np.float64)
            stored = int(archive["crc"][0])
        actual = crc32c(np.ascontiguousarray(values).tobytes())
        if actual != stored:
            raise IntegrityError(
                f"result of job {job_id!r} failed its CRC-32C check "
                f"(stored {stored:#010x}, computed {actual:#010x})"
            )
        return values

    def has_result(self, job_id: str) -> bool:
        return self._result_path(job_id).exists()


def new_job_id(counter: int, tenant: str) -> str:
    """A readable, unique job id: time-ordered, tenant-tagged."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{tenant}-{counter:06d}"
