"""Resilient synchronous client for the JSON-lines matrix service.

:class:`ServiceClient` is the supported way to talk to a ``repro
serve`` endpoint from another process.  It layers the same resilience
discipline the engine applies to tile pairs onto the network edge:

* **per-request timeouts** — every connect and exchange is bounded by
  ``connect_timeout`` / ``request_timeout``;
* **total deadlines** — a :class:`Deadline` budget caps one logical
  operation across all its retries, and :meth:`ServiceClient.submit`
  propagates the remaining budget to the server as the job's
  ``deadline_seconds`` so the engine cancels cooperatively when the
  client has already given up;
* **jittered-exponential retries** — transport failures (refused or
  reset connections, timeouts, truncated frames) retry under the shared
  :class:`~repro.resilience.RetryPolicy` with the library's
  deterministic jitter; typed server-side rejections never retry
  blindly;
* **idempotent submission** — :meth:`ServiceClient.submit` attaches an
  ``idempotency_key`` (client-supplied or generated) that the server
  dedupes against its :class:`~repro.service.jobs.JobStore`, so a
  retried submit whose first response was lost never double-executes;
* **a circuit breaker** — after ``failure_threshold`` *consecutive*
  transport failures the breaker opens and requests fail fast with
  :class:`~repro.errors.CircuitOpenError` until ``reset_seconds`` have
  passed and a half-open probe succeeds.

Example::

    with ServiceClient("127.0.0.1", 7077) as client:
        deadline = Deadline(30.0)
        job_id = client.submit(
            tenant="t", op="multiply", a="G", b="G", deadline=deadline
        )
        status = client.wait(job_id, deadline=deadline)
        values = client.result(job_id)   # CRC-verified

See docs/SERVICE.md for the full client guide and docs/RESILIENCE.md
for the end-to-end fault matrix.
"""

from __future__ import annotations

import json
import socket
import time
import uuid
from typing import Any

import numpy as np

from .. import errors as _errors
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FrameTooLargeError,
    IntegrityError,
    ReproError,
    ServiceError,
    TransportError,
    UnknownJobError,
)
from ..ioutil import crc32c
from ..resilience.retry import RetryPolicy

__all__ = ["CircuitBreaker", "Deadline", "ServiceClient"]

#: Response frames larger than this are rejected client-side (matches
#: the server's request cap in :mod:`repro.service.protocol`).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: How long :meth:`ServiceClient.wait` sleeps between status polls.
_WAIT_POLL_SECONDS = 0.05

#: Default retry discipline for transport failures: a few quick,
#: jittered attempts — service calls are interactive, not batch.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=4,
    backoff_base_seconds=0.05,
    backoff_factor=2.0,
    backoff_max_seconds=1.0,
)


class Deadline:
    """A total time budget, measured against the monotonic clock.

    One ``Deadline`` spans a whole logical operation — submit, every
    retry of it, the wait and the result fetch can all share one budget.
    """

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline seconds must be positive, got {seconds}")
        self.seconds = seconds
        self._expires_at = time.monotonic() + seconds

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def check(self, what: str) -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.expired:
            raise DeadlineExceededError(
                f"client deadline ({self.seconds:g}s) expired before "
                f"{what} completed"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline({self.seconds:g}s, {self.remaining():.3f}s left)"


class CircuitBreaker:
    """Consecutive-transport-failure circuit breaker.

    Closed: requests flow.  Open (``failure_threshold`` consecutive
    failures): requests fail fast with
    :class:`~repro.errors.CircuitOpenError` until ``reset_seconds``
    pass.  Half-open: the first request after the cool-down probes the
    server; success closes the breaker, failure re-opens it.
    """

    def __init__(
        self, *, failure_threshold: int = 5, reset_seconds: float = 1.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.failures = 0
        self._opened_at: float | None = None

    @property
    def open(self) -> bool:
        """True while the breaker refuses requests (cool-down running)."""
        return (
            self._opened_at is not None
            and time.monotonic() - self._opened_at < self.reset_seconds
        )

    def before_attempt(self) -> None:
        """Fail fast when open; allow the half-open probe after cool-down."""
        if self._opened_at is None:
            return
        elapsed = time.monotonic() - self._opened_at
        if elapsed < self.reset_seconds:
            raise CircuitOpenError(
                f"circuit breaker open after {self.failures} consecutive "
                f"transport failures; retry in "
                f"{self.reset_seconds - elapsed:.3f}s",
                retry_after_seconds=self.reset_seconds - elapsed,
            )

    def record_success(self) -> None:
        self.failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._opened_at = time.monotonic()


class ServiceClient:
    """Synchronous, retrying JSON-lines client for the matrix service.

    Parameters
    ----------
    host, port:
        The ``repro serve`` endpoint.
    connect_timeout, request_timeout:
        Per-attempt bounds on establishing the connection and on one
        request/response exchange.
    retry:
        Transport-failure retry discipline (attempts, backoff, jitter);
        :data:`DEFAULT_CLIENT_RETRY` when omitted.
    breaker:
        The circuit breaker; a default 5-failure/1s breaker when
        omitted.

    The client keeps one connection open and transparently reconnects
    after transport failures.  It is not thread-safe: use one client
    per thread (they may share a server freely).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._sock: socket.socket | None = None
        self._buffer = b""

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None
        self._buffer = b""

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- public API --------------------------------------------------------
    def ping(self, *, deadline: Deadline | None = None) -> bool:
        response = self._rpc({"op": "ping"}, op="ping", deadline=deadline)
        return bool(response.get("pong"))

    def health(self, *, deadline: Deadline | None = None) -> dict[str, Any]:
        response = self._rpc({"op": "health"}, op="health", deadline=deadline)
        return dict(response["health"])

    def ready(self, *, deadline: Deadline | None = None) -> dict[str, Any]:
        response = self._rpc({"op": "ready"}, op="ready", deadline=deadline)
        return dict(response["ready"])

    def matrices(self, *, deadline: Deadline | None = None) -> list[str]:
        response = self._rpc(
            {"op": "matrices"}, op="matrices", deadline=deadline
        )
        return [str(name) for name in response["matrices"]]

    def metrics(self, *, deadline: Deadline | None = None) -> dict[str, Any]:
        response = self._rpc({"op": "metrics"}, op="metrics", deadline=deadline)
        return dict(response["metrics"])

    def submit(
        self,
        *,
        tenant: str,
        op: str,
        a: str,
        b: str | None = None,
        rhs: Any = None,
        params: dict[str, Any] | None = None,
        job_id: str | None = None,
        idempotency_key: str | None = None,
        deadline: Deadline | None = None,
    ) -> str:
        """Submit one job; returns its server-assigned id.

        Safe to retry by construction: the ``idempotency_key``
        (generated when not supplied) is fixed *before* the first
        attempt, so when a submit response is lost in transit the
        retried request dedupes server-side onto the original job
        instead of executing twice.  With a ``deadline``, the remaining
        budget travels as the job's ``deadline_seconds``; note that a
        resubmission of a cancelled job must use a *fresh* key (a key
        marks one logical submission, not one job).
        """
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        job: dict[str, Any] = {
            "op": op,
            "a": a,
            "b": b,
            "rhs": rhs,
            "params": params,
            "job_id": job_id,
            "idempotency_key": idempotency_key,
        }
        if deadline is not None:
            deadline.check("submit")
            job["deadline_seconds"] = deadline.remaining()
        response = self._rpc(
            {"op": "submit", "tenant": tenant, "job": job},
            op="submit",
            deadline=deadline,
        )
        return str(response["job_id"])

    def status(
        self, job_id: str, *, deadline: Deadline | None = None
    ) -> dict[str, Any]:
        response = self._rpc(
            {"op": "status", "job_id": job_id}, op="status", deadline=deadline
        )
        return dict(response["status"])

    def result(
        self, job_id: str, *, deadline: Deadline | None = None
    ) -> np.ndarray:
        """The finished job's dense result values, CRC-verified locally.

        Raises :class:`~repro.errors.IntegrityError` when the payload's
        values do not match the digest the server computed — a mangled
        or tampered result is never silently returned.
        """
        response = self._rpc(
            {"op": "result", "job_id": job_id}, op="result", deadline=deadline
        )
        payload = response["result"]
        values = np.asarray(payload["values"], dtype=np.float64).reshape(
            payload["shape"]
        )
        actual = crc32c(np.ascontiguousarray(values).tobytes())
        stored = int(payload["crc32c"])
        if actual != stored:
            raise IntegrityError(
                f"result of job {job_id!r} failed its CRC-32C check in "
                f"transit (stored {stored:#010x}, computed {actual:#010x})"
            )
        return values

    def cancel(self, job_id: str, *, deadline: Deadline | None = None) -> bool:
        response = self._rpc(
            {"op": "cancel", "job_id": job_id}, op="cancel", deadline=deadline
        )
        return bool(response.get("cancelled"))

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        deadline: Deadline | None = None,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status."""
        terminal = ("done", "failed", "cancelled", "deadline_exceeded")
        expires = time.monotonic() + timeout
        while True:
            if deadline is not None:
                deadline.check(f"wait for job {job_id}")
            status = self.status(job_id, deadline=deadline)
            if status.get("state") in terminal:
                return status
            if time.monotonic() >= expires:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(_WAIT_POLL_SECONDS)

    # -- transport ---------------------------------------------------------
    def _rpc(
        self,
        payload: dict[str, Any],
        *,
        op: str,
        deadline: Deadline | None,
    ) -> dict[str, Any]:
        """One request with retries, breaker accounting and error mapping."""
        attempts = max(1, self.retry.max_attempts)
        last_error: TransportError | None = None
        for attempt in range(1, attempts + 1):
            if deadline is not None:
                deadline.check(op)
            self.breaker.before_attempt()
            try:
                response = self._exchange(payload, deadline)
            except TransportError as error:
                self.breaker.record_failure()
                self.close()
                last_error = error
                if attempt < attempts:
                    delay = self.retry.backoff_seconds(("client", op), attempt)
                    if deadline is not None:
                        delay = min(delay, deadline.remaining())
                    if delay > 0:
                        time.sleep(delay)
                continue
            self.breaker.record_success()
            if response.get("ok"):
                return response
            self._raise_remote(response.get("error"))
        assert last_error is not None
        raise last_error

    def _exchange(
        self, payload: dict[str, Any], deadline: Deadline | None
    ) -> dict[str, Any]:
        """One bounded send/receive over the (re)connected socket."""
        try:
            sock = self._connect(deadline)
            timeout = self.request_timeout
            if deadline is not None:
                timeout = min(timeout, max(deadline.remaining(), 1e-3))
            sock.settimeout(timeout)
            sock.sendall(json.dumps(payload).encode() + b"\n")
            frame = self._read_frame(sock)
        except TransportError:
            raise
        except (OSError, ValueError) as error:
            raise TransportError(
                f"exchange with {self.host}:{self.port} failed: {error}",
                cause=error,
            ) from error
        try:
            response = json.loads(frame)
        except ValueError as error:
            raise TransportError(
                f"undecodable response frame from {self.host}:{self.port}: "
                f"{error}",
                cause=error,
            ) from error
        if not isinstance(response, dict):
            raise TransportError(
                f"response from {self.host}:{self.port} is not a JSON object"
            )
        return response

    def _connect(self, deadline: Deadline | None) -> socket.socket:
        if self._sock is not None:
            return self._sock
        timeout = self.connect_timeout
        if deadline is not None:
            timeout = min(timeout, max(deadline.remaining(), 1e-3))
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        except OSError as error:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {error}",
                cause=error,
            ) from error
        self._buffer = b""
        return self._sock

    def _read_frame(self, sock: socket.socket) -> bytes:
        """One newline-terminated response frame, size-capped."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline != -1:
                frame = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1:]
                return frame
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise FrameTooLargeError(
                    f"response frame exceeds the {MAX_FRAME_BYTES} byte cap",
                    limit_bytes=MAX_FRAME_BYTES,
                )
            chunk = sock.recv(65536)
            if not chunk:
                raise TransportError(
                    f"connection to {self.host}:{self.port} closed mid-frame "
                    f"({len(self._buffer)} bytes buffered)"
                )
            self._buffer += chunk

    def _raise_remote(self, error_obj: Any) -> None:
        """Re-raise a server-side error payload as its typed class."""
        if not isinstance(error_obj, dict):
            raise ServiceError("server reported an error without detail")
        name = str(error_obj.get("type", "ServiceError"))
        message = str(error_obj.get("message", ""))
        exc_type = getattr(_errors, name, None)
        if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
            raise exc_type(message)
        if name == "BadRequest":
            raise ServiceError(f"bad request: {message}")
        raise ServiceError(f"{name}: {message}")


# Referenced for the docstring contract: clients see UnknownJobError
# (and every other typed rejection) exactly as in-process callers do.
_ = UnknownJobError
