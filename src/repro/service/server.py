"""The in-process matrix service: session, queue, workers, recovery.

:class:`MatrixService` wraps one :class:`~repro.engine.session.Session`
— and therefore one shared :class:`~repro.engine.cache.PlanCache` — in
an asyncio job server.  Tenants submit ``multiply`` / ``matvec`` /
``solve`` jobs against named matrices; a bounded pool of worker tasks
executes them (the numeric work runs in the event loop's thread-pool
executor so the loop stays responsive); every job is journaled through
a :class:`~repro.service.jobs.JobStore` so a SIGKILL'd server resumes
its in-flight jobs bit-identically on restart.

Request fates and limits:

* :class:`~repro.errors.UnknownMatrixError` — the spec names a matrix
  the registry does not hold;
* :class:`~repro.errors.QuotaExceededError` — the tenant already has
  ``tenant_quota`` jobs pending, or the service queue is at
  ``max_queue_depth`` (global load shedding);
* :class:`~repro.errors.AdmissionError` — the water-level sweep proves
  the job's ρ̂_C footprint breaches the memory SLA (see
  :mod:`repro.service.admission`).

Metric catalogue (``service.*``): ``queue_depth`` gauge,
``admission.admitted`` / ``admission.rejected`` / ``shed`` counters,
``admission.in_flight_bytes`` gauge, ``jobs_completed`` /
``jobs_failed`` / ``jobs_cancelled`` / ``jobs_deadline_exceeded``
counters, the ``draining`` gauge, per-tenant
``latency_seconds.<tenant>`` histograms — all in the service observer's
registry, exported by :meth:`MatrixService.metrics` next to the
plan-cache hit rate.

Deadlines and cancellation: a submission may carry ``deadline_seconds``
(total budget from submission) and an ``idempotency_key`` (dedupe token
for safe client retries).  Running jobs hold a
:class:`~repro.resilience.CancelToken` that :meth:`MatrixService.cancel`
and :meth:`MatrixService.drain` trip; the engine observes it at
tile-pair boundaries, flushes the job checkpoint, and the job lands
``CANCELLED`` / ``DEADLINE_EXCEEDED`` — both resumable by resubmitting
the same job id.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..config import SystemConfig
from ..engine.options import MultiplyOptions
from ..engine.session import Session
from ..errors import (
    DeadlineExceededError,
    OperationCancelledError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    UnknownJobError,
)
from ..observe import Observation
from ..resilience.cancel import CancelToken
from ..resilience.checkpoint import CheckpointStore
from .admission import AdmissionController
from .jobs import JobRecord, JobSpec, JobState, JobStore, new_job_id
from .registry import MatrixRegistry

#: How long a worker sleeps between footprint-acquisition retries.
_ACQUIRE_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class JobStatus:
    """Snapshot of one job as reported to clients."""

    job_id: str
    tenant: str
    op: str
    state: JobState
    error: str | None
    error_type: str | None
    reserved_bytes: float

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "op": self.op,
            "state": self.state.value,
            "error": self.error,
            "error_type": self.error_type,
            "reserved_bytes": self.reserved_bytes,
        }


class MatrixService:
    """Async multi-tenant job server over one shared Session.

    Parameters
    ----------
    registry:
        The named matrices tenants may reference.
    job_dir:
        Directory for job journals, checkpoints and results; reusing a
        previous server's directory recovers its unfinished jobs on
        :meth:`start`.
    memory_limit_bytes:
        The service memory SLA enforced by admission control and, per
        job, by the engine's water-level method (``None``: no SLA).
    workers:
        Number of concurrent worker tasks (bounded pool).
    tenant_quota:
        Maximum queued-or-running jobs per tenant.
    max_queue_depth:
        Global pending-job bound; submissions beyond it are shed.
    config, options, observer:
        Forwarded to the underlying :class:`Session`; the observer
        (created automatically when omitted) receives every span and
        metric the engine and the service emit.
    """

    def __init__(
        self,
        registry: MatrixRegistry,
        *,
        job_dir: str | Path,
        memory_limit_bytes: float | None = None,
        workers: int = 2,
        tenant_quota: int = 8,
        max_queue_depth: int = 64,
        config: SystemConfig | None = None,
        options: MultiplyOptions | None = None,
        observer: Observation | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.registry = registry
        self.store = JobStore(job_dir)
        self.observer = observer if observer is not None else Observation()
        self.session = Session(
            config=config or registry.config,
            options=options,
            observer=self.observer,
        )
        self.admission = AdmissionController(
            memory_limit_bytes,
            config=self.session.config,
            metrics=self.observer.metrics,
        )
        self.tenant_quota = tenant_quota
        self.max_queue_depth = max_queue_depth
        self.workers = workers
        self._records: dict[str, JobRecord] = {}
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._tasks: list[asyncio.Task[None]] = []
        self._job_counter = 0
        self._started = False
        self._draining = False
        #: cancel tokens of currently running jobs, by job id
        self._cancel_tokens: dict[str, CancelToken] = {}
        #: idempotency key -> job id, rebuilt from the store on start
        self._idempotency: dict[str, str] = {}

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> int:
        """Recover unfinished jobs and launch the worker pool.

        Returns the number of jobs recovered from the job directory.
        """
        if self._started:
            return 0
        self._started = True
        recovered = 0
        loop = asyncio.get_running_loop()
        for record in await loop.run_in_executor(None, self.store.load_all):
            self._records[record.spec.job_id] = record
            if record.spec.idempotency_key is not None:
                self._idempotency[record.spec.idempotency_key] = record.spec.job_id
            if not record.state.terminal:
                record.state = JobState.QUEUED
                await loop.run_in_executor(None, self.store.save, record)
                self._queue.put_nowait(record.spec.job_id)
                recovered += 1
        self._gauge_queue_depth()
        for index in range(self.workers):
            task = asyncio.create_task(self._worker(), name=f"svc-worker-{index}")
            self._tasks.append(task)
        return recovered

    async def stop(self, *, drain: bool = False) -> None:
        """Stop the worker pool (``drain=True``: finish queued jobs first)."""
        if drain:
            await self._queue.join()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        self._started = False

    async def drain(self, *, timeout: float = 30.0) -> None:
        """Graceful shutdown: settle in-flight jobs, strand nothing.

        Flips the service into draining mode (new submissions are
        refused with :class:`~repro.errors.ServiceUnavailableError`,
        queued jobs stay ``QUEUED`` on disk for the next server to
        re-enqueue), gives running jobs ``timeout`` seconds to finish,
        then trips their cancel tokens with reason ``"drain"`` — each
        job checkpoints at the next tile-pair boundary and its record
        reverts to ``QUEUED`` so no ``RUNNING`` record is stranded.
        Finally stops the worker pool.
        """
        self._draining = True
        self.observer.metrics.gauge("service.draining").set(1)

        def running() -> bool:
            return any(
                record.state is JobState.RUNNING
                for record in self._records.values()
            )

        deadline = time.monotonic() + timeout
        while running() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for token in list(self._cancel_tokens.values()):
            token.cancel("drain")
        # Cancelled jobs unwind within about one tile-pair; bound the
        # wait anyway so a wedged kernel cannot hold shutdown hostage.
        grace = time.monotonic() + max(5.0, timeout)
        while running() and time.monotonic() < grace:
            await asyncio.sleep(0.02)
        await self.stop()

    def health(self) -> dict[str, Any]:
        """Liveness snapshot: cheap, lock-free, safe to poll."""
        return {
            "status": "ok",
            "started": self._started,
            "draining": self._draining,
            "jobs": len(self._records),
            "queue_depth": self._pending_count(),
        }

    def ready(self) -> dict[str, Any]:
        """Readiness gate: can this server accept a submission right now?

        Ready means started, not draining, at least one registered
        matrix to serve, and queue headroom below ``max_queue_depth``.
        """
        pending = self._pending_count()
        ready = (
            self._started
            and not self._draining
            and len(self.registry) > 0
            and pending < self.max_queue_depth
        )
        return {
            "ready": ready,
            "started": self._started,
            "draining": self._draining,
            "registered_matrices": len(self.registry),
            "queue_depth": pending,
            "max_queue_depth": self.max_queue_depth,
        }

    async def __aenter__(self) -> MatrixService:
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- client API --------------------------------------------------------
    async def submit(
        self,
        *,
        tenant: str,
        op: str,
        a: str,
        b: str | None = None,
        rhs: Any = None,
        params: dict[str, Any] | None = None,
        job_id: str | None = None,
        deadline_seconds: float | None = None,
        idempotency_key: str | None = None,
    ) -> str:
        """Validate, admit, persist and enqueue one job; returns its id.

        Raises the typed service errors documented on the class; a
        raised submission leaves no trace in the job directory.

        An ``idempotency_key`` the service has already seen returns the
        original job id without executing anything — a client-side retry
        of a submit whose response was lost never double-executes.
        Resubmitting an explicit ``job_id`` whose previous run ended
        ``CANCELLED``/``DEADLINE_EXCEEDED`` re-enqueues it; the job's
        checkpoint directory survived, so the rerun resumes from the
        journal and completes bit-identically.
        """
        if self._draining:
            raise ServiceUnavailableError(
                "service is draining; resubmit to the restarted server",
                tenant=tenant,
            )
        if idempotency_key is not None:
            known = self._idempotency.get(idempotency_key)
            if known is not None:
                return known
        self._job_counter += 1
        if job_id is None:
            job_id = new_job_id(self._job_counter, tenant)
        rhs_tuple = (
            tuple(float(x) for x in np.asarray(rhs, dtype=np.float64).ravel())
            if rhs is not None
            else None
        )
        spec = JobSpec(
            job_id=job_id,
            tenant=tenant,
            op=op,
            a=a,
            b=b,
            rhs=rhs_tuple,
            params=dict(params or {}),
            deadline_seconds=deadline_seconds,
            idempotency_key=idempotency_key,
        )
        existing = self._records.get(job_id)
        if existing is not None and not existing.state.resumable:
            raise ServiceError(
                f"job id {job_id!r} already exists "
                f"(state: {existing.state.value})",
                tenant=tenant,
            )
        self._check_quota(tenant)
        matrix_a = self.registry.get(spec.a)
        if spec.op == "multiply":
            assert spec.b is not None  # JobSpec validation guarantees it
            matrix_b = self.registry.get(spec.b)
            ticket = self.admission.check_multiply(matrix_a, matrix_b, tenant=tenant)
        else:
            ticket = self.admission.check_vector(matrix_a, tenant=tenant)
        loop = asyncio.get_running_loop()
        if existing is not None:
            # Resubmission of a cancelled/deadline-expired job: reuse
            # the record (and its checkpoint directory) with a fresh
            # deadline budget.
            existing.spec = spec
            existing.state = JobState.QUEUED
            existing.error = None
            existing.error_type = None
            existing.submitted_at = time.time()
            existing.finished_at = None
            existing.reserved_bytes = ticket.reserved_bytes
            record = existing
            await loop.run_in_executor(None, self.store.save, record)
        else:
            record = JobRecord(
                spec=spec,
                state=JobState.QUEUED,
                submitted_at=time.time(),
                reserved_bytes=ticket.reserved_bytes,
            )
            await loop.run_in_executor(None, self.store.create, record)
        self._records[job_id] = record
        if idempotency_key is not None:
            self._idempotency[idempotency_key] = job_id
        self._queue.put_nowait(job_id)
        self._gauge_queue_depth()
        return job_id

    async def status(self, job_id: str) -> JobStatus:
        record = self._record(job_id)
        return JobStatus(
            job_id=record.spec.job_id,
            tenant=record.spec.tenant,
            op=record.spec.op,
            state=record.state,
            error=record.error,
            error_type=record.error_type,
            reserved_bytes=record.reserved_bytes,
        )

    async def result(self, job_id: str) -> np.ndarray:
        """The finished job's dense result values (CRC-verified).

        Raises :class:`UnknownJobError` for unknown ids and
        :class:`ReproError` subclasses replaying a failed job's error.
        """
        record = self._record(job_id)
        if record.state is JobState.FAILED:
            raise ReproError(
                f"job {job_id} failed ({record.error_type}): {record.error}"
            )
        if record.state is not JobState.DONE:
            raise UnknownJobError(
                f"job {job_id} has no result yet (state: {record.state.value})"
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.store.load_result, job_id)

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; terminal jobs are not touched.

        A queued job lands ``CANCELLED`` immediately.  A running job's
        :class:`~repro.resilience.CancelToken` is tripped: the multiply
        stops at the next tile-pair boundary, flushes its checkpoint and
        the worker records ``CANCELLED`` — resumable via resubmission.
        """
        record = self._record(job_id)
        if record.state is JobState.RUNNING:
            token = self._cancel_tokens.get(job_id)
            if token is None:
                return False
            token.cancel("client request")
            return True
        if record.state is not JobState.QUEUED:
            return False
        record.state = JobState.CANCELLED
        record.finished_at = time.time()
        self.observer.metrics.counter("service.jobs_cancelled").inc()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.store.save, record)
        self._gauge_queue_depth()
        return True

    async def wait(self, job_id: str, *, timeout: float = 60.0) -> JobStatus:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = await self.status(job_id)
            if status.state.terminal:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {status.state.value}")
            await asyncio.sleep(0.01)

    def metrics(self) -> dict[str, Any]:
        """JSON-serializable export of the service's whole metric surface."""
        states: dict[str, int] = {}
        for record in self._records.values():
            states[record.state.value] = states.get(record.state.value, 0) + 1
        cache = self.session.cache_stats()
        return {
            "queue_depth": self._pending_count(),
            "draining": self._draining,
            "jobs": states,
            "admission": {
                "memory_limit_bytes": self.admission.memory_limit_bytes,
                "in_flight_bytes": self.admission.in_flight_bytes,
                "admitted": self.observer.metrics.value("service.admission.admitted"),
                "rejected": self.observer.metrics.value("service.admission.rejected"),
                "shed": self.observer.metrics.value("service.shed"),
            },
            "plan_cache": {**cache.as_dict(), "hit_rate": cache.hit_rate},
            "metrics": self.observer.metrics.as_dict(),
        }

    # -- internals ---------------------------------------------------------
    def _record(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job id {job_id!r}")
        return record

    def _pending_count(self, tenant: str | None = None) -> int:
        return sum(
            1
            for record in self._records.values()
            if not record.state.terminal
            and (tenant is None or record.spec.tenant == tenant)
        )

    def _check_quota(self, tenant: str) -> None:
        pending = self._pending_count(tenant)
        if pending >= self.tenant_quota:
            self.observer.metrics.counter("service.shed").inc()
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {pending} jobs pending "
                f"(quota: {self.tenant_quota})",
                tenant=tenant,
                pending=pending,
                quota=self.tenant_quota,
            )
        total = self._pending_count()
        if total >= self.max_queue_depth:
            self.observer.metrics.counter("service.shed").inc()
            raise QuotaExceededError(
                f"service queue is full ({total} jobs pending, "
                f"depth limit: {self.max_queue_depth})",
                tenant=tenant,
                pending=total,
                quota=self.max_queue_depth,
            )

    def _gauge_queue_depth(self) -> None:
        self.observer.metrics.gauge("service.queue_depth").set(self._pending_count())

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            try:
                record = self._records.get(job_id)
                if record is None or record.state is not JobState.QUEUED:
                    continue  # cancelled (or lost) while queued
                if self._draining:
                    # Leave the record QUEUED on disk: the restarted
                    # server re-enqueues it in start().
                    continue
                remaining: float | None = None
                if record.spec.deadline_seconds is not None:
                    remaining = (
                        record.submitted_at
                        + record.spec.deadline_seconds
                        - time.time()
                    )
                    if remaining <= 0:
                        await self._finish_deadline_exceeded(
                            record, "deadline expired while queued"
                        )
                        continue
                token = CancelToken(deadline_seconds=remaining)
                self._cancel_tokens[job_id] = token
                acquired = False
                while not (
                    acquired := self.admission.try_acquire(record.reserved_bytes)
                ):
                    if (
                        self._draining
                        or token.cancelled
                        or record.state is not JobState.QUEUED
                    ):
                        break
                    await asyncio.sleep(_ACQUIRE_POLL_SECONDS)
                if not acquired:
                    self._cancel_tokens.pop(job_id, None)
                    if record.state is JobState.QUEUED and token.deadline_expired:
                        await self._finish_deadline_exceeded(
                            record, "deadline expired awaiting admission"
                        )
                    # Drain leaves the record QUEUED; an external cancel
                    # already persisted CANCELLED.
                    continue
                record.state = JobState.RUNNING
                await loop.run_in_executor(None, self.store.save, record)
                started = time.monotonic()
                try:
                    values = await loop.run_in_executor(
                        None, self._execute, record, token
                    )
                    await loop.run_in_executor(
                        None, self.store.save_result, job_id, values
                    )
                    record.state = JobState.DONE
                    self.observer.metrics.counter("service.jobs_completed").inc()
                except DeadlineExceededError as error:
                    record.state = JobState.DEADLINE_EXCEEDED
                    record.error = str(error)
                    record.error_type = type(error).__name__
                    self.observer.metrics.counter(
                        "service.jobs_deadline_exceeded"
                    ).inc()
                except OperationCancelledError as error:
                    if error.reason == "drain":
                        # The checkpoint flushed; hand the job back to
                        # the queue so the next server resumes it.
                        record.state = JobState.QUEUED
                        record.error = None
                        record.error_type = None
                    else:
                        record.state = JobState.CANCELLED
                        record.error = str(error)
                        record.error_type = type(error).__name__
                        self.observer.metrics.counter(
                            "service.jobs_cancelled"
                        ).inc()
                except Exception as error:  # noqa: BLE001 — jobs must land FAILED
                    record.state = JobState.FAILED
                    record.error = str(error)
                    record.error_type = type(error).__name__
                    self.observer.metrics.counter("service.jobs_failed").inc()
                finally:
                    self._cancel_tokens.pop(job_id, None)
                    self.admission.release(record.reserved_bytes)
                    if record.state.terminal:
                        record.finished_at = time.time()
                    # wait() observes the in-memory terminal state, so the
                    # service may be stopped (and this task cancelled) while
                    # the persist below is in flight — shield it so the
                    # on-disk record cannot be left behind at RUNNING.
                    await asyncio.shield(
                        loop.run_in_executor(None, self.store.save, record)
                    )
                    elapsed = time.monotonic() - started
                    self.observer.metrics.histogram(
                        f"service.latency_seconds.{record.spec.tenant}"
                    ).observe(elapsed)
                    self._gauge_queue_depth()
            finally:
                self._queue.task_done()

    async def _finish_deadline_exceeded(
        self, record: JobRecord, message: str
    ) -> None:
        """Land a job whose budget ran out before it ever executed."""
        record.state = JobState.DEADLINE_EXCEEDED
        record.error = message
        record.error_type = DeadlineExceededError.__name__
        record.finished_at = time.time()
        self.observer.metrics.counter("service.jobs_deadline_exceeded").inc()
        loop = asyncio.get_running_loop()
        await asyncio.shield(
            loop.run_in_executor(None, self.store.save, record)
        )
        self._gauge_queue_depth()

    def _execute(self, record: JobRecord, cancel: CancelToken) -> np.ndarray:
        """Run one job to completion (called in the executor thread).

        The cancel token threads through ``MultiplyOptions`` into
        ``execute_plan``, which polls it at tile-pair boundaries; a
        tripped token flushes the job's checkpoint before unwinding, so
        the journal under ``ckpt/`` stays resumable.
        """
        cancel.check()
        spec = record.spec
        matrix_a = self.registry.get(spec.a)
        if spec.op == "multiply":
            assert spec.b is not None
            matrix_b = self.registry.get(spec.b)
            checkpoint = CheckpointStore(
                self.store.checkpoint_dir(spec.job_id), resume=True
            )
            options = self.session.options.replace(
                memory_limit_bytes=self.admission.memory_limit_bytes,
                checkpoint=checkpoint,
                cancel=cancel,
            )
            from ..core.atmult import atmult

            result, _ = atmult(matrix_a, matrix_b, options=options)
            return result.to_dense()
        assert spec.rhs is not None
        rhs = np.asarray(spec.rhs, dtype=np.float64)
        if spec.op == "matvec":
            return self.session.matvec(matrix_a, rhs)
        outcome = self.session.solve(matrix_a, rhs, **spec.params)
        outcome.raise_if_failed()
        return np.asarray(outcome.solution, dtype=np.float64)
