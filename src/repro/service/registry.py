"""The named-matrix registry behind the service endpoints.

Tenants address operands by *name*, not by payload: matrices are
registered once (from an in-memory operand or a file) and every job
references them by their registry name.  Besides keeping request
payloads small, this is what makes the shared plan cache effective —
all tenants multiplying ``"web_graph"`` hit the same
:class:`~repro.engine.cache.PlanKey` because they literally share the
one :class:`~repro.core.atmatrix.ATMatrix` instance and therefore its
structure fingerprint.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.atmatrix import ATMatrix
from ..core.operands import MatrixOperand, as_at_matrix
from ..errors import FormatError, UnknownMatrixError
from ..formats.coo import COOMatrix


class MatrixRegistry:
    """Thread-safe name → :class:`ATMatrix` store.

    Matrices are adaptively partitioned on registration (via
    :func:`~repro.core.operands.as_at_matrix` under the registry's
    configuration), so job execution starts from ready AT Matrices.
    """

    def __init__(self, *, config: SystemConfig | None = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self._matrices: dict[str, ATMatrix] = {}
        self._lock = threading.Lock()

    def register(self, name: str, operand: MatrixOperand | COOMatrix) -> ATMatrix:
        """Register ``operand`` under ``name`` (replacing any holder).

        Staged :class:`~repro.formats.coo.COOMatrix` input is adaptively
        partitioned into an AT Matrix; ready operands (AT/CSR/dense) are
        wrapped as-is.
        """
        if not name:
            raise FormatError("matrix name must be non-empty")
        if isinstance(operand, COOMatrix):
            from ..core.builder import build_at_matrix

            at = build_at_matrix(operand, self.config)
        else:
            at = as_at_matrix(operand, self.config)
        with self._lock:
            self._matrices[name] = at
        return at

    def register_file(self, name: str, path: str | Path) -> ATMatrix:
        """Register a matrix loaded from ``path``.

        ``.mtx`` files are parsed as Matrix Market; anything else is
        treated as a repro ``.npz`` AT-Matrix archive.
        """
        from ..formats import load_at_matrix, read_matrix_market

        source = Path(path)
        operand: MatrixOperand | COOMatrix
        if source.suffix.lower() == ".mtx":
            operand = read_matrix_market(source)
        else:
            operand = load_at_matrix(source)
        return self.register(name, operand)

    def get(self, name: str) -> ATMatrix:
        """The matrix registered under ``name``."""
        with self._lock:
            matrix = self._matrices.get(name)
        if matrix is None:
            raise UnknownMatrixError(
                f"no matrix registered under {name!r}; "
                f"known: {sorted(self.names()) or '(none)'}"
            )
        return matrix

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._matrices)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._matrices

    def __len__(self) -> int:
        with self._lock:
            return len(self._matrices)
