"""JSON-lines TCP front end for the matrix service.

One request per line, one response per line — trivially scriptable with
``nc`` and language-agnostic.  Requests are JSON objects with an ``op``
field:

* ``{"op": "submit", "tenant": T, "job": {"op": "multiply", "a": ...,
  "b": ...}}`` → ``{"ok": true, "job_id": ...}``
* ``{"op": "status", "job_id": J}`` → ``{"ok": true, "status": {...}}``
* ``{"op": "result", "job_id": J}`` → ``{"ok": true, "result":
  {"shape": [r, c], "values": [...], "crc32c": N}}`` — the flattened
  row-major values plus their CRC-32C digest, so clients can verify
  bit-identical recovery end to end.
* ``{"op": "cancel", "job_id": J}`` → ``{"ok": true, "cancelled": bool}``
* ``{"op": "metrics"}`` → the :meth:`MatrixService.metrics` export.
* ``{"op": "matrices"}`` → the registered matrix names.
* ``{"op": "ping"}`` → liveness probe.

Every :class:`~repro.errors.ReproError` maps to ``{"ok": false,
"error": {"type": <class name>, "message": ...}}`` with the connection
kept open, so one tenant's rejected job never disturbs another tenant's
stream.  Connections are served concurrently by asyncio; the service's
worker pool bounds the actual compute.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any

import numpy as np

from ..errors import FormatError, ReproError
from ..ioutil import crc32c
from .server import MatrixService

#: Per-line stream buffer: result payloads carry whole (small) matrices
#: as JSON, far past asyncio's 64 KiB default.
STREAM_LIMIT_BYTES = 64 * 1024 * 1024


def _error_payload(error: ReproError) -> dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def _result_payload(values: np.ndarray) -> dict[str, Any]:
    array = np.ascontiguousarray(values, dtype=np.float64)
    return {
        "shape": list(array.shape),
        "values": [float(x) for x in array.ravel()],
        "crc32c": crc32c(array.tobytes()),
    }


async def _dispatch(service: MatrixService, request: dict[str, Any]) -> dict[str, Any]:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "matrices":
        return {"ok": True, "matrices": service.registry.names()}
    if op == "metrics":
        return {"ok": True, "metrics": service.metrics()}
    if op == "submit":
        job = request.get("job")
        if not isinstance(job, dict):
            raise FormatError("submit requests need a 'job' object")
        job_id = await service.submit(
            tenant=str(request.get("tenant", "anonymous")),
            op=str(job.get("op", "")),
            a=str(job.get("a", "")),
            b=job.get("b"),
            rhs=job.get("rhs"),
            params=job.get("params"),
            job_id=job.get("job_id"),
        )
        return {"ok": True, "job_id": job_id}
    if op in ("status", "result", "cancel"):
        job_id = str(request.get("job_id", ""))
        if op == "status":
            status = await service.status(job_id)
            return {"ok": True, "status": status.to_json_dict()}
        if op == "result":
            values = await service.result(job_id)
            return {"ok": True, "result": _result_payload(values)}
        cancelled = await service.cancel(job_id)
        return {"ok": True, "cancelled": cancelled}
    raise FormatError(f"unknown request op {op!r}")


async def _handle_connection(
    service: MatrixService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise FormatError("requests must be JSON objects")
                response = await _dispatch(service, request)
            except ReproError as error:
                response = _error_payload(error)
            except (ValueError, TypeError, KeyError) as error:
                response = {
                    "ok": False,
                    "error": {"type": "BadRequest", "message": str(error)},
                }
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def serve(
    service: MatrixService, *, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Start the service (if needed) and bind the JSON-lines endpoint.

    ``port=0`` binds an ephemeral port; read the bound address from the
    returned server's ``sockets``.  The caller owns the loop:
    ``async with server: await server.serve_forever()``.
    """
    await service.start()

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host=host, port=port, limit=STREAM_LIMIT_BYTES
    )
