"""JSON-lines TCP front end for the matrix service.

One request per line, one response per line — trivially scriptable with
``nc`` and language-agnostic.  Requests are JSON objects with an ``op``
field:

* ``{"op": "submit", "tenant": T, "job": {"op": "multiply", "a": ...,
  "b": ...}}`` → ``{"ok": true, "job_id": ...}``
* ``{"op": "status", "job_id": J}`` → ``{"ok": true, "status": {...}}``
* ``{"op": "result", "job_id": J}`` → ``{"ok": true, "result":
  {"shape": [r, c], "values": [...], "crc32c": N}}`` — the flattened
  row-major values plus their CRC-32C digest, so clients can verify
  bit-identical recovery end to end.
* ``{"op": "cancel", "job_id": J}`` → ``{"ok": true, "cancelled": bool}``
* ``{"op": "metrics"}`` → the :meth:`MatrixService.metrics` export.
* ``{"op": "matrices"}`` → the registered matrix names.
* ``{"op": "ping"}`` → liveness probe.
* ``{"op": "health"}`` → :meth:`MatrixService.health` liveness detail.
* ``{"op": "ready"}`` → :meth:`MatrixService.ready` readiness gate
  (started, not draining, registry loaded, queue headroom).

Submit jobs may carry ``deadline_seconds`` (total budget, propagated
into the engine's cooperative cancellation) and ``idempotency_key``
(server-side dedupe: a retried submit never double-executes).

Every :class:`~repro.errors.ReproError` maps to ``{"ok": false,
"error": {"type": <class name>, "message": ...}}`` with the connection
kept open, so one tenant's rejected job never disturbs another tenant's
stream.  Connections are served concurrently by asyncio; the service's
worker pool bounds the actual compute.

Frames are bounded: a request line longer than
:data:`STREAM_LIMIT_BYTES` is discarded (the connection survives) and
answered with a typed ``FrameTooLargeError`` payload instead of growing
the buffer without bound; a frame truncated by a mid-line disconnect
closes that connection without disturbing the server.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any

import numpy as np

from ..errors import FormatError, FrameTooLargeError, ReproError
from ..ioutil import crc32c
from .server import MatrixService

#: Per-line stream buffer and frame-size cap: result payloads carry
#: whole (small) matrices as JSON, far past asyncio's 64 KiB default.
#: Requests beyond this are rejected with ``FrameTooLargeError``.
STREAM_LIMIT_BYTES = 64 * 1024 * 1024


def _error_payload(error: ReproError) -> dict[str, Any]:
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


async def _read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """One newline-terminated request frame, size-capped.

    Returns ``None`` on clean EOF (including a disconnect that
    truncated the frame mid-line — the client is gone; there is nobody
    to answer).  An oversized frame is *discarded* — buffered bytes
    through the terminating newline are consumed so the connection
    stays usable — and reported as
    :class:`~repro.errors.FrameTooLargeError` for a typed response.
    """
    try:
        return await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        # EOF before the newline: a final unterminated frame (legacy
        # clients) is still served; an empty tail is a clean close.
        return error.partial or None
    except asyncio.LimitOverrunError as error:
        consumed = error.consumed
        while True:
            try:
                if consumed:
                    await reader.readexactly(consumed)
                await reader.readuntil(b"\n")
                break  # drained through the newline; connection usable
            except asyncio.LimitOverrunError as again:
                consumed = again.consumed
            except asyncio.IncompleteReadError:
                return None  # EOF inside the oversized frame
        raise FrameTooLargeError(
            f"request frame exceeds the {STREAM_LIMIT_BYTES} byte cap",
            limit_bytes=STREAM_LIMIT_BYTES,
        ) from None


def _result_payload(values: np.ndarray) -> dict[str, Any]:
    array = np.ascontiguousarray(values, dtype=np.float64)
    return {
        "shape": list(array.shape),
        "values": [float(x) for x in array.ravel()],
        "crc32c": crc32c(array.tobytes()),
    }


async def _dispatch(service: MatrixService, request: dict[str, Any]) -> dict[str, Any]:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "health":
        return {"ok": True, "health": service.health()}
    if op == "ready":
        return {"ok": True, "ready": service.ready()}
    if op == "matrices":
        return {"ok": True, "matrices": service.registry.names()}
    if op == "metrics":
        return {"ok": True, "metrics": service.metrics()}
    if op == "submit":
        job = request.get("job")
        if not isinstance(job, dict):
            raise FormatError("submit requests need a 'job' object")
        job_id = await service.submit(
            tenant=str(request.get("tenant", "anonymous")),
            op=str(job.get("op", "")),
            a=str(job.get("a", "")),
            b=job.get("b"),
            rhs=job.get("rhs"),
            params=job.get("params"),
            job_id=job.get("job_id"),
            deadline_seconds=(
                float(job["deadline_seconds"])
                if job.get("deadline_seconds") is not None
                else None
            ),
            idempotency_key=(
                str(job["idempotency_key"])
                if job.get("idempotency_key") is not None
                else None
            ),
        )
        return {"ok": True, "job_id": job_id}
    if op in ("status", "result", "cancel"):
        job_id = str(request.get("job_id", ""))
        if op == "status":
            status = await service.status(job_id)
            return {"ok": True, "status": status.to_json_dict()}
        if op == "result":
            values = await service.result(job_id)
            return {"ok": True, "result": _result_payload(values)}
        cancelled = await service.cancel(job_id)
        return {"ok": True, "cancelled": cancelled}
    raise FormatError(f"unknown request op {op!r}")


async def _handle_connection(
    service: MatrixService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                line = await _read_frame(reader)
            except FrameTooLargeError as error:
                writer.write(json.dumps(_error_payload(error)).encode() + b"\n")
                await writer.drain()
                continue
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise FormatError("requests must be JSON objects")
                response = await _dispatch(service, request)
            except ReproError as error:
                response = _error_payload(error)
            except (ValueError, TypeError, KeyError) as error:
                response = {
                    "ok": False,
                    "error": {"type": "BadRequest", "message": str(error)},
                }
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def serve(
    service: MatrixService, *, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Start the service (if needed) and bind the JSON-lines endpoint.

    ``port=0`` binds an ephemeral port; read the bound address from the
    returned server's ``sockets``.  The caller owns the loop:
    ``async with server: await server.serve_forever()``.
    """
    await service.start()

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host=host, port=port, limit=STREAM_LIMIT_BYTES
    )
