"""Multi-tenant matrix service: named matrices, jobs, admission, recovery.

The service layer turns the library's :class:`~repro.engine.session.Session`
into a long-running server: tenants submit ``multiply`` / ``matvec`` /
``solve`` jobs against *named* matrices held in a
:class:`MatrixRegistry`, a bounded worker pool executes them through one
shared plan cache, and every job is journaled to a
:class:`~repro.service.jobs.JobStore` so a killed server resumes its
in-flight work bit-identically on restart.

Three request fates, all typed (:mod:`repro.errors`):

* **admitted** — the job's estimated result footprint fits the memory
  SLA; it queues and runs (possibly waiting for in-flight jobs to free
  budget).
* **rejected** (:class:`~repro.errors.AdmissionError`) — the water-level
  sweep proves even the sparsest layout breaches the SLA; queueing would
  never help.
* **shed** (:class:`~repro.errors.QuotaExceededError`) — the tenant's
  queue quota or the global depth is exhausted; resubmit after the
  backlog drains.

Entry points: the in-process :class:`MatrixService` client API, the
JSON-lines TCP front end (:func:`~repro.service.protocol.serve`) and the
``repro serve`` CLI.  See docs/SERVICE.md.
"""

from .admission import AdmissionController, AdmissionTicket
from .client import CircuitBreaker, Deadline, ServiceClient
from .jobs import JobRecord, JobSpec, JobState, JobStore
from .registry import MatrixRegistry
from .server import JobStatus, MatrixService
from .protocol import serve

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "CircuitBreaker",
    "Deadline",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStatus",
    "JobStore",
    "MatrixRegistry",
    "MatrixService",
    "ServiceClient",
    "serve",
]
